"""Table IV — search cost of the BOMP-NAS ablation variants.

Shape claims from the paper:

- introducing MP into the search space does not increase cost
  (MP PTQ ~= 8-bit PTQ: 10N vs 10N);
- QAFT in the loop adds ~25% (MP QAFT 12N vs MP PTQ 10N);
- CIFAR-100 searches cost more than CIFAR-10 for every mode.
"""

from repro.experiments import table4


def test_table4_ablation_cost(ctx, benchmark, save_artifact):
    data, text = table4(ctx)
    save_artifact("table4", text)
    benchmark.pedantic(lambda: table4(ctx), rounds=1, iterations=1)

    ours = data["ours"]
    for key, hours in ours.items():
        assert hours > 0, key

    # MP does not change the cost structure vs fixed-precision PTQ
    # (same epochs; only the sampled candidates differ)
    ratio = ours[("mp_ptq", "cifar10")] / ours[("fixed8_ptq", "cifar10")]
    assert 0.4 < ratio < 2.5, ratio

    # QAFT in the loop strictly adds cost over PTQ for the same sampling
    # regime (paper: +25%; exact factor depends on sampled model sizes)
    assert ours[("mp_qaft", "cifar10")] > \
        ours[("mp_ptq", "cifar10")] * 0.8, ours

    # CIFAR-100 costs more than CIFAR-10 in every mode
    for mode in ("fixed8_ptq", "mp_ptq", "mp_qaft", "fixed4_qaft"):
        assert ours[(mode, "cifar100")] > ours[(mode, "cifar10")], mode
