"""Extension — the paper's future-work proposal (Section VII).

"For each trained full-precision network, multiple quantization policies
could be tried ... thereby reducing the search time further."

Implemented as ``policies_per_trial``: one early training is re-used for
several policies, each feeding the surrogate.  The bench measures the cost
per surrogate observation with and without re-use and asserts the claimed
saving materializes.
"""

import pytest


def test_ext_policy_reuse(ctx, benchmark, save_artifact):
    plain = ctx.run_search("cifar10", "mp_qaft", final_training=False)
    reuse = ctx.run_search("cifar10", "mp_qaft", final_training=False,
                           policies_per_trial=3)
    benchmark.pedantic(
        lambda: ctx.run_search("cifar10", "mp_qaft", final_training=False,
                               policies_per_trial=3),
        rounds=1, iterations=1)

    # the loop stops once the observation budget is met; with 3 policies
    # per trained network it may overshoot by up to 2 observations
    assert ctx.scale.trials <= len(reuse.trials) <= ctx.scale.trials + 2
    cost_plain = plain.search_gpu_hours() / len(plain.trials)
    cost_reuse = reuse.search_gpu_hours() / len(reuse.trials)
    text = (f"cost per surrogate observation:\n"
            f"  plain search:  {cost_plain:.6f} GPU-hours\n"
            f"  policy re-use: {cost_reuse:.6f} GPU-hours\n"
            f"  saving: {cost_plain / cost_reuse:.2f}x")
    save_artifact("ext_policy_reuse", text)

    # re-use amortizes early training over 3 policies -> clearly cheaper
    # (mechanical bound ~0.68x at equal architecture mix; slack because the
    # two searches sample different architectures)
    assert cost_reuse < cost_plain * 0.85, (cost_plain, cost_reuse)

    # within a re-use trial, follow-up policies share the architecture
    arch_runs = {}
    for trial in reuse.trials:
        arch_runs.setdefault(trial.genome.arch.as_tuple(), set()).add(
            trial.genome.policy)
    assert any(len(policies) > 1 for policies in arch_runs.values())
