"""Extension — BO-engine ablations the paper motivates but does not run.

Section III chooses the Matérn kernel and UCB acquisition "following
AutoKeras", and Section V argues BO "converges faster on promising models
compared to e.g. evolutionary approaches".  Training candidates for every
engine variant would dominate the budget without changing the comparison,
so this bench isolates the *search engines* on a deterministic synthetic
objective over the real Table I genome space (capacity+bitwidth proxy
accuracy scalarized by Eq. (1) against the real model-size accounting):

- acquisitions: UCB vs EI vs pure posterior-mean exploitation,
- kernels: Matérn-5/2 vs exponential (Laplacian) vs RBF,
- engines: BO vs aging evolution vs random sampling.

The trained-network comparison of BO vs evolution is covered separately by
Table II/III (BOMP vs the JASQ reproduction).
"""

import numpy as np

from repro.baselines import AgingEvolution
from repro.bo import (BayesianOptimizer, ScalarizationConfig,
                      make_acquisition, make_kernel, scalarize)
from repro.quant import model_size_bits
from repro.space import SearchSpace, build_model

TRIALS = 30
SEEDS = (0, 1, 2)


def make_objective(space):
    config = ScalarizationConfig()
    cache = {}

    def objective(genome):
        key = genome.as_key()
        if key not in cache:
            capacity = sum(b.width_multiplier * b.repetitions *
                           (1 + 0.1 * b.expansion)
                           for b in genome.arch.blocks)
            accuracy = min(0.95, 0.15 + 0.25 * capacity
                           + 0.04 * (genome.policy.mean_bits() - 4))
            model = build_model(genome.arch, 10)
            size = model_size_bits(model, genome.policy)
            cache[key] = scalarize(max(0.0, accuracy), size, config)
        return cache[key]

    return objective


def run_bo(space, objective, seed, acquisition="ucb", kernel="matern52"):
    rng = np.random.default_rng(seed)
    optimizer = BayesianOptimizer(
        space, rng, kernel=make_kernel(kernel, length_scale=0.1),
        acquisition=make_acquisition(acquisition), pool_size=60,
        n_initial_random=5)
    best = -np.inf
    trajectory = []
    for _ in range(TRIALS):
        genome = optimizer.ask()
        score = objective(genome)
        optimizer.tell(genome, score)
        best = max(best, score)
        trajectory.append(best)
    return trajectory


def run_evolution(space, objective, seed):
    rng = np.random.default_rng(seed)
    evolution = AgingEvolution(rng, space.random_genome,
                               lambda g, r: space.mutate(g, r),
                               population_size=10, tournament_size=3)
    best = -np.inf
    trajectory = []
    for _ in range(TRIALS):
        genome = evolution.ask()
        score = objective(genome)
        evolution.tell(genome, score)
        best = max(best, score)
        trajectory.append(best)
    return trajectory


def run_random(space, objective, seed):
    rng = np.random.default_rng(seed)
    best = -np.inf
    trajectory = []
    for _ in range(TRIALS):
        best = max(best, objective(space.random_genome(rng)))
        trajectory.append(best)
    return trajectory


def test_ext_bo_ablation(benchmark, save_artifact):
    space = SearchSpace("cifar10")
    objective = make_objective(space)

    def mean_final(runner, **kwargs):
        finals = [runner(space, objective, seed, **kwargs)[-1]
                  for seed in SEEDS]
        return float(np.mean(finals))

    results = {
        "UCB + Matern52 (paper)": mean_final(run_bo),
        "EI": mean_final(run_bo, acquisition="ei"),
        "posterior mean": mean_final(run_bo, acquisition="mean"),
        "exponential kernel": mean_final(run_bo, kernel="exponential"),
        "RBF kernel": mean_final(run_bo, kernel="rbf"),
        "aging evolution": mean_final(run_evolution),
        "random sampling": mean_final(run_random),
    }
    benchmark.pedantic(lambda: run_bo(space, objective, 0), rounds=1,
                       iterations=1)

    lines = [f"best score after {TRIALS} trials "
             f"(mean over {len(SEEDS)} seeds):"]
    for name, score in sorted(results.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<26} {score:.4f}")
    save_artifact("ext_bo_ablation", "\n".join(lines))

    # the paper's engine choice is competitive: UCB+Matern within noise of
    # the best variant and at least as good as random sampling
    best = max(results.values())
    assert results["UCB + Matern52 (paper)"] >= best - 0.15
    assert results["UCB + Matern52 (paper)"] >= \
        results["random sampling"] - 0.02
    # Section V claim: BO >= evolution on equal budgets (soft)
    assert results["UCB + Matern52 (paper)"] >= \
        results["aging evolution"] - 0.05
