"""Table III — search cost per deployment scenario across QA-NAS methods.

Our searches report simulated GPU-hours (MAC-calibrated cost model),
extrapolated to the paper's protocol scale so the rows are comparable with
the literature constants.  The reproduction targets the *shape*: BOMP-NAS
costs tens of GPU-hours per scenario — far below JASQ (72N) and muNAS
(552N) — with no OFA-style fixed investment, and CIFAR-100 costs more than
CIFAR-10.
"""

from repro.experiments import table3


def test_table3_search_cost(ctx, benchmark, save_artifact):
    data, text = table3(ctx)
    save_artifact("table3", text)
    benchmark.pedantic(lambda: table3(ctx), rounds=1, iterations=1)

    bomp_c10 = data["ours"][("bomp", "cifar10")]
    bomp_c100 = data["ours"][("bomp", "cifar100")]

    # order of magnitude of the paper's 12N (the cost model is calibrated
    # on the protocol, the sampled candidates set the exact value)
    assert 1.0 < bomp_c10 < 120.0, bomp_c10

    # far below the evolutionary comparators' published costs
    munas = next(e for e in data["literature"] if e.method == "muNAS")
    assert bomp_c10 < munas.per_scenario_hours / 4, (
        bomp_c10, munas.per_scenario_hours)

    # CIFAR-100 search costs more (wider width multipliers -> bigger models)
    assert bomp_c100 > bomp_c10, (bomp_c10, bomp_c100)
