"""Serial vs parallel trial-evaluation wall-clock benchmark.

Runs the same smoke-scale search with ``workers=1`` and with a worker
pool, asserts the two results are bit-identical, and appends the timing
record to ``BENCH_parallel.json`` so the perf trajectory is measurable
across PRs.  The speedup assertion only applies on multi-core hosts —
on a single CPU the pool can only add overhead.

Marked ``slow``: run explicitly with ``pytest benchmarks -m slow``.
"""

import pytest

from repro.parallel import (append_bench_record, default_bench_path,
                            default_workers, measure_speedup)


@pytest.mark.slow
def test_parallel_speedup_recorded():
    workers = max(2, default_workers())
    record = measure_speedup(scale="smoke", dataset="cifar10",
                             mode="mp_qaft", seed=7, workers=workers)
    append_bench_record(default_bench_path(), record)

    assert record["identical"], (
        "parallel search must be bit-identical to serial")
    assert record["serial_s"] > 0 and record["parallel_s"] > 0
    if record["cpu_count"] >= 2:
        # conservative bound: pool + pickling overhead must not eat the
        # whole multi-core win on the smoke protocol
        assert record["speedup"] >= 1.1, (
            f"expected >=1.1x speedup on {record['cpu_count']} CPUs, "
            f"got {record['speedup']}x")
