"""Fig. 8 — Pareto fronts of every ablation variant.

All five fronts are regenerated and rendered.  Hard assertions target the
mechanism-level claims (fixed policies respected, fronts valid, paired
post-QAFT effect via fig5); cross-search dominance is reported with loose
sanity bounds because at reduced trial counts it is dominated by which
search sampled the better architectures.
"""

from repro.bo.pareto import dominates
from repro.experiments import fig8


def test_fig8_ablation_pareto(ctx, benchmark, save_artifact):
    data, text = fig8(ctx)
    save_artifact("fig8", text)
    benchmark.pedantic(lambda: fig8(ctx), rounds=1, iterations=1)

    fronts = data["fronts"]
    for name, front in fronts.items():
        assert front, f"{name} produced an empty front"
        # each front is internally non-dominated
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not dominates(a, b), (name, a, b)

    hv = data["hypervolumes"]
    # BOMP-NAS (MP QAFT) is in the same quality league as every variant
    for rival in ("8-bit PTQ-NAS", "MP PTQ-NAS", "MP PTQ-NAS (QAFT)",
                  "4-bit QAFT-NAS"):
        assert hv["MP QAFT-NAS"] >= hv[rival] * 0.5, (rival, hv)

    # the MP search space contains the fixed-precision ones, so the MP
    # front's smallest model can reach at least near the 4-bit search's
    # smallest *achievable* sizes; report the landscape
    print("hypervolumes:", {k: round(v, 2) for k, v in hv.items()})
    print("smallest model per front:", data["smallest_size"])
    print("best acc under shared small budget "
          f"({data['small_budget_kb']:.1f} kB):",
          data["best_acc_under_budget"])
