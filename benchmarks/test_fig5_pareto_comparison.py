"""Fig. 5 — three Pareto fronts: MP PTQ-NAS, MP PTQ-NAS (QAFT), MP QAFT-NAS.

The paper's claims:

- applying QAFT after a PTQ-aware search improves the PTQ front
  (especially on the left-hand/small side);
- QAFT *inside* the loop (BOMP-NAS) yields the best front overall.

The first claim is asserted on the *paired* comparison: the same
PTQ-searched architectures finalized from identical full-precision
training, once with plain PTQ and once with post-hoc QAFT — the treatment
effect free of cross-search architecture-sampling noise.  The cross-search
front comparison (second claim) is reported with a loose sanity bound;
at reduced trial counts which search finds the better architectures is
sampling-dominated, and the in-loop effect is asserted at candidate level
by the Fig. 6 benchmark instead.
"""

import numpy as np

from repro.experiments import fig5


def test_fig5_pareto_comparison(ctx, benchmark, save_artifact):
    data, text = fig5(ctx)
    save_artifact("fig5", text)
    benchmark.pedantic(lambda: fig5(ctx), rounds=1, iterations=1)

    fronts = data["fronts"]
    assert fronts["MP PTQ-NAS"], "PTQ front is empty"
    assert fronts["MP QAFT-NAS"], "QAFT front is empty"
    assert fronts["MP PTQ-NAS (QAFT)"], "post-hoc QAFT front is empty"

    # paired treatment effect: post-hoc QAFT does not hurt, and helps the
    # aggressively quantized models
    pairs = data["paired"]
    assert pairs, "no paired finals to compare"
    deltas = [p["delta"] for p in pairs]
    # QAFT does not hurt on average (noise tolerance: one fine-tuning
    # epoch on a near-lossless PTQ model is a small perturbation)
    assert float(np.mean(deltas)) >= -0.03, pairs
    low_bit = [p for p in pairs if p["min_bits"] <= 5]
    for pair in low_bit:
        assert pair["delta"] >= -0.06, pair

    # cross-search sanity: in-loop QAFT produces a front in the same
    # quality league (strong per-candidate claims live in fig6's bench)
    hv = data["hypervolumes"]
    assert hv["MP QAFT-NAS"] >= hv["MP PTQ-NAS"] * 0.5, hv
