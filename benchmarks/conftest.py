"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Searches are
expensive, so a session-scoped :class:`ExperimentContext` memoizes them —
in memory and on disk under ``benchmarks/.bomp_cache/<scale>`` — and the
``benchmark`` fixture then times the (cached) regeneration of the artifact.

Scale is controlled by the ``BOMP_SCALE`` environment variable
(``smoke`` default; ``unit`` for a fast sanity pass; ``paper`` for the full
protocol).  Rendered artifacts are written to ``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

BENCH_DIR = Path(__file__).parent
OUTPUT_DIR = BENCH_DIR / "output"


def scale_name() -> str:
    return os.environ.get("BOMP_SCALE", "smoke")


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    cache_dir = BENCH_DIR / ".bomp_cache" / scale_name()
    return ExperimentContext(scale_name(), seed=7, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def save_artifact():
    """Write a rendered table/figure to benchmarks/output/<name>.txt."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}_{scale_name()}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[artifact: {path}]")

    return _save
