"""Fig. 7 — fixed 4-bit QAFT-aware NAS.

Every candidate's policy is homogeneous 4-bit; the search therefore probes
the smallest corner of the size range (the paper observes dense sampling on
the far left).  Checks policy homogeneity and that the 4-bit search reaches
sizes at least as small as the MP search.
"""

from repro.experiments import fig2, fig7
from repro.nas import get_mode


def test_fig7_4bit_qaft_nas(ctx, benchmark, save_artifact):
    data, text = fig7(ctx)
    save_artifact("fig7", text)
    benchmark.pedantic(lambda: fig7(ctx), rounds=1, iterations=1)

    assert len(data["scores"]) == ctx.scale.trials
    front = data["final_front"] or data["candidate_front"]
    assert front

    # every trial ran a homogeneous 4-bit policy
    result = ctx.run_search("cifar10", "fixed4_qaft")
    assert result.config.mode is get_mode("fixed4_qaft")
    for trial in result.trials:
        bits = set(trial.genome.policy.as_dict().values())
        assert bits == {4}, bits

    # mechanical size advantage: every 4-bit candidate is well below its
    # own architecture's homogeneous 8-bit size
    for size_4bit, size_8bit in zip(data["sizes"], data["sizes_at_8bit"]):
        assert size_4bit < size_8bit * 0.75, (size_4bit, size_8bit)

    # sampled small-end comparison against the MP search is reported (it is
    # sampling noise at reduced trial counts, a hard claim only at paper
    # scale)
    mp_data, _ = fig2(ctx)
    print(f"smallest sampled: 4-bit {min(data['sizes']):.2f} kB, "
          f"MP {min(mp_data['sizes']):.2f} kB")
