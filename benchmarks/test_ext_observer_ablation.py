"""Extension — PTQ calibration-observer ablation.

Section III quantizes activations per-tensor following Nagel et al., whose
white paper discusses min-max vs percentile range estimation.  This bench
quantizes one trained network with each observer at 8 and 4 activation
bits and records the accuracy deltas; the assertion is only that all
observers keep 8-bit PTQ near-lossless (the robust part of the claim).
"""

import numpy as np

from repro.nas.search import BOMPNAS
from repro.nn import evaluate_classifier, load_state_dict, state_dict
from repro.quant import apply_policy, calibrate, remove_quantizers
from repro.space import MixedPrecisionGenome


def test_ext_observer_ablation(ctx, benchmark, save_artifact):
    config = ctx.config("cifar10", "fixed8_ptq")
    dataset = ctx.dataset("cifar10")
    evaluator = BOMPNAS(config, dataset)
    genome = MixedPrecisionGenome(evaluator.space.seed_arch(),
                                  evaluator.space.seed_policy(8))
    model = evaluator.early_train(genome)
    _, fp_accuracy = evaluate_classifier(model, dataset.x_test,
                                         dataset.y_test)
    snapshot = state_dict(model)

    def measure(observer: str, activation_bits: int) -> float:
        remove_quantizers(model)
        load_state_dict(model, snapshot)
        apply_policy(model, genome.policy, activation_bits=activation_bits,
                     observer_kind=observer)
        calibrate(model, dataset.x_train, batch_size=128)
        _, accuracy = evaluate_classifier(model, dataset.x_test,
                                          dataset.y_test)
        return accuracy

    results = {}
    for observer in ("minmax", "moving_average", "percentile"):
        for bits in (8, 4):
            results[(observer, bits)] = measure(observer, bits)
    benchmark.pedantic(lambda: measure("minmax", 8), rounds=1, iterations=1)

    lines = [f"float accuracy: {fp_accuracy:.3f}",
             f"{'observer':<16} {'act bits':>8} {'accuracy':>9}"]
    for (observer, bits), accuracy in results.items():
        lines.append(f"{observer:<16} {bits:>8} {accuracy:>9.3f}")
    save_artifact("ext_observer_ablation", "\n".join(lines))

    for observer in ("minmax", "moving_average", "percentile"):
        # 8-bit activations: all observers near-lossless
        assert results[(observer, 8)] >= fp_accuracy - 0.1, observer
        # 4-bit activations never beat 8-bit by more than noise
        assert results[(observer, 4)] <= results[(observer, 8)] + 0.05
