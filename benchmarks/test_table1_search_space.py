"""Table I — search space definition and cardinalities.

Regenerates the Table I menus and verifies the paper's cardinality claims
(3.96e19 architectures, 1.19e16 policies); the joint count is the product
4.73e35 (the paper's 4.73e39 is a typo — the mantissa matches).
"""

import math

from repro.experiments import table1


def test_table1_search_space(benchmark, save_artifact):
    data, text = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_artifact("table1", text)

    c10 = data["cifar10"]
    c100 = data["cifar100"]
    # paper claims, to 3 significant digits
    assert math.isclose(c10["num_architectures"], 3.96e19, rel_tol=5e-3)
    assert math.isclose(c10["num_policies"], 1.19e16, rel_tol=5e-3)
    assert math.isclose(c10["num_total"], 4.73e35, rel_tol=5e-3)
    # CIFAR-100 space differs only in width menus -> same cardinalities
    assert c100["num_architectures"] == c10["num_architectures"]
    assert c100["num_policies"] == c10["num_policies"]
    # 23 quantization slots back out of 5^23 = 1.19e16
    assert c10["n_slots"] == 23
    assert c10["num_policies"] == 5 ** 23
