"""Fig. 4 — MP QAFT-aware NAS on CIFAR-100 (ref_model_size = 6).

Same view as Fig. 2 on the CIFAR-100 search space (width multipliers
0.25-1.30).  Checks the search runs on the wider space, produces a valid
front, and that CIFAR-100 candidates are systematically larger than the
CIFAR-10 ones (the width menus guarantee it).
"""

import numpy as np

from repro.experiments import fig2, fig4


def test_fig4_qaft_nas_cifar100(ctx, benchmark, save_artifact):
    data, text = fig4(ctx)
    save_artifact("fig4", text)
    benchmark.pedantic(lambda: fig4(ctx), rounds=1, iterations=1)

    # CIFAR-100 runs use the context's (possibly lightened) c100 scale
    expected = ctx.run_search("cifar100", "mp_qaft").config.scale.trials
    assert len(data["scores"]) == expected
    assert all(0.0 <= acc <= 1.0 for acc in data["accuracies"])
    front = data["final_front"] or data["candidate_front"]
    assert front

    # CIFAR-100 models are larger than CIFAR-10 models on average
    # (0.25-1.30 width multipliers vs 0.01-0.30)
    c10, _ = fig2(ctx)
    assert np.mean(data["sizes"]) > np.mean(c10["sizes"])

    # BO learns on this space too: the surrogate-guided phase matches or
    # beats the initialization phase on best score
    result = ctx.run_search("cifar100", "mp_qaft")
    n_init = min(result.config.scale.n_initial_random + 1,
                 len(data["scores"]) - 1)
    init_best = max(data["scores"][:n_init])
    guided_best = max(data["scores"][n_init:])
    assert guided_best >= init_best - 0.05, (init_best, guided_best)
