"""Table II — Pareto-optimal models vs state of the art.

Literature rows are constants from the paper; the reproducible content is
the head-to-head on the *same* search space and data: BOMP-NAS vs the JASQ
reproduction (the paper reports +1.4pp for BOMP-NAS at ~4.5 kB).  Absolute
accuracies live on the synthetic surrogate's scale.
"""

from repro.experiments import table2


def test_table2_sota_comparison(ctx, benchmark, save_artifact):
    data, text = table2(ctx)
    save_artifact("table2", text)
    benchmark.pedantic(lambda: table2(ctx), rounds=1, iterations=1)

    # our searches produced deployable models on both datasets
    assert data["ours"]["cifar10"], "no CIFAR-10 final models"
    assert data["ours"]["cifar100"], "no CIFAR-100 final models"
    assert data["ours"]["jasq_cifar10"], "no JASQ baseline models"

    # all literature rows present (9 in the paper's Table II)
    assert len(data["literature"]) == 9

    # the reproducible head-to-head: same space, data, budget, objective —
    # BOMP-NAS's BO engine achieves at least the JASQ engine's best
    # scalarized score (paper Section V: BO converges faster/better)
    head = data["head_to_head"]
    assert head["bomp_best_score"] >= head["jasq_best_score"] - 0.05, head

    # accuracy-at-matched-size is reported; small reduced-scale fronts may
    # not overlap in size, which makes it hole-prone rather than wrong
    if head.get("bomp_best") and head.get("jasq_best"):
        print(f"at <= {head['budget_kb']:.1f} kB: "
              f"BOMP {head['bomp_best'][0]:.3f} vs "
              f"JASQ {head['jasq_best'][0]:.3f}")
