"""Fig. 6 — MP PTQ-aware NAS scatter.

The paper's observation: without QAFT, aggressively quantized candidates
evaluate poorly in the loop, so the search focuses on larger/higher-bit
models — "simply applying MP PTQ to the found networks is not a good
strategy".

The mechanism is asserted *within candidates*: each trial records its own
full-precision accuracy and its deployed accuracy, and the low-bit
quantization gap (fp - deployed) must be larger in the PTQ-aware search
than in the QAFT-aware search (whose in-loop fine-tuning recovers it).
Cross-search accuracy/size comparisons are reported only — at reduced
trial counts they are dominated by which architectures each search
happened to sample.
"""

import numpy as np

from repro.experiments import fig6


def test_fig6_ptq_nas(ctx, benchmark, save_artifact):
    data, text = fig6(ctx)
    save_artifact("fig6", text)
    benchmark.pedantic(lambda: fig6(ctx), rounds=1, iterations=1)

    assert len(data["scores"]) == ctx.scale.trials
    front = data["final_front"] or data["candidate_front"]
    assert front

    # the within-candidate mechanism: QAFT-in-the-loop shrinks the low-bit
    # quantization gap relative to plain PTQ (small tolerance for runs
    # where few low-bit candidates were sampled)
    assert data["mean_low_bit_gap_qaft"] <= \
        data["mean_low_bit_gap_ptq"] + 0.02, (
            data["mean_low_bit_gap_ptq"], data["mean_low_bit_gap_qaft"])

    # PTQ gaps are real damage (non-negative on average)
    assert data["mean_low_bit_gap_ptq"] >= -0.05

    # sampled-size drift is reported (a paper-scale effect)
    print(f"mean sampled size: PTQ {data['mean_sampled_size']:.1f} kB vs "
          f"QAFT {data['qaft_mean_sampled_size']:.1f} kB")
