"""Fig. 3 — bitwidth distribution per layer of the final Pareto models.

The paper's claim: with QAFT in the loop, every model on the final Pareto
front leverages bitwidths below 8 — i.e. QAFT makes low-precision
parameters usable.
"""

from repro.experiments import fig3


def test_fig3_bitwidth_distribution(ctx, benchmark, save_artifact):
    data, text = fig3(ctx)
    save_artifact("fig3", text)
    benchmark.pedantic(lambda: fig3(ctx), rounds=1, iterations=1)

    assignments = data["assignments"]
    assert assignments, "no Pareto models to analyze"
    for assignment in assignments:
        assert assignment, "empty bit assignment"
        for bits in assignment.values():
            assert 4 <= bits <= 8

    # the headline claim: the Pareto set leverages low-precision bitwidths
    assert any(min_bits < 8 for min_bits in data["min_bits_per_model"]), (
        "no Pareto model uses a bitwidth below 8")
    # and not trivially (mean strictly below the 8-bit ceiling overall)
    assert min(data["mean_bits_per_model"]) < 8.0
