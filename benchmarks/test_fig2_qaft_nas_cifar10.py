"""Fig. 2 — MP QAFT-aware NAS on CIFAR-10.

Regenerates the candidate scatter (colored by sample time), the final
Pareto front, the seed marker and the equal-score contour.  Shape checks:

- the BO search finds candidates scoring strictly better than the seed
  (the figure's models beat the 8-bit seed MobileNetV2);
- late-sampled candidates score at least as well as early ones on average
  (the surrogate is learning);
- the final front is non-empty and internally non-dominated.
"""

import numpy as np

from repro.bo.pareto import dominates
from repro.bo.scalarization import ScalarizationConfig, scalarize
from repro.experiments import fig2


def test_fig2_qaft_nas_cifar10(ctx, benchmark, save_artifact):
    data, text = fig2(ctx)  # first call runs the search; later calls cached
    save_artifact("fig2", text)
    benchmark.pedantic(lambda: fig2(ctx), rounds=1, iterations=1)

    assert len(data["scores"]) == ctx.scale.trials
    assert all(0.0 <= acc <= 1.0 for acc in data["accuracies"])
    assert all(size > 0 for size in data["sizes"])

    # search beats the seed on the scalarized objective
    seed_acc, seed_kb = data["seed_point"]
    config = ScalarizationConfig(ref_accuracy=data["ref_accuracy"],
                                 ref_model_size=data["ref_model_size"])
    seed_score = scalarize(seed_acc, seed_kb * 8 * 1024, config)
    assert max(data["scores"]) > seed_score

    # BO learns: the surrogate-guided phase matches or beats the seed +
    # random initialization phase on best score.  (Mean-score comparisons
    # are exploration-dominated at reduced trial counts — UCB deliberately
    # samples uncertain candidates — so they are reported, not asserted.)
    n_init = ctx.scale.n_initial_random + 1  # seed anchor + random phase
    init_best = max(data["scores"][:n_init])
    guided_best = max(data["scores"][n_init:])
    assert guided_best >= init_best - 0.05, (init_best, guided_best)
    half = len(data["scores"]) // 2
    print(f"mean score: early half {np.mean(data['scores'][:half]):.3f}, "
          f"late half {np.mean(data['scores'][half:]):.3f}")

    # the front is a front
    front = data["final_front"] or data["candidate_front"]
    assert front
    for i, a in enumerate(front):
        for j, b in enumerate(front):
            if i != j:
                assert not dominates(a, b), (a, b)

    # headline claim: the search finds models smaller than the seed without
    # losing all its accuracy (paper: 2x smaller at better accuracy)
    smaller = [acc for acc, size in data["candidate_front"]
               if size <= seed_kb]
    assert smaller, "no candidate smaller than the 8-bit seed"
