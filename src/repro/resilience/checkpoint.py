"""Atomic search checkpoints: persist/restore full BOMP-NAS search state.

A checkpoint is written after every BO batch and captures everything a
resumed run needs to be *bit-identical* to an uninterrupted one:

- the run's config (the same dict :class:`~repro.nas.results.SearchResult`
  serializes) and the dataset regeneration spec;
- the full trial history (GP training data is replayed from it: telling
  the recorded ``(genome, score)`` pairs back rebuilds the surrogate's
  observations, encodings, and dedup set exactly);
- the optimizer's non-replayable state: the RNG bit-generator state and
  the seed-anchor flag (both consumed outside ``tell``);
- the search schedule (proposal batch size, total trials) and how many
  batches have completed.

Writes are atomic: the payload goes to a temp file in the run directory
(flushed and fsynced), then ``os.replace`` renames it over
``checkpoint.json``.  A process killed mid-write leaves the previous
checkpoint intact; a stale ``checkpoint.json.tmp.*`` is ignored by
readers.  :func:`~repro.resilience.faults.checkpoint_fault` hooks sit on
both sides of the rename so the fault harness can kill the process at
either point.

The schema is validated by :func:`validate_checkpoint` (wired into
``scripts/check_schema.py`` alongside the event-log and bench schemas).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .faults import checkpoint_fault

#: bump when a field is renamed/removed (additions are compatible)
CHECKPOINT_SCHEMA_VERSION = 1

#: checkpoint filename inside a run directory
CHECKPOINT_FILENAME = "checkpoint.json"

#: fields every checkpoint payload must carry
CHECKPOINT_FIELDS = ("schema", "config", "batch_size", "total_trials",
                     "batch_index", "trials", "optimizer")

#: fields the optimizer-state sub-object must carry
OPTIMIZER_STATE_FIELDS = ("seed_given", "rng_state")


class CheckpointError(RuntimeError):
    """A checkpoint is missing, malformed, or incompatible with the run."""


@dataclass
class SearchCheckpoint:
    """The persisted state of a search at a batch boundary.

    ``config`` and ``trials`` are stored as the plain dicts produced by the
    ``nas`` layer's own serializers, so the checkpoint module stays free of
    search-layer imports and the formats cannot drift apart.
    """

    config: Dict[str, Any]
    batch_size: int
    total_trials: int
    batch_index: int
    trials: List[Dict[str, Any]]
    optimizer: Dict[str, Any]
    dataset_spec: Optional[Dict[str, Any]] = None
    schema: int = CHECKPOINT_SCHEMA_VERSION

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SearchCheckpoint":
        problems = validate_checkpoint(payload)
        if problems:
            raise CheckpointError(
                "invalid checkpoint: " + "; ".join(problems))
        return cls(config=payload["config"],
                   batch_size=int(payload["batch_size"]),
                   total_trials=int(payload["total_trials"]),
                   batch_index=int(payload["batch_index"]),
                   trials=list(payload["trials"]),
                   optimizer=payload["optimizer"],
                   dataset_spec=payload.get("dataset_spec"),
                   schema=int(payload["schema"]))


def checkpoint_path(run_dir: Union[str, Path]) -> Path:
    """The checkpoint path for a run directory (or a direct file path)."""
    path = Path(run_dir)
    if path.is_dir() or path.suffix != ".json":
        return path / CHECKPOINT_FILENAME
    return path


def save_checkpoint(run_dir: Union[str, Path],
                    checkpoint: SearchCheckpoint) -> Path:
    """Atomically persist ``checkpoint`` to ``<run_dir>/checkpoint.json``.

    Write-to-temp + fsync + rename: a crash at any point leaves either the
    previous checkpoint or the new one, never a torn file.  The fault
    hooks fire with the checkpoint's batch index (``ckpt-tear`` before the
    rename, ``ckpt-kill`` after).
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / CHECKPOINT_FILENAME
    tmp = run_dir / f"{CHECKPOINT_FILENAME}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(checkpoint.as_dict(), handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    checkpoint_fault("ckpt-tear", checkpoint.batch_index)
    os.replace(tmp, path)
    checkpoint_fault("ckpt-kill", checkpoint.batch_index)
    return path


def load_checkpoint(run_dir: Union[str, Path]) -> SearchCheckpoint:
    """Load and validate ``<run_dir>/checkpoint.json``."""
    path = checkpoint_path(run_dir)
    if not path.exists():
        raise CheckpointError(f"no checkpoint found at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}")
    return SearchCheckpoint.from_dict(payload)


def has_checkpoint(run_dir: Union[str, Path]) -> bool:
    """True if ``run_dir`` holds a checkpoint file."""
    return checkpoint_path(run_dir).exists()


# -- schema validation ------------------------------------------------------
def validate_checkpoint(payload: Any) -> List[str]:
    """Validate a parsed checkpoint payload; returns problems (empty = ok)."""
    if not isinstance(payload, dict):
        return ["checkpoint payload is not a JSON object"]
    problems: List[str] = []
    for name in CHECKPOINT_FIELDS:
        if name not in payload:
            problems.append(f"missing field {name!r}")
    if problems:
        return problems
    if payload["schema"] != CHECKPOINT_SCHEMA_VERSION:
        problems.append(f"schema {payload['schema']!r} != "
                        f"{CHECKPOINT_SCHEMA_VERSION}")
    if not isinstance(payload["config"], dict):
        problems.append("'config' must be an object")
    for name in ("batch_size", "total_trials", "batch_index"):
        value = payload[name]
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{name!r} must be an integer, got {value!r}")
    if isinstance(payload.get("batch_size"), int) and \
            payload["batch_size"] < 1:
        problems.append("'batch_size' must be >= 1")
    trials = payload["trials"]
    if not isinstance(trials, list):
        problems.append("'trials' must be a list")
    else:
        for index, trial in enumerate(trials):
            if not isinstance(trial, dict):
                problems.append(f"trial {index}: not a JSON object")
                continue
            for name in ("index", "genome", "score"):
                if name not in trial:
                    problems.append(
                        f"trial {index}: missing field {name!r}")
    optimizer = payload["optimizer"]
    if not isinstance(optimizer, dict):
        problems.append("'optimizer' must be an object")
    else:
        for name in OPTIMIZER_STATE_FIELDS:
            if name not in optimizer:
                problems.append(f"optimizer state missing field {name!r}")
        rng_state = optimizer.get("rng_state")
        if rng_state is not None and (
                not isinstance(rng_state, dict)
                or "bit_generator" not in rng_state):
            problems.append(
                "optimizer 'rng_state' must be a bit-generator state "
                "object with a 'bit_generator' field")
    spec = payload.get("dataset_spec")
    if spec is not None and not isinstance(spec, dict):
        problems.append("'dataset_spec' must be an object or null")
    return problems


def validate_checkpoint_file(path: Union[str, Path]) -> List[str]:
    """Validate a checkpoint file (run directory or direct path)."""
    resolved = checkpoint_path(path)
    if not resolved.exists():
        return [f"{resolved}: no checkpoint found"]
    try:
        payload = json.loads(resolved.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{resolved}: unreadable ({exc})"]
    return [f"{resolved}: {p}" for p in validate_checkpoint(payload)]
