"""Fault tolerance for long-running searches: checkpoints + fault injection.

A paper-scale BOMP-NAS search runs for ~75 GPU-hours; this package makes
such runs survivable instead of all-or-nothing:

- :mod:`repro.resilience.checkpoint` — atomic per-batch search-state
  persistence (``checkpoint.json``: trial history, optimizer RNG state,
  schedule) and the loader behind ``repro search --resume`` /
  ``BOMPNAS.run(resume_from=...)``.  A resumed run is bit-identical to an
  uninterrupted one.
- :mod:`repro.resilience.faults` — a deterministic, env-controlled fault
  harness (``BOMP_FAULTS``) that injects worker crashes, hangs, errors,
  corrupt outcomes, and mid-checkpoint kills at scripted trial indices, so
  every failure mode the engine handles is exercised by tier-1 tests.

The retry/timeout/degradation *policy* that consumes the injected faults
lives with the process pool in :mod:`repro.parallel.engine`
(:class:`~repro.parallel.engine.RetryPolicy`).
"""

from .checkpoint import (CHECKPOINT_FILENAME, CHECKPOINT_SCHEMA_VERSION,
                         CheckpointError, SearchCheckpoint, checkpoint_path,
                         has_checkpoint, load_checkpoint, save_checkpoint,
                         validate_checkpoint, validate_checkpoint_file)
from .faults import (FAULT_DIR_ENV, FAULT_KINDS, FAULTS_ENV, FaultPlan,
                     FaultPlanError, InjectedFault, active_plan,
                     checkpoint_fault, corrupt_outcome_due,
                     inject_trial_fault)

__all__ = [
    "SearchCheckpoint", "CheckpointError", "CHECKPOINT_FILENAME",
    "CHECKPOINT_SCHEMA_VERSION", "checkpoint_path", "has_checkpoint",
    "load_checkpoint", "save_checkpoint", "validate_checkpoint",
    "validate_checkpoint_file",
    "FaultPlan", "FaultPlanError", "InjectedFault", "FAULTS_ENV",
    "FAULT_DIR_ENV", "FAULT_KINDS", "active_plan", "checkpoint_fault",
    "corrupt_outcome_due", "inject_trial_fault",
]
