"""Deterministic, env-controlled fault injection for resilience tests.

The whole point of a fault-tolerance layer is that it is *proven*, not
asserted — so every failure mode the engine claims to survive (worker
crashes, hangs, corrupt outcomes, deaths mid-checkpoint) must be
triggerable on demand, at a scripted trial index, across process
boundaries.  This module is that trigger.

A *fault plan* is parsed from the ``BOMP_FAULTS`` environment variable::

    BOMP_FAULTS="crash@3,hang@5,error@2x2,corrupt@7"

Each entry is ``kind@index`` with an optional ``xN`` repeat count (default
1).  Supported kinds:

- ``crash``     — the worker process SIGKILLs itself before evaluating the
  trial (simulates the OOM killer / preempted node);
- ``hang``      — the worker sleeps ``BOMP_FAULT_HANG_S`` seconds (default
  3600) before evaluating, tripping the per-trial timeout;
- ``error``     — an exception is raised inside evaluation and ships back
  as a ``TrialOutcome.error``;
- ``corrupt``   — the worker returns a structurally invalid outcome
  (no results, no error) that the engine must reject and retry;
- ``ckpt-tear`` — the process SIGKILLs itself *mid-checkpoint*, after the
  temp file is written but before the atomic rename (the index is the
  checkpoint's batch index);
- ``ckpt-kill`` — the process SIGKILLs itself immediately after the
  checkpoint rename lands (a clean kill between batches).

Because faults must fire a bounded number of times even when the faulting
process dies and a fresh worker retries the same trial, fired-counts are
recorded in a filesystem *ledger* (``BOMP_FAULT_DIR``): each firing claims
one ``<kind>-<index>-<n>`` file with ``O_CREAT | O_EXCL``, which is atomic
across processes.  A plan without a ledger directory is an error — it
would retry-crash forever.

Injection sites live in the worker path (:func:`inject_trial_fault`,
:func:`corrupt_outcome_due` in :mod:`repro.parallel.engine`) and the
checkpoint writer (:func:`checkpoint_fault` in
:mod:`repro.resilience.checkpoint`); with ``BOMP_FAULTS`` unset they cost
one environment lookup.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

#: the fault plan, e.g. ``"crash@3,hang@5x2"``
FAULTS_ENV = "BOMP_FAULTS"

#: ledger directory recording how often each fault has fired
FAULT_DIR_ENV = "BOMP_FAULT_DIR"

#: how long an injected hang sleeps (seconds)
HANG_SECONDS_ENV = "BOMP_FAULT_HANG_S"

DEFAULT_HANG_SECONDS = 3600.0

#: every fault kind a plan may script
FAULT_KINDS = ("crash", "hang", "error", "corrupt", "ckpt-tear", "ckpt-kill")


class FaultPlanError(ValueError):
    """The ``BOMP_FAULTS`` specification is malformed or unusable."""


class InjectedFault(RuntimeError):
    """The exception raised by an injected ``error`` fault."""


class FaultPlan:
    """A parsed fault plan plus the ledger enforcing bounded firing.

    Args:
        faults: ``(kind, index) -> count`` firing budget.
        ledger: directory holding one marker file per firing.
    """

    def __init__(self, faults: Dict[Tuple[str, int], int],
                 ledger: Path) -> None:
        self.faults = dict(faults)
        self.ledger = Path(ledger)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, spec: str, ledger: Optional[str]) -> "FaultPlan":
        """Parse a ``kind@index[xN]`` list; requires a ledger directory."""
        if not ledger:
            raise FaultPlanError(
                f"{FAULTS_ENV} is set but {FAULT_DIR_ENV} is not; a ledger "
                "directory is required so faults fire a bounded number of "
                "times across worker respawns")
        faults: Dict[Tuple[str, int], int] = {}
        for entry in spec.replace(";", ",").split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "@" not in entry:
                raise FaultPlanError(
                    f"bad fault entry {entry!r}: expected kind@index[xN]")
            kind, _, where = entry.partition("@")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r}; choices: {FAULT_KINDS}")
            index_part, _, count_part = where.partition("x")
            try:
                index = int(index_part)
                count = int(count_part) if count_part else 1
            except ValueError:
                raise FaultPlanError(
                    f"bad fault entry {entry!r}: expected kind@index[xN]")
            if index < 0 or count < 1:
                raise FaultPlanError(
                    f"bad fault entry {entry!r}: index must be >= 0 and "
                    "count >= 1")
            key = (kind, index)
            faults[key] = faults.get(key, 0) + count
        return cls(faults, Path(ledger))

    def fires(self, kind: str, index: int) -> bool:
        """True iff this (kind, index) fault should fire *now*.

        A ``True`` return atomically claims one firing slot in the ledger,
        so the fault fires exactly its budgeted count across any number of
        processes, retries, and worker respawns.
        """
        budget = self.faults.get((kind, index), 0)
        if budget <= 0:
            return False
        self.ledger.mkdir(parents=True, exist_ok=True)
        for n in range(budget):
            marker = self.ledger / f"{kind}-{index}-{n}"
            try:
                fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False


# parse-once cache keyed by the exact env values (the ledger lives on the
# filesystem, so a cached plan object stays correct across firings)
_cache: Tuple[Optional[str], Optional[str], Optional[FaultPlan]] = \
    (None, None, None)


def active_plan() -> Optional[FaultPlan]:
    """The current env-configured fault plan, or ``None`` when unset."""
    global _cache
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return None
    ledger = os.environ.get(FAULT_DIR_ENV)
    if _cache[0] == spec and _cache[1] == ledger:
        return _cache[2]
    plan = FaultPlan.parse(spec, ledger)
    _cache = (spec, ledger, plan)
    return plan


def _die() -> None:  # pragma: no cover — the process is gone afterwards
    """Hard-kill the current process (uncatchable, like the OOM killer)."""
    os.kill(os.getpid(), signal.SIGKILL)


def hang_seconds() -> float:
    return float(os.environ.get(HANG_SECONDS_ENV, DEFAULT_HANG_SECONDS))


def inject_trial_fault(index: int) -> None:
    """Worker-path hook: crash, hang, or raise before evaluating ``index``.

    Called at the top of the worker task.  ``crash`` never returns;
    ``hang`` sleeps long enough to trip the engine's per-trial timeout;
    ``error`` raises :class:`InjectedFault` (shipped back as a normal
    worker error outcome).
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fires("crash", index):  # pragma: no cover — kills the worker
        _die()
    if plan.fires("hang", index):
        time.sleep(hang_seconds())
    if plan.fires("error", index):
        raise InjectedFault(f"injected worker error at trial {index}")


def corrupt_outcome_due(index: int) -> bool:
    """Worker-path hook: should trial ``index`` return a corrupt outcome?"""
    plan = active_plan()
    return plan is not None and plan.fires("corrupt", index)


def checkpoint_fault(stage: str, batch_index: int) -> None:
    """Checkpoint-writer hook: die mid-write (tear) or post-rename (kill).

    ``stage`` is ``"ckpt-tear"`` (called between writing the temp file and
    the atomic rename — a survived tear must leave the previous checkpoint
    intact) or ``"ckpt-kill"`` (called right after the rename lands).
    """
    plan = active_plan()
    if plan is not None and plan.fires(stage, batch_index):
        _die()  # pragma: no cover — kills the process
