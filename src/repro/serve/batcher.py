"""The dynamic batcher: per-model worker threads with private arenas.

Concurrent single-image requests are coalesced into arena-sized batches:
each :class:`BatchWorker` loops on
:meth:`~repro.serve.queueing.ModelQueue.take_batch` (block for the first
request, wait up to ``max_wait_s`` for more, never past ``max_batch``),
stacks the images into its preallocated staging buffer, and executes the
whole batch through its *own*
:class:`~repro.infer.engine.ArenaExecutor`.  Short batches — a lone
request at low load, the odd tail of a drain — run on the executor's
prefix-view path, so every batch size ``1..max_batch`` is bit-identical
to the serial ``repro infer`` reference on the same images (the test
suite asserts this).

Threading model: the compiled :class:`~repro.infer.engine.Program` is
shared and immutable; everything mutable (arena, staging buffer, logits
scratch) is owned by exactly one worker thread.  ``workers_per_model >
1`` therefore scales concurrency by adding arenas, never by sharing one.

Per-request bookkeeping feeds the SLO metrics
(``serve.<model>.latency_s`` histograms, ``serve.<model>.timeouts``
counters, batch-size histograms) through the thread-safe
:mod:`repro.obs.metrics` registry owned by the daemon.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from ..infer.engine import ArenaExecutor
from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_recorder
from .queueing import ModelQueue, RequestTimeout, ServeRequest
from .registry import ModelEntry

#: sub-second latency buckets (seconds) for the serve SLO histograms —
#: the default trace buckets top out too coarse below 1 ms
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0)

#: batch-size buckets: exact counts up to 16, then coarse
BATCH_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 32, 64, 128, 256)


class BatchWorker(threading.Thread):
    """One arena, one thread, one model: drains batches until closed."""

    def __init__(self, entry: ModelEntry, queue: ModelQueue,
                 metrics: MetricsRegistry, max_batch: int,
                 max_wait_s: float, worker_index: int = 0) -> None:
        super().__init__(
            name=f"serve-{entry.name}-w{worker_index}", daemon=True)
        self.entry = entry
        self.queue = queue
        self.metrics = metrics
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.batches_run = 0
        self.images_run = 0
        # private execution state — never shared across threads
        self.executor = ArenaExecutor(entry.program, max_batch)
        h, w, c = entry.input_shape
        self._stage_x = np.empty((max_batch, h, w, c), dtype=np.float32)
        self._logits = np.empty((max_batch, entry.num_classes),
                                dtype=np.float32)
        prefix = f"serve.{entry.name}"
        self._m_latency = metrics.histogram(f"{prefix}.latency_s",
                                            LATENCY_BUCKETS)
        self._m_batch = metrics.histogram(f"{prefix}.batch_size",
                                          BATCH_BUCKETS)
        self._m_requests = metrics.counter(f"{prefix}.requests")
        self._m_batches = metrics.counter(f"{prefix}.batches")
        self._m_timeouts = metrics.counter(f"{prefix}.timeouts")
        self._m_errors = metrics.counter(f"{prefix}.errors")

    def run(self) -> None:
        while True:
            batch = self.queue.take_batch(self.max_batch, self.max_wait_s)
            if batch is None:
                return                      # queue drained and closed
            self._run_batch(batch)

    # -- one batch ----------------------------------------------------------
    def _run_batch(self, batch: List[ServeRequest]) -> None:
        live = self._drop_expired(batch)
        if not live:
            return
        n = len(live)
        recorder = get_recorder()
        try:
            x = self._stage_x[:n]
            for i, request in enumerate(live):
                x[i] = request.image
            logits = self._logits[:n]
            if recorder.enabled:
                with recorder.span("serve.batch", model=self.entry.name,
                                   images=n):
                    self.executor.run_batch_into(x, logits)
            else:
                self.executor.run_batch_into(x, logits)
        except BaseException as exc:  # answer everyone, keep the worker up
            self._m_errors.inc(n)
            for request in live:
                request.set_error(exc)
            return
        self.batches_run += 1
        self.images_run += n
        self._m_batches.inc()
        self._m_requests.inc(n)
        self._m_batch.observe(n)
        for i, request in enumerate(live):
            # copy out: the logits scratch is reused for the next batch
            request.set_result(logits[i].copy())
            self._m_latency.observe(request.latency_s)

    def _drop_expired(self,
                      batch: List[ServeRequest]) -> List[ServeRequest]:
        """Fail requests whose client deadline passed while they queued."""
        live = []
        for request in batch:
            if request.expired():
                self._m_timeouts.inc()
                request.set_error(RequestTimeout(
                    f"{self.entry.name}: spent too long in queue"))
            else:
                live.append(request)
        return live


class ModelRuntime:
    """A loaded model plus its queue and worker pool; the serving unit."""

    def __init__(self, entry: ModelEntry, metrics: MetricsRegistry,
                 max_batch: int = 8, max_wait_s: float = 0.005,
                 queue_depth: int = 64, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers_per_model must be >= 1")
        self.entry = entry
        self.queue = ModelQueue(entry.name, maxsize=queue_depth)
        self.metrics = metrics
        self._m_shed = metrics.counter(f"serve.{entry.name}.shed")
        self._m_depth = metrics.gauge(f"serve.{entry.name}.queue_depth")
        self.workers = [
            BatchWorker(entry, self.queue, metrics, max_batch=max_batch,
                        max_wait_s=max_wait_s, worker_index=i)
            for i in range(workers)]

    def start(self) -> None:
        for worker in self.workers:
            worker.start()

    def submit(self, request: ServeRequest) -> None:
        """Admit one request (sheds on a full queue, counts the shed)."""
        try:
            self.queue.submit(request)
        except Exception:
            self._m_shed.inc()
            raise
        self._m_depth.set(self.queue.depth)

    def stop(self, drain: bool = True,
             timeout_s: Optional[float] = 30.0) -> int:
        """Close the queue, finish (or flush) the backlog, join workers.

        With ``drain`` every admitted request is still answered; without
        it the backlog is failed fast.  Returns the number of requests
        flushed (0 for a clean drain).
        """
        self.queue.close()
        flushed = 0
        if not drain:
            from .queueing import ModelDraining
            flushed = self.queue.flush(
                ModelDraining(f"{self.entry.name}: shut down"))
        for worker in self.workers:
            if worker.ident is not None:       # joining an unstarted
                worker.join(timeout_s)         # thread is an error
        return flushed

    def describe(self) -> dict:
        info = self.entry.describe()
        info.update(queue_depth=self.queue.depth,
                    queue_capacity=self.queue.maxsize,
                    workers=len(self.workers),
                    draining=self.queue.closed,
                    batches_run=sum(w.batches_run for w in self.workers),
                    images_run=sum(w.images_run for w in self.workers))
        return info
