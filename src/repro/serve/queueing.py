"""Admission control: bounded per-model queues with shedding and drain.

Every inference request becomes a :class:`ServeRequest` — a one-shot
future the HTTP handler thread blocks on while a batch worker fills it.
Requests are admitted into a :class:`ModelQueue`, the backpressure unit:

- **bounded** — a full queue sheds the request immediately
  (:class:`QueueFullError`, HTTP 429) instead of letting latency grow
  without bound; the queue depth *is* the admission policy;
- **deadline-aware** — a request older than its client deadline when a
  worker picks it up fails fast (:class:`RequestTimeout`, HTTP 504)
  rather than wasting a batch slot on an answer nobody is waiting for;
- **drainable** — :meth:`ModelQueue.close` flips the queue into drain
  mode: new submissions are refused (:class:`ModelDraining`, HTTP 503)
  while everything already admitted is still batched, executed, and
  answered.  This is the SIGTERM story: close every queue, join the
  workers, exit with zero dropped in-flight requests.

:meth:`ModelQueue.take_batch` implements the dynamic-batching wait
discipline (first request blocks, then up to ``max_wait_s`` for the
batch to fill); the loop that calls it lives in
:mod:`repro.serve.batcher`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, List, Optional

import numpy as np


class AdmissionError(RuntimeError):
    """A request was refused at the door (never entered a queue)."""

    status = 503


class QueueFullError(AdmissionError):
    """The model's queue is at capacity — shed, client should back off."""

    status = 429


class ModelDraining(AdmissionError):
    """The queue (or the whole daemon) is draining for shutdown/evict."""

    status = 503


class UnknownModel(AdmissionError):
    """No model with that name is loaded."""

    status = 404


class RequestTimeout(RuntimeError):
    """The request's client deadline passed while it waited in queue."""

    status = 504


class ServeRequest:
    """One single-image inference request; a one-shot future.

    The submitting thread calls :meth:`wait`; a batch worker calls
    :meth:`set_result` or :meth:`set_error` exactly once.  ``image`` is
    the float32 HWC array; ``logits`` is filled with a private copy of
    the worker's output row (the arena is reused for the next batch, so
    the row must be copied out before the worker moves on).
    """

    __slots__ = ("model", "image", "enqueued_at", "deadline", "logits",
                 "error", "done_at", "_done")

    def __init__(self, model: str, image: np.ndarray,
                 timeout_s: Optional[float] = None) -> None:
        self.model = model
        self.image = image
        self.enqueued_at = time.monotonic()
        self.deadline = (self.enqueued_at + timeout_s
                         if timeout_s is not None else None)
        self.logits: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.done_at: Optional[float] = None
        self._done = threading.Event()

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) \
            > self.deadline

    def set_result(self, logits: np.ndarray) -> None:
        self.logits = logits
        self.done_at = time.monotonic()
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self.error = error
        self.done_at = time.monotonic()
        self._done.set()

    def wait(self, timeout_s: Optional[float] = None) -> np.ndarray:
        """Block until a worker answers; raises the worker's error."""
        if not self._done.wait(timeout_s):
            raise RequestTimeout(
                f"{self.model}: no response within {timeout_s}s")
        if self.error is not None:
            raise self.error
        return self.logits

    @property
    def latency_s(self) -> Optional[float]:
        """Queue-entry to answer, the latency the SLO histograms track."""
        if self.done_at is None:
            return None
        return self.done_at - self.enqueued_at


class ModelQueue:
    """A bounded FIFO of :class:`ServeRequest` with batch takeout.

    One queue per loaded model; ``maxsize`` bounds *queued* requests
    (in-flight batches are additionally bounded by the number of workers,
    each of which holds at most one batch — together these are the
    per-model concurrency limit).
    """

    def __init__(self, name: str, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("queue maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.closed = False
        self._items: "deque[ServeRequest]" = deque()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def submit(self, request: ServeRequest) -> None:
        """Admit one request, or shed it (raises, nothing enqueued)."""
        with self._cond:
            if self.closed:
                raise ModelDraining(f"{self.name}: draining, not "
                                    "accepting new requests")
            if len(self._items) >= self.maxsize:
                raise QueueFullError(
                    f"{self.name}: queue full ({self.maxsize} waiting)")
            self._items.append(request)
            self._cond.notify()

    def take_batch(self, max_batch: int,
                   max_wait_s: float) -> Optional[List[ServeRequest]]:
        """Block for the next batch; ``None`` means drained — worker exits.

        Blocks until at least one request is queued, then keeps waiting —
        up to ``max_wait_s`` past the *first* takeout attempt — for the
        batch to fill to ``max_batch``.  A closed queue never waits: the
        remaining requests are flushed in ``max_batch``-sized bites so
        drain completes as fast as the executor can go.
        """
        with self._cond:
            while not self._items:
                if self.closed:
                    return None
                self._cond.wait()
            if not self.closed and len(self._items) < max_batch:
                deadline = time.monotonic() + max_wait_s
                while len(self._items) < max_batch and not self.closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            batch = [self._items.popleft()
                     for _ in range(min(max_batch, len(self._items)))]
            return batch

    def close(self) -> None:
        """Refuse new submissions; wake workers to flush what remains."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def flush(self, error: BaseException) -> int:
        """Fail everything still queued (hard shutdown); returns count."""
        with self._cond:
            dropped = 0
            while self._items:
                self._items.popleft().set_error(error)
                dropped += 1
            return dropped
