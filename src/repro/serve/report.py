"""The serve SLO report: latency percentiles vs targets, shed/timeouts.

``repro serve-report <run_dir-or-stats.json>`` renders the
``serve_stats.json`` snapshot the daemon writes on shutdown (``repro
report`` falls through here for run directories that hold serve stats
instead of an event log).  The view is per model::

    model      reqs  imgs/b  p50 ms  p95 ms  p99 ms  shed  t/o  SLO
    cifar       512    6.2     4.1     7.9    11.2      0    0   ok

``SLO`` compares the measured p99 against the configured
``slo_p99_ms`` target; a breach renders the whole report as failed
(non-zero CLI exit), which is what lets CI assert a latency budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .daemon import STATS_FILENAME, STATS_SCHEMA_VERSION


class ServeStatsError(ValueError):
    """A serve stats file is missing or malformed."""


def stats_path(source: Union[str, Path]) -> Path:
    """Resolve a run directory or direct path to the stats JSON file."""
    path = Path(source)
    if path.is_dir():
        return path / STATS_FILENAME
    return path


def load_serve_stats(source: Union[str, Path]) -> Dict[str, Any]:
    path = stats_path(source)
    if not path.exists():
        raise ServeStatsError(
            f"{path}: no serve stats found (did the daemon run with "
            f"--run-dir and shut down cleanly?)")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ServeStatsError(f"{path}: invalid JSON ({exc})")
    if not isinstance(payload, dict):
        raise ServeStatsError(f"{path}: not a JSON object")
    return payload


def validate_serve_stats(payload: Dict[str, Any]) -> List[str]:
    """Schema problems of a stats payload (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["stats payload is not a JSON object"]
    if payload.get("schema") != STATS_SCHEMA_VERSION:
        problems.append(f"schema {payload.get('schema')!r} != "
                        f"{STATS_SCHEMA_VERSION}")
    for key in ("config", "metrics", "host"):
        if not isinstance(payload.get(key), dict):
            problems.append(f"{key!r} must be an object")
    if not isinstance(payload.get("models"), list):
        problems.append("'models' must be a list")
    return problems


@dataclass
class ModelSLO:
    """One model's latency/shed view, in milliseconds."""

    name: str
    requests: int = 0
    batches: int = 0
    mean_batch: float = 0.0
    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    slo_p99_ms: Optional[float] = None

    @property
    def slo_ok(self) -> Optional[bool]:
        """None when no target or no traffic — nothing to judge."""
        if self.slo_p99_ms is None or self.p99_ms is None \
                or self.requests == 0:
            return None
        return self.p99_ms <= self.slo_p99_ms


@dataclass
class ServeReport:
    source: str
    stats: Dict[str, Any]
    models: List[ModelSLO] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        """True unless some model with traffic breached its SLO."""
        return all(model.slo_ok is not False for model in self.models)


def _metric(metrics: Dict[str, Any], name: str) -> Dict[str, Any]:
    value = metrics.get(name)
    return value if isinstance(value, dict) else {}


def build_report(source: Union[str, Path]) -> ServeReport:
    stats = load_serve_stats(source)
    report = ServeReport(source=str(stats_path(source)), stats=stats)
    report.warnings.extend(validate_serve_stats(stats))
    metrics = stats.get("metrics") or {}
    config = stats.get("config") or {}
    slo_target = config.get("slo_p99_ms")
    for model in stats.get("models") or []:
        if not isinstance(model, dict) or "name" not in model:
            continue
        name = model["name"]
        prefix = f"serve.{name}"
        latency = _metric(metrics, f"{prefix}.latency_s")
        batch = _metric(metrics, f"{prefix}.batch_size")

        def _ms(key: str) -> Optional[float]:
            value = latency.get(key)
            return round(value * 1000.0, 3) \
                if isinstance(value, (int, float)) else None

        report.models.append(ModelSLO(
            name=name,
            requests=int(_metric(metrics, f"{prefix}.requests")
                         .get("value", 0)),
            batches=int(_metric(metrics, f"{prefix}.batches")
                        .get("value", 0)),
            mean_batch=float(batch.get("mean", 0.0) or 0.0),
            p50_ms=_ms("p50"), p95_ms=_ms("p95"), p99_ms=_ms("p99"),
            shed=int(_metric(metrics, f"{prefix}.shed").get("value", 0)),
            timeouts=int(_metric(metrics, f"{prefix}.timeouts")
                         .get("value", 0)),
            errors=int(_metric(metrics, f"{prefix}.errors")
                       .get("value", 0)),
            slo_p99_ms=slo_target))
    return report


def _fmt(value: Optional[float], width: int = 8) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:{width}.2f}"


def render_serve_report(report: ServeReport) -> str:
    stats = report.stats
    config = stats.get("config") or {}
    lines = [f"serve SLO report - {report.source}"]
    started, stopped = stats.get("started_at"), stats.get("stopped_at")
    if isinstance(started, (int, float)) and isinstance(stopped,
                                                        (int, float)):
        lines.append(f"uptime {stopped - started:.1f}s, "
                     f"drained {'cleanly' if stats.get('drained_cleanly') else 'HARD'}"
                     f" ({stats.get('flushed_requests', 0)} flushed)")
    lines.append(
        f"config: max_batch={config.get('max_batch')} "
        f"max_wait_ms={config.get('max_wait_ms')} "
        f"queue_depth={config.get('queue_depth')} "
        f"workers={config.get('workers_per_model')}"
        + (f" slo_p99_ms={config.get('slo_p99_ms')}"
           if config.get("slo_p99_ms") is not None else ""))
    if not report.models:
        lines.append("no models served")
    else:
        lines.append(f"{'model':<16} {'reqs':>7} {'imgs/b':>7} "
                     f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} "
                     f"{'shed':>5} {'t/o':>4} {'err':>4}  SLO")
        for model in report.models:
            verdict = {True: "ok", False: "BREACH", None: "-"}[model.slo_ok]
            lines.append(
                f"{model.name:<16} {model.requests:>7} "
                f"{model.mean_batch:>7.2f} "
                f"{_fmt(model.p50_ms)} {_fmt(model.p95_ms)} "
                f"{_fmt(model.p99_ms)} "
                f"{model.shed:>5} {model.timeouts:>4} "
                f"{model.errors:>4}  {verdict}")
    total_shed = _metric(stats.get("metrics") or {}, "serve.shed") \
        .get("value", 0)
    total = _metric(stats.get("metrics") or {}, "serve.requests") \
        .get("value", 0)
    lines.append(f"totals: {int(total)} admitted, {int(total_shed)} shed")
    for warning in report.warnings:
        lines.append(f"warning: {warning}")
    return "\n".join(lines)
