"""The serving daemon: stdlib-HTTP front end over the batching runtime.

Zero new dependencies, matching the repo's style: the front end is an
``http.server.ThreadingHTTPServer`` speaking a small JSON protocol.
Each connection gets a handler thread that validates the request, splits
it into single-image :class:`~repro.serve.queueing.ServeRequest` futures,
admits them through the model's bounded queue, and blocks until the
batch workers answer.  The dynamic batcher therefore coalesces requests
*across* connections — eight concurrent clients sending one image each
become one eight-image arena batch.

Endpoints (all JSON)::

    GET    /healthz                     liveness + drain state
    GET    /v1/models                   loaded models + queue stats
    POST   /v1/models/<name>/load       {"path": "<file.bomp>"}
    DELETE /v1/models/<name>            drain + evict one model
    POST   /v1/models/<name>/predict    {"inputs": [...], "timeout_ms": n,
                                         "return_logits": false}
    GET    /v1/stats                    metrics snapshot (SLO source)

Admission failures map to HTTP status codes (429 shed, 503 draining,
404 unknown model, 504 deadline exceeded, 400 malformed), so clients
can tell backpressure from brokenness.

Lifecycle: :meth:`ServeDaemon.shutdown` with ``drain=True`` (what the
CLI's SIGTERM handler calls) closes every queue first — new work is
refused — lets the workers finish the admitted backlog, answers the
waiting handler threads, then stops the HTTP server and writes the
``serve_stats.json`` SLO snapshot into the run directory.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs.host import host_metadata
from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_recorder
from .queueing import (AdmissionError, RequestTimeout, ServeRequest,
                       UnknownModel)
from .batcher import ModelRuntime
from .registry import ModelRegistry, RegistryError

#: serve_stats.json schema version (append-only, like the BENCH files)
STATS_SCHEMA_VERSION = 1

STATS_FILENAME = "serve_stats.json"


@dataclass
class ServeConfig:
    """Daemon knobs; every field has a serving-sane default."""

    host: str = "127.0.0.1"
    port: int = 8700                  # 0 = ephemeral (tests, bench)
    max_batch: int = 8                # arena capacity per worker
    max_wait_ms: float = 5.0          # batch-fill deadline
    queue_depth: int = 64             # admitted-but-unbatched bound
    workers_per_model: int = 1        # arenas (threads) per model
    default_timeout_ms: float = 30_000.0   # server-side request deadline
    slo_p99_ms: Optional[float] = None     # reported-against target
    run_dir: Optional[str] = None          # serve_stats.json destination

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        if data["run_dir"] is not None:    # accept pathlib.Path too
            data["run_dir"] = str(data["run_dir"])
        return data


class ServeDaemon:
    """Registry + per-model runtimes + HTTP front end, one process."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 registry: Optional[ModelRegistry] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.registry = registry if registry is not None else ModelRegistry()
        self._runtimes: Dict[str, ModelRuntime] = {}
        self._lock = threading.Lock()
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._draining = False
        self._stopped = threading.Event()
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._m_requests = self.metrics.counter("serve.requests")
        self._m_shed = self.metrics.counter("serve.shed")
        self._m_timeouts = self.metrics.counter("serve.timeouts")

    # -- model management ---------------------------------------------------
    def load_model(self, name: str, path: Union[str, Path]) -> ModelRuntime:
        """Load ``path`` under ``name`` and start its batch workers.

        Reloading an existing name drains the old runtime first, then
        swaps in the new one — a re-export rolls over without dropping
        admitted requests.
        """
        if self._draining:
            raise RegistryError("daemon is draining; load refused")
        recorder = get_recorder()
        with recorder.span("serve.load", model=name):
            entry = self.registry.load(name, path)
            runtime = ModelRuntime(
                entry, self.metrics,
                max_batch=self.config.max_batch,
                max_wait_s=self.config.max_wait_ms / 1000.0,
                queue_depth=self.config.queue_depth,
                workers=self.config.workers_per_model)
        with self._lock:
            old = self._runtimes.get(name)
            runtime.start()
            self._runtimes[name] = runtime
        if old is not None:
            old.stop(drain=True)
        return runtime

    def evict_model(self, name: str, drain: bool = True) -> None:
        with self._lock:
            runtime = self._runtimes.pop(name, None)
        if runtime is None:
            raise UnknownModel(f"no model named {name!r}")
        runtime.stop(drain=drain)
        self.registry.evict(name)

    def runtime(self, name: str) -> ModelRuntime:
        runtime = self._runtimes.get(name)
        if runtime is None:
            raise UnknownModel(f"no model named {name!r}")
        return runtime

    def model_names(self) -> List[str]:
        return sorted(self._runtimes)

    # -- request path -------------------------------------------------------
    def submit(self, model: str, image: np.ndarray,
               timeout_s: Optional[float] = None) -> ServeRequest:
        """Admit one single-image request; returns its future.

        The in-process entry point: HTTP handlers, the load generator,
        and tests all go through here, so they share admission,
        batching, and metrics behavior exactly.
        """
        runtime = self.runtime(model)
        request = ServeRequest(model, image, timeout_s=timeout_s)
        try:
            runtime.submit(request)
        except AdmissionError:
            self._m_shed.inc()
            raise
        self._m_requests.inc()
        return request

    def predict(self, model: str, images: np.ndarray,
                timeout_s: Optional[float] = None) -> np.ndarray:
        """Blocking convenience: submit each image, gather the logits."""
        if timeout_s is None:
            timeout_s = self.config.default_timeout_ms / 1000.0
        requests = [self.submit(model, image, timeout_s=timeout_s)
                    for image in images]
        rows = []
        for request in requests:
            try:
                rows.append(request.wait(timeout_s * 2))
            except RequestTimeout:
                self._m_timeouts.inc()
                raise
        return np.stack(rows)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Start the HTTP server thread; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="serve-http",
            daemon=True)
        self._server_thread.start()
        self.started_at = time.time()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("daemon not started")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until shutdown is requested or done (the CLI main loop)."""
        return self._stopped.wait(timeout_s)

    def request_shutdown(self) -> None:
        """Wake :meth:`wait`; safe to call from a signal handler.

        Only sets an event — the waiting thread performs the actual
        drain, since :meth:`shutdown` takes locks and joins threads,
        neither of which belongs inside a signal handler.
        """
        self._stopped.set()

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Stop everything; returns the final stats payload.

        Drain order matters: close admission first (clients get 503 and
        can fail over), let the batch workers empty the admitted
        backlog, answer the blocked handler threads, and only then tear
        down the HTTP server — so an in-flight request is never dropped
        by a clean shutdown.
        """
        with self._lock:
            already = self._draining
            self._draining = True
            runtimes = list(self._runtimes.values())
        if already:
            return self.stats_snapshot()
        recorder = get_recorder()
        with recorder.span("serve.drain", models=len(runtimes),
                           clean=drain):
            flushed = sum(runtime.stop(drain=drain)
                          for runtime in runtimes)
        if self._server is not None:
            self._server.shutdown()        # stop accepting connections
            self._server.server_close()    # join handler threads
            if self._server_thread is not None:
                self._server_thread.join(10.0)
        self.stopped_at = time.time()
        stats = self.stats_snapshot(flushed=flushed, drained=drain)
        if self.config.run_dir:
            run_dir = Path(self.config.run_dir)
            run_dir.mkdir(parents=True, exist_ok=True)
            (run_dir / STATS_FILENAME).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n")
        self._stopped.set()
        return stats

    @property
    def draining(self) -> bool:
        return self._draining

    def stats_snapshot(self, flushed: int = 0,
                       drained: bool = True) -> Dict[str, Any]:
        """The ``serve_stats.json`` payload (also ``GET /v1/stats``)."""
        with self._lock:
            runtimes = [self._runtimes[name]
                        for name in sorted(self._runtimes)]
        return {
            "schema": STATS_SCHEMA_VERSION,
            "started_at": self.started_at,
            "stopped_at": self.stopped_at,
            "draining": self._draining,
            "drained_cleanly": drained,
            "flushed_requests": flushed,
            "config": self.config.to_dict(),
            "host": host_metadata(),
            "models": [runtime.describe() for runtime in runtimes],
            "metrics": self.metrics.snapshot(),
        }


# -- the HTTP protocol ------------------------------------------------------

def _make_handler(daemon: ServeDaemon):
    """A handler class closed over ``daemon`` (stdlib handler API)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/" + str(STATS_SCHEMA_VERSION)

        # -- plumbing -----------------------------------------------------
        def log_message(self, *args: Any) -> None:
            pass                          # quiet; metrics cover it

        def _send(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._send(status, {"error": message})

        def _read_json(self) -> Optional[Dict[str, Any]]:
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw.decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._error(400, "body is not valid JSON")
                return None
            if not isinstance(payload, dict):
                self._error(400, "body must be a JSON object")
                return None
            return payload

        def _model_route(self) -> Optional[Tuple[str, str]]:
            """``/v1/models/<name>[/<verb>]`` -> (name, verb or '')."""
            parts = [p for p in self.path.split("/") if p]
            if len(parts) in (3, 4) and parts[:2] == ["v1", "models"]:
                return parts[2], parts[3] if len(parts) == 4 else ""
            return None

        # -- verbs --------------------------------------------------------
        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._send(200, {
                    "status": "draining" if daemon.draining else "ok",
                    "models": daemon.model_names()})
            elif self.path == "/v1/models":
                self._send(200, {"models": [
                    daemon.runtime(name).describe()
                    for name in daemon.model_names()]})
            elif self.path == "/v1/stats":
                self._send(200, daemon.stats_snapshot())
            else:
                self._error(404, f"no route {self.path!r}")

        def do_DELETE(self) -> None:
            route = self._model_route()
            if route is None or route[1]:
                self._error(404, f"no route {self.path!r}")
                return
            try:
                daemon.evict_model(route[0])
            except UnknownModel as exc:
                self._error(exc.status, str(exc))
                return
            self._send(200, {"evicted": route[0]})

        def do_POST(self) -> None:
            route = self._model_route()
            if route is None:
                self._error(404, f"no route {self.path!r}")
                return
            name, verb = route
            payload = self._read_json()
            if payload is None:
                return
            if verb == "load":
                self._post_load(name, payload)
            elif verb == "predict":
                self._post_predict(name, payload)
            else:
                self._error(404, f"unknown action {verb!r}")

        def _post_load(self, name: str, payload: Dict[str, Any]) -> None:
            path = payload.get("path")
            if not isinstance(path, str):
                self._error(400, "load needs a 'path' string")
                return
            try:
                runtime = daemon.load_model(name, path)
            except (RegistryError, OSError, ValueError) as exc:
                self._error(400, f"load failed: {exc}")
                return
            self._send(200, {"loaded": runtime.describe()})

        def _post_predict(self, name: str,
                          payload: Dict[str, Any]) -> None:
            try:
                runtime = daemon.runtime(name)
            except UnknownModel as exc:
                self._error(exc.status, str(exc))
                return
            try:
                images = np.asarray(payload.get("inputs"),
                                    dtype=np.float32)
            except (TypeError, ValueError):
                self._error(400, "'inputs' must be a numeric array")
                return
            shape = runtime.entry.input_shape
            if images.shape == shape:
                images = images[None]      # one image, un-batched
            if images.ndim != 4 or images.shape[1:] != shape:
                self._error(400, f"expected images of shape "
                                 f"{list(shape)}, got "
                                 f"{list(images.shape)}")
                return
            timeout_ms = payload.get("timeout_ms",
                                     daemon.config.default_timeout_ms)
            timeout_s = float(timeout_ms) / 1000.0
            try:
                requests = [daemon.submit(name, image,
                                          timeout_s=timeout_s)
                            for image in images]
            except AdmissionError as exc:
                self._error(exc.status, str(exc))
                return
            rows = []
            try:
                for request in requests:
                    rows.append(request.wait(timeout_s * 2))
            except RequestTimeout as exc:
                daemon._m_timeouts.inc()
                self._error(exc.status, str(exc))
                return
            except Exception as exc:       # executor failure
                self._error(500, f"inference failed: {exc}")
                return
            logits = np.stack(rows)
            response: Dict[str, Any] = {
                "model": name,
                "predictions": np.argmax(logits, axis=1).tolist(),
                "batch": int(logits.shape[0]),
            }
            if payload.get("return_logits"):
                response["logits"] = logits.tolist()
            self._send(200, response)

    return Handler
