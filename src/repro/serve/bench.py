"""Serving load generator and the ``BENCH_serve.json`` trajectory log.

``measure_serving`` runs a deterministic in-process load test against a
real :class:`~repro.serve.daemon.ServeDaemon` (same admission, batching,
and metrics path the HTTP front end uses, minus socket noise):

1. **sequential baseline** — one client, ``max_batch=1``: every request
   is its own batch, the cost of serving without dynamic batching;
2. **concurrent batched** — ``n_clients`` threads against the configured
   ``max_batch``/``max_wait_ms``: the batcher coalesces the overlap.

Request *content* is fully deterministic (seeded synthetic images served
round-robin), so both phases answer the same work; only wall-clock
varies by host.  The record lands in ``BENCH_serve.json`` — schema
version 1, append-only like the other BENCH files::

    {"schema": 1,
     "runs": [{"timestamp": ..., "dataset": ..., "bits": ...,
               "image_size": ..., "n_requests": ..., "n_clients": ...,
               "max_batch": ..., "max_wait_ms": ..., "queue_depth": ...,
               "seq_s": ..., "conc_s": ..., "seq_ips": ..., "conc_ips": ...,
               "batch_speedup": ..., "mean_batch": ...,
               "p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
               "shed": ..., "timeouts": ...,
               "host": {...}, "host_limited": ...}]}

``host_limited`` is true on single-CPU hosts, where ``n_clients``
threads measure GIL scheduling as much as serving; the bench gate skips
the latency metric there but still gates throughput (batching pays for
itself even on one core by amortizing per-request Python overhead into
one arena pass).
"""

from __future__ import annotations

import json
import os
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..obs.host import host_metadata

BENCH_SCHEMA_VERSION = 1

#: record fields, in stable order (new fields are appended, never renamed)
RECORD_FIELDS = (
    "timestamp", "dataset", "bits", "image_size", "n_requests",
    "n_clients", "max_batch", "max_wait_ms", "queue_depth",
    "seq_s", "conc_s", "seq_ips", "conc_ips", "batch_speedup",
    "mean_batch", "p50_ms", "p95_ms", "p99_ms", "shed", "timeouts",
    "host", "host_limited",
)


def default_bench_path() -> Path:
    """``BENCH_serve.json`` at the repository root (cwd fallback)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "BENCH_serve.json"
    return Path.cwd() / "BENCH_serve.json"


def append_bench_record(path: Path, record: Dict[str, Any]) -> None:
    """Append one run record, creating the file as needed."""
    path = Path(path)
    payload: Dict[str, Any] = {"schema": BENCH_SCHEMA_VERSION, "runs": []}
    if path.exists():
        existing = json.loads(path.read_text())
        if isinstance(existing, dict) and isinstance(
                existing.get("runs"), list):
            payload["runs"] = existing["runs"]
    ordered = {key: record.get(key) for key in RECORD_FIELDS}
    for key in record:
        if key not in ordered:
            ordered[key] = record[key]
    payload["runs"].append(ordered)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def make_bench_artifact(path: Path, dataset: str = "cifar10",
                        bits: int = 8, image_size: int = 16,
                        seed: int = 7,
                        calibration_images: int = 64) -> Path:
    """Write a deterministic ``.bomp`` artifact without running a search.

    Same construction as the inference bench: the seed architecture,
    homogeneously quantized at ``bits`` and PTQ-calibrated on synthetic
    images.  Weights are untrained — throughput and batching behavior do
    not care — which keeps the serve bench (and the CI smoke test) a
    few seconds instead of a full search + final training.
    """
    from ..data.synthetic import load_dataset
    from ..infer.artifact import build_artifact, save_artifact
    from ..quant.apply import apply_policy, calibrate
    from ..space.builder import build_model
    from ..space.genome import MixedPrecisionGenome
    from ..space.space import SearchSpace

    data = load_dataset(dataset, n_train=max(calibration_images, 1),
                        n_test=64, image_size=image_size, seed=seed)
    space = SearchSpace(dataset)
    num_classes = {"cifar10": 10, "cifar100": 100}[dataset]
    model = build_model(space.seed_arch(), num_classes,
                        rng=np.random.default_rng(seed))
    policy = space.seed_policy(bits)
    apply_policy(model, policy)
    calibrate(model, data.x_train[:calibration_images])
    model.set_training(False)
    genome = MixedPrecisionGenome(space.seed_arch(), policy)
    artifact = build_artifact(
        model, genome, num_classes, image_size=image_size,
        in_channels=int(data.x_train.shape[3]), dataset_spec=data.spec,
        meta={"bench": True, "bits": bits, "seed": seed})
    return save_artifact(artifact, path)


def _drive(daemon, model: str, images: np.ndarray, n_requests: int,
           n_clients: int, timeout_s: float = 60.0) -> Dict[str, Any]:
    """Fire ``n_requests`` single-image requests from ``n_clients`` threads.

    Work is dealt round-robin; each client sends its share back-to-back
    (closed-loop clients, the standard serving-bench model).  Returns
    wall time and any per-request failures.
    """
    errors: List[BaseException] = []
    errors_lock = threading.Lock()

    def client(worker: int) -> None:
        for index in range(worker, n_requests, n_clients):
            image = images[index % images.shape[0]]
            try:
                request = daemon.submit(model, image, timeout_s=timeout_s)
                request.wait(timeout_s)
            except BaseException as exc:
                with errors_lock:
                    errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,),
                                name=f"bench-client-{i}")
               for i in range(n_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return {"wall_s": wall, "errors": errors}


def measure_serving(artifact_path: Optional[Path] = None,
                    dataset: str = "cifar10", bits: int = 8,
                    image_size: int = 16, n_requests: int = 256,
                    n_clients: int = 8, max_batch: int = 8,
                    max_wait_ms: float = 2.0, queue_depth: int = 256,
                    seed: int = 7) -> Dict[str, Any]:
    """The serving throughput/latency record (see module docstring)."""
    import tempfile

    from ..data.synthetic import load_dataset
    from .daemon import ServeConfig, ServeDaemon

    tmp = None
    if artifact_path is None:
        tmp = tempfile.TemporaryDirectory(prefix="bomp-serve-bench-")
        artifact_path = Path(tmp.name) / "bench.bomp"
        make_bench_artifact(artifact_path, dataset=dataset, bits=bits,
                            image_size=image_size, seed=seed)
    try:
        data = load_dataset(dataset, n_train=1, n_test=64,
                            image_size=image_size, seed=seed)
        images = np.ascontiguousarray(data.x_test, dtype=np.float32)

        # phase 1: batch-size-1 sequential baseline
        seq = ServeDaemon(ServeConfig(max_batch=1, max_wait_ms=0.0,
                                      queue_depth=queue_depth))
        seq.load_model("bench", artifact_path)
        # warmup: arena build + lazy BLAS setup stay out of the timing
        seq.predict("bench", images[:2])
        seq_run = _drive(seq, "bench", images, n_requests, n_clients=1)
        seq.shutdown(drain=True)

        # phase 2: dynamic batching under concurrent clients
        conc = ServeDaemon(ServeConfig(max_batch=max_batch,
                                       max_wait_ms=max_wait_ms,
                                       queue_depth=queue_depth))
        conc.load_model("bench", artifact_path)
        conc.predict("bench", images[:2])
        conc_run = _drive(conc, "bench", images, n_requests,
                          n_clients=n_clients)
        stats = conc.shutdown(drain=True)
    finally:
        if tmp is not None:
            tmp.cleanup()

    if seq_run["errors"] or conc_run["errors"]:
        raise RuntimeError(
            f"load generator saw failures: "
            f"{(seq_run['errors'] + conc_run['errors'])[:3]!r}")
    metrics = stats.get("metrics", {})
    latency = metrics.get("serve.bench.latency_s", {})
    batch = metrics.get("serve.bench.batch_size", {})
    seq_s, conc_s = seq_run["wall_s"], conc_run["wall_s"]

    def _ms(key: str) -> Optional[float]:
        value = latency.get(key)
        return round(value * 1000.0, 3) \
            if isinstance(value, (int, float)) else None

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "dataset": dataset, "bits": bits, "image_size": image_size,
        "n_requests": n_requests, "n_clients": n_clients,
        "max_batch": max_batch, "max_wait_ms": max_wait_ms,
        "queue_depth": queue_depth,
        "seq_s": round(seq_s, 4), "conc_s": round(conc_s, 4),
        "seq_ips": round(n_requests / seq_s, 2) if seq_s else None,
        "conc_ips": round(n_requests / conc_s, 2) if conc_s else None,
        "batch_speedup": round(seq_s / conc_s, 3) if conc_s else None,
        "mean_batch": round(float(batch.get("mean", 0.0) or 0.0), 3),
        "p50_ms": _ms("p50"), "p95_ms": _ms("p95"), "p99_ms": _ms("p99"),
        "shed": int(metrics.get("serve.shed", {}).get("value", 0)),
        "timeouts": int(metrics.get("serve.bench.timeouts", {})
                        .get("value", 0)),
        "host": host_metadata(),
        "host_limited": (os.cpu_count() or 1) <= 1,
    }
