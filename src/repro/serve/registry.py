"""The model registry: named, compiled ``.bomp`` artifacts, shared safely.

Loading a model is *compile-once, share the immutable program*: the
registry goes through the content-hash
:class:`~repro.infer.artifact.ArtifactCache`, so re-loading the same
file (or the same bytes under a different name) reuses the compiled
:class:`~repro.infer.engine.Program`.  What is shared is strictly
read-only — ``compile_model`` finalizes every stage eagerly, and nothing
on the serving path mutates a stage afterwards.  What is *not* shared
are arenas: each batch worker builds its own
:class:`~repro.infer.engine.ArenaExecutor` (see
:mod:`repro.serve.batcher`), because an executor's scratch buffers are
single-thread state by construction.  The registry deliberately never
calls :meth:`Program.executor` — that per-program cache is unsynchronized
and would hand two threads the same arena.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..infer.artifact import (ArtifactCache, DeployableArtifact,
                              default_artifact_cache)
from ..infer.engine import Program
from .queueing import UnknownModel

#: model names become metric-name components (``serve.<model>.latency_s``)
#: and URL path segments, so keep them to one unambiguous token
NAME_PATTERN = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


class RegistryError(ValueError):
    """A model could not be (un)registered."""


@dataclass
class ModelEntry:
    """One served model: the immutable compiled form plus bookkeeping."""

    name: str
    path: str
    digest: str
    artifact: DeployableArtifact
    program: Program
    #: (image_size, image_size, in_channels) — request shape validation
    input_shape: Tuple[int, int, int] = field(init=False)
    num_classes: int = field(init=False)

    def __post_init__(self) -> None:
        self.input_shape = (self.program.image_size,
                            self.program.image_size,
                            self.program.in_channels)
        self.num_classes = self.program.stages[-1].out_shape[0]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name, "path": self.path,
            "digest": self.digest[:12],
            "input_shape": list(self.input_shape),
            "num_classes": self.num_classes,
            "stages": len(self.program.stages),
            "macs_per_image": self.program.total_macs(),
            "meta": self.artifact.meta,
        }


class ModelRegistry:
    """Name -> :class:`ModelEntry`, backed by the shared artifact cache.

    Thread-safe for the daemon's concurrent load/evict/lookup traffic;
    the heavyweight compile happens outside the registry lock (inside
    the artifact cache), so a slow load never blocks lookups of other
    models.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None) -> None:
        self.cache = cache if cache is not None else default_artifact_cache()
        self._lock = threading.Lock()
        self._models: Dict[str, ModelEntry] = {}

    def load(self, name: str, path: Union[str, Path]) -> ModelEntry:
        """Load (or reload) ``path`` as model ``name``.

        Reloading an unchanged file is nearly free (cache hit on the
        content hash); reloading a re-exported file compiles the new
        content and atomically replaces the entry.
        """
        if not NAME_PATTERN.match(name):
            raise RegistryError(
                f"invalid model name {name!r} (want {NAME_PATTERN.pattern})")
        path = Path(path)
        if not path.is_file():
            raise RegistryError(f"{path}: no such artifact file")
        cached = self.cache.load(path, name=name)
        entry = ModelEntry(name=name, path=str(path), digest=cached.digest,
                           artifact=cached.artifact, program=cached.program)
        with self._lock:
            self._models[name] = entry
        return entry

    def evict(self, name: str) -> ModelEntry:
        with self._lock:
            entry = self._models.pop(name, None)
        if entry is None:
            raise UnknownModel(f"no model named {name!r}")
        return entry

    def get(self, name: str) -> ModelEntry:
        entry = self._models.get(name)
        if entry is None:
            raise UnknownModel(f"no model named {name!r}")
        return entry

    def names(self) -> List[str]:
        return sorted(self._models)

    def entries(self) -> List[ModelEntry]:
        with self._lock:
            return [self._models[name] for name in sorted(self._models)]

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)
