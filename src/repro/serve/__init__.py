"""``repro.serve``: multi-model serving for ``.bomp`` artifacts.

The serving stack, bottom to top:

- :mod:`~repro.serve.queueing` — bounded per-model queues, one-shot
  request futures, the admission/timeout error taxonomy;
- :mod:`~repro.serve.registry` — named models over the content-hash
  artifact cache (compile once, share the immutable program);
- :mod:`~repro.serve.batcher` — dynamic batching workers, each with a
  private :class:`~repro.infer.engine.ArenaExecutor`;
- :mod:`~repro.serve.daemon` — the stdlib-HTTP front end, admission
  control, and graceful drain (``repro serve``);
- :mod:`~repro.serve.report` — the SLO report over ``serve_stats.json``
  (``repro serve-report``);
- :mod:`~repro.serve.bench` — the deterministic load generator behind
  ``BENCH_serve.json``.
"""

from .batcher import BatchWorker, ModelRuntime
from .daemon import (STATS_FILENAME, STATS_SCHEMA_VERSION, ServeConfig,
                     ServeDaemon)
from .queueing import (AdmissionError, ModelDraining, ModelQueue,
                       QueueFullError, RequestTimeout, ServeRequest,
                       UnknownModel)
from .registry import ModelEntry, ModelRegistry, RegistryError
from .report import (ModelSLO, ServeReport, ServeStatsError, build_report,
                     load_serve_stats, render_serve_report,
                     validate_serve_stats)

__all__ = [
    "AdmissionError", "BatchWorker", "ModelDraining", "ModelEntry",
    "ModelQueue", "ModelRegistry", "ModelRuntime", "ModelSLO",
    "QueueFullError", "RegistryError", "RequestTimeout", "ServeConfig",
    "ServeDaemon", "ServeReport", "ServeRequest", "ServeStatsError",
    "STATS_FILENAME", "STATS_SCHEMA_VERSION", "UnknownModel",
    "build_report", "load_serve_stats", "render_serve_report",
    "validate_serve_stats",
]
