"""Gaussian-process surrogate over genome encodings.

A standard exact GP with observation noise, fit by Cholesky factorization.
Inputs are genome encoding vectors; the kernel is a distance kernel
(:mod:`repro.bo.kernels`) applied to a pairwise edit-distance matrix
(:class:`repro.space.distance.GenomeDistance`).  Targets are standardized
internally, and a jitter ladder keeps the Cholesky stable for kernels that
are not guaranteed PSD on L1 metrics (Matérn-5/2).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np
from scipy.linalg import cho_solve, cholesky

from .kernels import Kernel


class GaussianProcess:
    """Exact GP regression with a pluggable distance function.

    Args:
        kernel: distance kernel.
        distance_fn: maps two stacks of encoding vectors to a pairwise
            distance matrix.
        noise: observation noise variance added to the diagonal.
    """

    def __init__(self, kernel: Kernel,
                 distance_fn: Callable[[np.ndarray, Optional[np.ndarray]],
                                       np.ndarray],
                 noise: float = 1e-4) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel
        self.distance_fn = distance_fn
        self.noise = noise
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._cho = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def fitted(self) -> bool:
        return self._x is not None

    @property
    def n_observations(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        """Fit to encodings ``x`` of shape (n, d) and scores ``y`` of (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError(
                f"bad shapes: x {x.shape}, y {y.shape}")
        if x.shape[0] == 0:
            raise ValueError("need at least one observation")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std())
        if self._y_std < 1e-12:
            self._y_std = 1.0
        y_standardized = (y - self._y_mean) / self._y_std
        gram = self.kernel(self.distance_fn(x, x))
        n = gram.shape[0]
        jitter = self.noise
        for _ in range(8):
            try:
                factor = cholesky(gram + jitter * np.eye(n), lower=True)
                break
            except np.linalg.LinAlgError:
                jitter = max(jitter * 10.0, 1e-10)
        else:
            raise np.linalg.LinAlgError(
                "Gram matrix not PSD even after jitter ladder")
        self._cho = (factor, True)
        self._alpha = cho_solve(self._cho, y_standardized)
        self._x = x

    def predict(self, x_new: np.ndarray,
                return_std: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and std) at new encodings, on the original scale."""
        if not self.fitted:
            raise RuntimeError("predict called before fit")
        x_new = np.asarray(x_new, dtype=np.float64)
        if x_new.ndim != 2:
            raise ValueError(f"expected (m, d) encodings, got {x_new.shape}")
        k_star = self.kernel(self.distance_fn(x_new, self._x))
        mean = k_star @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        v = cho_solve(self._cho, k_star.T)
        prior_var = np.diag(self.kernel(np.zeros((1, 1))))[0]
        var = prior_var - np.einsum("ij,ji->i", k_star, v)
        var = np.clip(var, 1e-12, None)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def tune_length_scale(self, x: np.ndarray, y: np.ndarray,
                          candidates: Optional[np.ndarray] = None) -> float:
        """Pick the kernel length scale maximizing marginal likelihood.

        Grid search (exact GPs are cheap at NAS trial counts); refits the
        model at the winning scale and returns it.
        """
        if candidates is None:
            candidates = np.geomspace(0.02, 2.0, 10)
        best_scale, best_lml = None, -np.inf
        original = self.kernel.length_scale
        for scale in candidates:
            self.kernel.length_scale = float(scale)
            try:
                self.fit(x, y)
            except np.linalg.LinAlgError:
                continue
            lml = self.log_marginal_likelihood()
            if lml > best_lml:
                best_scale, best_lml = float(scale), lml
        if best_scale is None:
            self.kernel.length_scale = original
            self.fit(x, y)
            return original
        self.kernel.length_scale = best_scale
        self.fit(x, y)
        return best_scale

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the standardized targets."""
        if not self.fitted:
            raise RuntimeError("model not fitted")
        factor = self._cho[0]
        n = self._x.shape[0]
        y_std = self._alpha  # alpha = K^-1 y; need y^T alpha
        # recover standardized y from alpha: y = K alpha, but cheaper to
        # store? y^T K^-1 y = alpha^T K alpha = (K alpha)^T alpha
        gram = self.kernel(self.distance_fn(self._x, self._x))
        gram = gram + self.noise * np.eye(n)
        y_vec = gram @ y_std
        data_fit = -0.5 * float(y_vec @ y_std)
        log_det = -float(np.log(np.diag(factor)).sum())
        return data_fit + log_det - 0.5 * n * np.log(2 * np.pi)
