"""Acquisition functions for the BO search strategy.

BOMP-NAS uses Upper Confidence Bound (UCB), following AutoKeras.  Expected
Improvement and pure exploitation (posterior mean) are provided for the
acquisition ablation study.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm


class AcquisitionFunction:
    """Scores candidate encodings given a fitted GP (higher = pick sooner)."""

    def score(self, mean: np.ndarray, std: np.ndarray,
              best_observed: float) -> np.ndarray:
        raise NotImplementedError


class UpperConfidenceBound(AcquisitionFunction):
    """UCB: ``mean + beta * std`` — the BOMP-NAS default (beta from AutoKeras)."""

    def __init__(self, beta: float = 2.576) -> None:
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.beta = beta

    def score(self, mean: np.ndarray, std: np.ndarray,
              best_observed: float) -> np.ndarray:
        return mean + self.beta * std


class ExpectedImprovement(AcquisitionFunction):
    """EI over the best observed score (maximization convention)."""

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise ValueError("xi must be non-negative")
        self.xi = xi

    def score(self, mean: np.ndarray, std: np.ndarray,
              best_observed: float) -> np.ndarray:
        std = np.clip(std, 1e-12, None)
        improvement = mean - best_observed - self.xi
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)


class PosteriorMean(AcquisitionFunction):
    """Pure exploitation: rank candidates by posterior mean only."""

    def score(self, mean: np.ndarray, std: np.ndarray,
              best_observed: float) -> np.ndarray:
        return mean


ACQUISITIONS = {
    "ucb": UpperConfidenceBound,
    "ei": ExpectedImprovement,
    "mean": PosteriorMean,
}


def make_acquisition(kind: str, **kwargs) -> AcquisitionFunction:
    """Factory for acquisition functions by name."""
    if kind not in ACQUISITIONS:
        raise ValueError(
            f"unknown acquisition {kind!r}; choices: {sorted(ACQUISITIONS)}")
    return ACQUISITIONS[kind](**kwargs)
