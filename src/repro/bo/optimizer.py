"""The ask/tell Bayesian optimizer over mixed-precision genomes.

Implements the paper's search strategy (Section III): a Gaussian-process
surrogate with a Matérn kernel over genome edit distances and a UCB
acquisition function.  Because the space is discrete and combinatorial, the
acquisition is maximized over a candidate pool of (a) mutations of the
best-scoring observed genomes and (b) fresh random samples — the sampling
analogue of AutoKeras' edit-based tree search.

The optimizer is mode-agnostic: search modes that freeze the quantization
policy (fixed-precision, post-NAS baseline) inject their own ``sample_fn``
and ``mutate_fn``.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from ..obs.trace import get_recorder
from ..space.distance import GenomeDistance
from ..space.genome import MixedPrecisionGenome
from ..space.space import SearchSpace
from .acquisition import AcquisitionFunction, UpperConfidenceBound
from .gp import GaussianProcess
from .kernels import Kernel, Matern52

SampleFn = Callable[[np.random.Generator], MixedPrecisionGenome]
MutateFn = Callable[[MixedPrecisionGenome, np.random.Generator],
                    MixedPrecisionGenome]


class BayesianOptimizer:
    """Sequential model-based optimizer over the joint genome space.

    Args:
        space: the search space (provides encodings and default operators).
        rng: random generator driving all sampling.
        kernel: GP kernel (default Matérn-5/2, the paper's choice).
        acquisition: acquisition function (default UCB).
        n_initial_random: observations before the surrogate takes over; the
            very first ask returns the seed genome as a known-good anchor.
        pool_size: candidate pool size per ask.
        elite_fraction: fraction of best observed genomes mutated to build
            the pool (the rest of the pool is random exploration).
        sample_fn / mutate_fn: optional overrides for restricted modes.
        policy_weight: weight of policy coordinates in the edit distance.
    """

    def __init__(self, space: SearchSpace, rng: np.random.Generator,
                 kernel: Optional[Kernel] = None,
                 acquisition: Optional[AcquisitionFunction] = None,
                 n_initial_random: int = 5,
                 pool_size: int = 200,
                 elite_fraction: float = 0.5,
                 sample_fn: Optional[SampleFn] = None,
                 mutate_fn: Optional[MutateFn] = None,
                 policy_weight: float = 0.5,
                 noise: float = 1e-3) -> None:
        if n_initial_random < 1:
            raise ValueError("n_initial_random must be >= 1")
        if pool_size < 2:
            raise ValueError("pool_size must be >= 2")
        if not 0.0 <= elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in [0, 1]")
        self.space = space
        self.rng = rng
        self.distance = GenomeDistance(space, policy_weight=policy_weight)
        self.kernel = kernel if kernel is not None else Matern52(
            length_scale=0.1)
        self.acquisition = (acquisition if acquisition is not None
                            else UpperConfidenceBound())
        self.n_initial_random = n_initial_random
        self.pool_size = pool_size
        self.elite_fraction = elite_fraction
        self.sample_fn = sample_fn or space.random_genome
        self.mutate_fn = mutate_fn or (
            lambda genome, rng_: space.mutate(genome, rng_))
        self.gp = GaussianProcess(self.kernel, self.distance.pairwise,
                                  noise=noise)
        self._genomes: List[MixedPrecisionGenome] = []
        self._scores: List[float] = []
        self._encodings: List[np.ndarray] = []
        self._seen: Set[Tuple] = set()
        self._seed_given = False
        self._fantasy_count = 0
        self._fantasy_keys: List[Tuple] = []

    # -- observation bookkeeping -----------------------------------------
    @property
    def n_observations(self) -> int:
        """Real (non-fantasy) observations recorded via :meth:`tell`."""
        return len(self._genomes) - self._fantasy_count

    @property
    def observations(self) -> List[Tuple[MixedPrecisionGenome, float]]:
        return list(zip(self._genomes, self._scores))

    def best(self) -> Tuple[MixedPrecisionGenome, float]:
        """The best (genome, score) observed so far."""
        if not self._scores:
            raise RuntimeError("no observations yet")
        index = int(np.argmax(self._scores))
        return self._genomes[index], self._scores[index]

    def tell(self, genome: MixedPrecisionGenome, score: float) -> None:
        """Record a completed trial."""
        if not np.isfinite(score):
            raise ValueError(f"score must be finite, got {score}")
        if self._fantasy_count:
            # a real observation supersedes any leftover fantasies
            self._clear_fantasies()
        encoding = self.distance.encode(genome)
        recorder = get_recorder()
        if recorder.enabled and self.gp.fitted:
            # predicted-vs-observed residual of the model *before* this
            # observation — the GP calibration signal the report plots
            mean, std = self.gp.predict(encoding[None, :])
            recorder.gauge("gp.residual", float(score) - float(mean[0]),
                           predicted=float(mean[0]), std=float(std[0]),
                           observed=float(score))
        self._genomes.append(genome)
        self._scores.append(float(score))
        self._encodings.append(encoding)
        self._seen.add(genome.as_key())

    # -- checkpoint state --------------------------------------------------
    def state_dict(self) -> dict:
        """The optimizer's non-replayable state, JSON-serializable.

        Observations are *not* included: replaying the recorded trial
        history through :meth:`tell` reconstructs the GP training data,
        encodings, and dedup set exactly.  What cannot be replayed is the
        RNG (consumed by ``ask``'s sampling/mutation, not ``tell``) and
        the seed-anchor flag — those are captured here.  Must be called at
        a batch boundary (no pending constant-liar fantasies).
        """
        if self._fantasy_count:
            raise RuntimeError(
                "cannot snapshot optimizer state mid-batch: "
                f"{self._fantasy_count} constant-liar fantasies pending")
        state = self.rng.bit_generator.state
        return {"seed_given": self._seed_given,
                "rng_state": json.loads(json.dumps(state))}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (after replaying tells).

        With the recorded observations replayed through :meth:`tell` and
        this state restored, the next :meth:`ask_batch` proposes exactly
        the candidates an uninterrupted run would have proposed.
        """
        self._seed_given = bool(state["seed_given"])
        self.rng.bit_generator.state = state["rng_state"]

    # -- constant-liar fantasies (batched proposal) -----------------------
    def _add_fantasy(self, genome: MixedPrecisionGenome,
                     score: float) -> None:
        """Pretend ``genome`` was observed at ``score`` (the lie)."""
        self._genomes.append(genome)
        self._scores.append(float(score))
        self._encodings.append(self.distance.encode(genome))
        self._fantasy_count += 1
        key = genome.as_key()
        if key not in self._seen:
            self._seen.add(key)
            self._fantasy_keys.append(key)

    def _clear_fantasies(self) -> None:
        """Retract all fantasy observations (they append last, pop last)."""
        if self._fantasy_count:
            del self._genomes[-self._fantasy_count:]
            del self._scores[-self._fantasy_count:]
            del self._encodings[-self._fantasy_count:]
            self._fantasy_count = 0
        for key in self._fantasy_keys:
            self._seen.discard(key)
        self._fantasy_keys.clear()

    # -- candidate proposal ------------------------------------------------
    def ask(self) -> MixedPrecisionGenome:
        """Propose the next genome to evaluate."""
        if not self._seed_given:
            self._seed_given = True
            seed = self._default_seed()
            if seed.as_key() not in self._seen:
                return seed
        if self.n_observations < self.n_initial_random:
            return self._unseen_random()
        self.gp.fit(np.stack(self._encodings), np.asarray(self._scores))
        recorder = get_recorder()
        if recorder.enabled:
            recorder.gauge("gp.length_scale", self.kernel.length_scale,
                           n_obs=self.n_observations,
                           n_fantasies=self._fantasy_count)
            recorder.gauge("gp.lml", self.gp.log_marginal_likelihood())
        pool = self._build_pool()
        if not pool:
            return self._unseen_random()
        encodings = np.stack([self.distance.encode(g) for g in pool])
        mean, std = self.gp.predict(encodings)
        best_score = max(self._scores)
        acquisition = self.acquisition.score(mean, std, best_score)
        chosen = int(np.argmax(acquisition))
        if recorder.enabled:
            recorder.gauge("bo.acq_best", float(acquisition[chosen]),
                           pred_mean=float(mean[chosen]),
                           pred_std=float(std[chosen]),
                           pool_size=len(pool))
        return pool[chosen]

    def ask_batch(self, q: int) -> List[MixedPrecisionGenome]:
        """Propose ``q`` genomes to evaluate concurrently.

        Uses the constant-liar strategy: after each proposal, the optimizer
        pretends the candidate was observed at the current best *real*
        score, so subsequent proposals in the batch are pushed away from it
        and the batch stays diverse.  All fantasies are retracted before
        returning — real :meth:`tell` calls then record the true outcomes
        in proposal order.

        ``ask_batch(1)`` degenerates to a single :meth:`ask`.
        """
        if q < 1:
            raise ValueError("batch size must be >= 1")
        genomes = [self.ask()]
        if q == 1:
            return genomes
        lie = max(self._scores) if self.n_observations else 0.0
        try:
            for _ in range(q - 1):
                self._add_fantasy(genomes[-1], lie)
                genomes.append(self.ask())
        finally:
            self._clear_fantasies()
        return genomes

    def _default_seed(self) -> MixedPrecisionGenome:
        """Seed anchor: the Table I seed arch under the mode's sampling.

        The policy part comes from ``sample_fn`` so that restricted modes
        (fixed 4/8-bit) anchor on their own policy rather than the MP seed.
        """
        sampled = self.sample_fn(self.rng)
        return MixedPrecisionGenome(self.space.seed_arch(), sampled.policy)

    def _unseen_random(self, max_tries: int = 100) -> MixedPrecisionGenome:
        for _ in range(max_tries):
            genome = self.sample_fn(self.rng)
            if genome.as_key() not in self._seen:
                return genome
        return genome  # astronomically unlikely in a 1e35 space

    def _build_pool(self) -> List[MixedPrecisionGenome]:
        """Mutations of elites + random exploration, deduplicated."""
        n_elite_slots = int(self.pool_size * self.elite_fraction)
        order = np.argsort(self._scores)[::-1]
        n_elites = max(1, min(5, len(order)))
        elites = [self._genomes[i] for i in order[:n_elites]]
        pool: List[MixedPrecisionGenome] = []
        seen_pool: Set[Tuple] = set()
        for i in range(n_elite_slots):
            parent = elites[i % n_elites]
            child = self.mutate_fn(parent, self.rng)
            key = child.as_key()
            if key not in self._seen and key not in seen_pool:
                pool.append(child)
                seen_pool.add(key)
        tries = 0
        max_tries = 10 * self.pool_size
        while len(pool) < self.pool_size and tries < max_tries:
            tries += 1
            genome = self.sample_fn(self.rng)
            key = genome.as_key()
            if key not in self._seen and key not in seen_pool:
                pool.append(genome)
                seen_pool.add(key)
        return pool
