"""Covariance kernels over genome edit distances.

The surrogate follows AutoKeras: a Gaussian process whose kernel is a
function of the *edit distance* between architectures (here, between joint
architecture+policy genomes).  The default is Matérn-5/2, the paper's
choice; the exponential kernel (Matérn-1/2, i.e. a Laplacian kernel, which
is provably PSD for L1 edit distances) and RBF are provided for the kernel
ablation study.
"""

from __future__ import annotations

import numpy as np


class Kernel:
    """Base distance kernel ``k(d)`` applied elementwise to a distance matrix."""

    def __init__(self, length_scale: float = 1.0) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = length_scale

    def from_distance(self, distances: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        distances = np.asarray(distances, dtype=np.float64)
        if (distances < 0).any():
            raise ValueError("distances must be non-negative")
        return self.from_distance(distances)


class Matern52(Kernel):
    """Matérn kernel with smoothness 5/2 (the BOMP-NAS default)."""

    def from_distance(self, distances: np.ndarray) -> np.ndarray:
        r = np.sqrt(5.0) * distances / self.length_scale
        return (1.0 + r + r * r / 3.0) * np.exp(-r)


class Matern32(Kernel):
    """Matérn kernel with smoothness 3/2."""

    def from_distance(self, distances: np.ndarray) -> np.ndarray:
        r = np.sqrt(3.0) * distances / self.length_scale
        return (1.0 + r) * np.exp(-r)


class Exponential(Kernel):
    """Matérn-1/2 / Laplacian kernel — PSD for any L1 metric."""

    def from_distance(self, distances: np.ndarray) -> np.ndarray:
        return np.exp(-distances / self.length_scale)


class RBF(Kernel):
    """Squared-exponential kernel (for the kernel ablation)."""

    def from_distance(self, distances: np.ndarray) -> np.ndarray:
        r = distances / self.length_scale
        return np.exp(-0.5 * r * r)


KERNELS = {
    "matern52": Matern52,
    "matern32": Matern32,
    "exponential": Exponential,
    "rbf": RBF,
}


def make_kernel(kind: str, length_scale: float = 1.0) -> Kernel:
    """Factory for kernels by name."""
    if kind not in KERNELS:
        raise ValueError(f"unknown kernel {kind!r}; choices: {sorted(KERNELS)}")
    return KERNELS[kind](length_scale)
