"""Bayesian-optimization engine: GP surrogate, kernels, acquisitions,
scalarization (Eq. 1) and Pareto utilities."""

from .acquisition import (ACQUISITIONS, AcquisitionFunction,
                          ExpectedImprovement, PosteriorMean,
                          UpperConfidenceBound, make_acquisition)
from .gp import GaussianProcess
from .kernels import (KERNELS, RBF, Exponential, Kernel, Matern32, Matern52,
                      make_kernel)
from .optimizer import BayesianOptimizer
from .pareto import (best_accuracy_under, dominates, front_dominates_at_size,
                     hypervolume, pareto_front, pareto_indices)
from .scalarization import (ScalarizationConfig, equal_score_accuracy,
                            scalarize)

__all__ = [
    "GaussianProcess", "BayesianOptimizer",
    "Kernel", "Matern52", "Matern32", "Exponential", "RBF", "make_kernel",
    "KERNELS",
    "AcquisitionFunction", "UpperConfidenceBound", "ExpectedImprovement",
    "PosteriorMean", "make_acquisition", "ACQUISITIONS",
    "ScalarizationConfig", "scalarize", "equal_score_accuracy",
    "dominates", "pareto_indices", "pareto_front", "hypervolume",
    "best_accuracy_under", "front_dominates_at_size",
]
