"""Pareto-front utilities over (accuracy, model size) points.

The NAS result is a Pareto front — the set of candidates not dominated in
the (maximize accuracy, minimize size) order — rather than a single model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """True if point ``a`` Pareto-dominates ``b``.

    Points are ``(accuracy, size)``: higher accuracy and lower size are
    better; domination requires at-least-as-good in both and strictly
    better in one.
    """
    acc_a, size_a = a
    acc_b, size_b = b
    at_least = acc_a >= acc_b and size_a <= size_b
    strictly = acc_a > acc_b or size_a < size_b
    return at_least and strictly


def pareto_indices(accuracies: Sequence[float],
                   sizes: Sequence[float]) -> List[int]:
    """Indices of the non-dominated points, sorted by ascending size.

    O(n log n): sweep by size and keep points whose accuracy exceeds every
    smaller point's accuracy.  Among exact duplicates, one representative
    is kept.
    """
    accuracies = np.asarray(accuracies, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if accuracies.shape != sizes.shape:
        raise ValueError("accuracies and sizes must have the same length")
    if accuracies.size == 0:
        return []
    # sort by size ascending; on ties, accuracy descending so the best of a
    # size column is seen first
    order = np.lexsort((-accuracies, sizes))
    front: List[int] = []
    best_accuracy = -np.inf
    for idx in order:
        if accuracies[idx] > best_accuracy:
            front.append(int(idx))
            best_accuracy = accuracies[idx]
    return front


def pareto_front(accuracies: Sequence[float],
                 sizes: Sequence[float]) -> List[Tuple[float, float]]:
    """The Pareto-optimal ``(accuracy, size)`` points, ascending in size."""
    return [(float(np.asarray(accuracies)[i]), float(np.asarray(sizes)[i]))
            for i in pareto_indices(accuracies, sizes)]


def hypervolume(front: Sequence[Tuple[float, float]],
                ref_accuracy: float = 0.0,
                ref_size: Optional[float] = None) -> float:
    """2-D hypervolume (dominated area) of a front w.r.t. a reference point.

    The reference point is ``(ref_accuracy, ref_size)`` with ``ref_size``
    defaulting to the largest size on the front.  Larger hypervolume =
    better front; used to compare fronts across search modes (Figs. 5/8).
    """
    if not front:
        return 0.0
    points = sorted(front, key=lambda p: p[1])  # ascending size
    if ref_size is None:
        ref_size = max(p[1] for p in points)
    volume = 0.0
    # integrate from small to large size; each point covers the size band
    # from its own size to the next point's size with its accuracy height
    for i, (acc, size) in enumerate(points):
        if size > ref_size:
            break
        next_size = points[i + 1][1] if i + 1 < len(points) else ref_size
        band = min(next_size, ref_size) - size
        height = acc - ref_accuracy
        if band > 0 and height > 0:
            volume += band * height
    return volume


def front_dominates_at_size(front_a: Sequence[Tuple[float, float]],
                            front_b: Sequence[Tuple[float, float]],
                            max_size: float) -> bool:
    """True if front A's best accuracy under ``max_size`` beats front B's.

    The paper's claims are of this form ("QAFT-aware NAS yields better
    results, especially on the left-hand side"): restrict both fronts to
    models at or below a size budget and compare the best accuracy.
    """
    best_a = best_accuracy_under(front_a, max_size)
    best_b = best_accuracy_under(front_b, max_size)
    return best_a > best_b


def best_accuracy_under(front: Sequence[Tuple[float, float]],
                        max_size: float) -> float:
    """Best accuracy among front points with size <= ``max_size``.

    Returns ``-inf`` when no point fits the budget.
    """
    eligible = [acc for acc, size in front if size <= max_size]
    return max(eligible) if eligible else float("-inf")
