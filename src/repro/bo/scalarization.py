"""Multi-objective scalarization — Eq. (1) of the paper.

BO needs a single number per trial; BOMP-NAS combines task accuracy
(maximize) and model size (minimize) as::

    score = accuracy / ref_accuracy + ref_model_size / log10(size_bits)

with accuracy as a fraction in [0, 1].  Equal-score contours of this
function trace the Pareto-front shape the search pushes toward; the
reference values tune the relative importance of the two objectives
(ref_accuracy = 0.8 and ref_model_size = 8 for CIFAR-10, 6 for CIFAR-100
in the paper's experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ScalarizationConfig:
    """Reference values of Eq. (1).

    ``ref_macs`` extends Eq. (1) with a third minimization objective
    (compute), following the paper's note that "the evaluation criteria in
    BOMP-NAS are flexible": when set, ``ref_macs / log10(macs)`` is added
    to the score, pushing the search toward low-MAC models as well.
    """

    ref_accuracy: float = 0.8
    ref_model_size: float = 8.0
    ref_macs: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ref_accuracy <= 0:
            raise ValueError("ref_accuracy must be positive")
        if self.ref_model_size <= 0:
            raise ValueError("ref_model_size must be positive")
        if self.ref_macs is not None and self.ref_macs <= 0:
            raise ValueError("ref_macs must be positive when set")


def scalarize(accuracy: float, model_size_bits: float,
              config: ScalarizationConfig,
              macs: Optional[float] = None) -> float:
    """Eq. (1): combine accuracy and size into one score (higher = better).

    Args:
        accuracy: task accuracy as a fraction in [0, 1].
        model_size_bits: deployed model size in bits (must exceed 10 so the
            log term stays positive).
        macs: per-inference multiply-accumulates; only consumed when the
            config sets ``ref_macs`` (the flexible-objectives extension).
    """
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
    if model_size_bits <= 10.0:
        raise ValueError(
            f"model size must exceed 10 bits, got {model_size_bits}")
    accuracy_term = accuracy / config.ref_accuracy
    size_term = config.ref_model_size / np.log10(model_size_bits)
    score = accuracy_term + size_term
    if config.ref_macs is not None:
        if macs is None or macs <= 10.0:
            raise ValueError("ref_macs set but no usable MAC count given")
        score += config.ref_macs / np.log10(macs)
    return float(score)


def equal_score_accuracy(score: float, model_size_bits: np.ndarray,
                         config: ScalarizationConfig) -> np.ndarray:
    """Accuracy along the equal-score contour at ``score``.

    Inverts Eq. (1) for accuracy given size — these are the dotted
    equal-score lines of Figs. 2/4/6/7.  Values outside [0, 1] mean the
    contour leaves the feasible accuracy range at that size.
    """
    sizes = np.asarray(model_size_bits, dtype=np.float64)
    if (sizes <= 10.0).any():
        raise ValueError("model sizes must exceed 10 bits")
    size_term = config.ref_model_size / np.log10(sizes)
    return (score - size_term) * config.ref_accuracy
