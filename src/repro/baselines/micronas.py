"""μNAS-like baseline: constrained aging evolution with 8-bit PTQ.

Liberis et al., "μNAS: Constrained neural architecture search for
microcontrollers" (2020) search architectures (no mixed precision) under a
hard resource budget, deploying with homogeneous 8-bit post-training
quantization.  This module reproduces that scheme on the BOMP-NAS search
space: aging evolution over architecture-only genomes, candidates
early-trained and PTQ'd to 8 bits, maximizing accuracy subject to a model
size budget (violations are penalized proportionally to the overshoot).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from ..data.datasets import Dataset
from ..nas.config import SearchConfig, get_mode
from ..nas.cost import CostModel
from ..nas.results import SearchResult
from ..nas.search import BOMPNAS, ProgressFn
from ..nas.trial import TrialResult
from .evolution import AgingEvolution, evolved_trials


def constrained_score(accuracy: float, size_kb: float,
                      size_budget_kb: float,
                      penalty_per_kb: float = 0.02) -> float:
    """Accuracy with a linear penalty for exceeding the size budget."""
    if size_budget_kb <= 0:
        raise ValueError("size_budget_kb must be positive")
    if penalty_per_kb < 0:
        raise ValueError("penalty_per_kb must be non-negative")
    overshoot = max(0.0, size_kb - size_budget_kb)
    return accuracy - penalty_per_kb * overshoot


class MicroNASSearch:
    """Size-constrained aging evolution with homogeneous 8-bit PTQ."""

    def __init__(self, config: SearchConfig, dataset: Dataset,
                 size_budget_kb: float = 16.0,
                 population_size: int = 16, tournament_size: int = 4,
                 cost_model: Optional[CostModel] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        if size_budget_kb <= 0:
            raise ValueError("size_budget_kb must be positive")
        self.config = replace(config, mode=get_mode("fixed8_ptq"))
        self.size_budget_kb = size_budget_kb
        self._evaluator = BOMPNAS(self.config, dataset,
                                  cost_model=cost_model, progress=progress)
        self.population_size = population_size
        self.tournament_size = tournament_size

    def run(self, final_training: bool = True, workers: int = 1,
            batch_size: Optional[int] = None) -> SearchResult:
        evaluator = self._evaluator
        population_size = min(self.population_size,
                              max(2, self.config.scale.trials // 2))
        evolution = AgingEvolution(
            evaluator.rng,
            sample_fn=evaluator._sample_genome,
            mutate_fn=evaluator._mutate_genome,
            population_size=population_size,
            tournament_size=min(self.tournament_size, population_size))
        trials: List[TrialResult] = []
        for result in evolved_trials(evaluator, evolution,
                                     self.config.scale.trials,
                                     workers=workers,
                                     batch_size=batch_size):
            score = constrained_score(result.accuracy, result.size_kb,
                                      self.size_budget_kb)
            # the constrained score drives evolution; the recorded
            # trial keeps the Eq. 1 score for cross-method comparison
            evolution.tell(result.genome, score)
            trials.append(result)
            if evaluator.progress is not None:
                evaluator.progress(result)
        result = SearchResult(config=self.config, trials=trials)
        if final_training:
            from ..nas.final_training import train_final_models
            within = [t for t in result.pareto_trials()
                      if t.size_kb <= self.size_budget_kb]
            chosen = within or result.pareto_trials()[:1]
            result.final_models = train_final_models(evaluator, chosen)
        return result
