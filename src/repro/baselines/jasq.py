"""JASQ reproduction: evolutionary joint architecture + quantization search.

Chen et al., "Joint neural architecture search and quantization" (2018)
combine an evolutionary search over architectures with heterogeneous
quantization of the candidates.  The paper reproduces JASQ *on its own
search space* to get a like-for-like comparator (Table II, "JASQ (repr.)"),
which is what this module does: aging evolution over the joint
(architecture, policy) genome, with candidates early-trained and evaluated
under mixed-precision PTQ, scored by the same Eq. (1) scalarization.

The key structural differences from BOMP-NAS, per Section II:

- the search engine only sees a small population rather than every
  previously trained network, so it is "likely to get stuck in a bad local
  minimum";
- no QAFT inside the loop.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from ..data.datasets import Dataset
from ..nas.config import SearchConfig, get_mode
from ..nas.cost import CostModel
from ..nas.results import SearchResult
from ..nas.search import BOMPNAS, ProgressFn
from ..nas.trial import TrialResult
from .evolution import AgingEvolution, evolved_trials


class JASQSearch:
    """Evolutionary joint arch+quant search on the BOMP-NAS search space.

    Reuses the BOMP-NAS candidate evaluation pipeline (early training,
    MP PTQ, Eq. 1 scoring) so the only difference from BOMP-NAS is the
    search strategy — exactly the comparison the paper makes.
    """

    def __init__(self, config: SearchConfig, dataset: Dataset,
                 population_size: int = 16, tournament_size: int = 4,
                 cost_model: Optional[CostModel] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        # JASQ quantizes in the loop but never fine-tunes quantization-aware
        self.config = replace(config, mode=get_mode("mp_ptq"))
        self._evaluator = BOMPNAS(self.config, dataset,
                                  cost_model=cost_model, progress=progress)
        self.population_size = population_size
        self.tournament_size = tournament_size

    def run(self, final_training: bool = True, workers: int = 1,
            batch_size: Optional[int] = None) -> SearchResult:
        evaluator = self._evaluator
        population_size = min(self.population_size,
                              max(2, self.config.scale.trials // 2))
        evolution = AgingEvolution(
            evaluator.rng,
            sample_fn=evaluator._sample_genome,
            mutate_fn=evaluator._mutate_genome,
            population_size=population_size,
            tournament_size=min(self.tournament_size, population_size))
        trials: List[TrialResult] = []
        for result in evolved_trials(evaluator, evolution,
                                     self.config.scale.trials,
                                     workers=workers,
                                     batch_size=batch_size):
            evolution.tell(result.genome, result.score)
            trials.append(result)
            if evaluator.progress is not None:
                evaluator.progress(result)
        result = SearchResult(config=self.config, trials=trials)
        if final_training:
            from ..nas.final_training import train_final_models
            result.final_models = train_final_models(
                evaluator, result.pareto_trials())
        return result
