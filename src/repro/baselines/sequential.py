"""The sequential (NAS-then-quantize) baseline, fully staged.

Section III-A defines the baseline as *post-NAS quantization*: first search
for the best full-precision architecture, then separately search the best
quantization policy for that fixed architecture.  The paper's baseline runs
BOMP-NAS with no quantization in the loop and homogeneous 8-bit PTQ at the
end (mode ``fp_nas``); this module additionally implements the full
two-stage pipeline with a second-stage *policy* search, demonstrating the
sub-optimality of decoupling that Section II describes ("the best
architecture in a float32 DNN may not be the best architecture in an int8
DNN").
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from ..bo.scalarization import scalarize
from ..data.datasets import Dataset
from ..nas.config import SearchConfig, get_mode
from ..nas.cost import CostModel
from ..nas.results import SearchResult
from ..nas.search import BOMPNAS
from ..nn.losses import evaluate_classifier
from ..nn.serialization import load_state_dict, state_dict
from ..quant.apply import apply_policy, calibrate, remove_quantizers
from ..quant.policy import QuantizationPolicy
from ..quant.size import model_size_bits
from ..space.genome import MixedPrecisionGenome


class SequentialSearch:
    """Two-stage NAS-then-quantize pipeline.

    Stage 1: full-precision architecture search (mode ``fp_nas``).
    Stage 2: random + local policy search for the best architecture, using
    the *already trained* stage-1 network under PTQ (no retraining), which
    is how post-hoc quantization policy searches operate.
    """

    def __init__(self, config: SearchConfig, dataset: Dataset,
                 policy_trials: int = 20,
                 cost_model: Optional[CostModel] = None) -> None:
        if policy_trials < 1:
            raise ValueError("policy_trials must be >= 1")
        self.config = replace(config, mode=get_mode("fp_nas"))
        self.dataset = dataset
        self.policy_trials = policy_trials
        self._evaluator = BOMPNAS(self.config, dataset,
                                  cost_model=cost_model)

    def run(self) -> Tuple[SearchResult,
                           List[Tuple[QuantizationPolicy, float, float]]]:
        """Run both stages.

        Returns the stage-1 search result and the stage-2 policy trials as
        ``(policy, accuracy, size_kb)`` tuples, sorted by Eq. (1) score
        (best first).
        """
        stage1 = self._evaluator.run(final_training=True)
        best_trial = stage1.best_trial()
        policies = self._policy_search(best_trial.genome)
        return stage1, policies

    def _policy_search(self, genome: MixedPrecisionGenome
                       ) -> List[Tuple[QuantizationPolicy, float, float]]:
        """Stage 2: search quantization policies for a fixed architecture."""
        evaluator = self._evaluator
        space = evaluator.space
        rng = evaluator.rng
        model = evaluator.early_train(genome)
        snapshot = state_dict(model)
        results: List[Tuple[QuantizationPolicy, float, float]] = []
        scored: List[float] = []
        best_policy: Optional[QuantizationPolicy] = None
        for trial in range(self.policy_trials):
            if best_policy is not None and rng.random() < 0.5:
                policy = space.mutate_policy(best_policy, rng,
                                             n_mutations=2)
            else:
                policy = space.random_policy(rng)
            remove_quantizers(model)
            load_state_dict(model, snapshot)
            apply_policy(model, policy)
            calibrate(model, self.dataset.x_train,
                      batch_size=self.config.scale.batch_size)
            _, accuracy = evaluate_classifier(
                model, self.dataset.x_test, self.dataset.y_test)
            size = model_size_bits(model)
            score = scalarize(accuracy, size, self.config.scalarization)
            results.append((policy, accuracy, size / (8 * 1024)))
            scored.append(score)
            if best_policy is None or score >= max(scored):
                best_policy = policy
        order = np.argsort(scored)[::-1]
        return [results[int(i)] for i in order]
