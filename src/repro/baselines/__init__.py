"""Comparator implementations and literature reference numbers."""

from .evolution import AgingEvolution, evolved_trials
from .jasq import JASQSearch
from .micronas import MicroNASSearch, constrained_score
from .reference import (TABLE2_BOMP_PAPER, TABLE2_REFERENCES,
                        TABLE3_BOMP_PAPER, TABLE3_REFERENCES, TABLE4_PAPER,
                        SearchCostEntry, SotaEntry, table2_rows)
from .sequential import SequentialSearch

__all__ = [
    "AgingEvolution", "evolved_trials", "JASQSearch", "MicroNASSearch",
    "constrained_score",
    "SequentialSearch",
    "SotaEntry", "SearchCostEntry", "table2_rows",
    "TABLE2_REFERENCES", "TABLE2_BOMP_PAPER",
    "TABLE3_REFERENCES", "TABLE3_BOMP_PAPER", "TABLE4_PAPER",
]
