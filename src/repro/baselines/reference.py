"""Literature reference numbers carried from the paper (Tables II and III).

These are the rows of the paper's comparison tables that come from *other
publications* (not from anything the paper — or this reproduction — ran).
They are constants, clearly labelled as literature values, used by the
Table II/III benchmark harnesses so the regenerated tables contain the same
rows as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class SotaEntry:
    """One literature row of Table II."""

    dataset: str
    method: str
    accuracy_percent: float
    model_size_kb: float
    source: str


#: Table II literature rows (accuracy %, model size kB).
TABLE2_REFERENCES: List[SotaEntry] = [
    SotaEntry("cifar10", "JASQ (repr.)", 65.97, 4.47,
              "paper's own JASQ reproduction"),
    SotaEntry("cifar10", "JASQ", 97.03, 900.00, "Chen et al. 2018"),
    SotaEntry("cifar10", "muNAS", 86.49, 11.40, "Liberis et al. 2020"),
    SotaEntry("cifar100", "DFQ", 77.30, 11200.00, "Choi et al. 2020"),
    SotaEntry("cifar100", "GZSQ", 75.95, 5600.00, "He et al. 2021"),
    SotaEntry("cifar100", "LIE", 73.34, 1800.00, "Liu et al. 2021"),
    SotaEntry("cifar100", "Mix&Match", 71.50, 1700.00, "Chang et al. 2020"),
    SotaEntry("cifar100", "LIE (small)", 71.24, 1010.00, "Liu et al. 2021"),
    SotaEntry("cifar100", "APoT", 66.42, 90.00, "Li et al. 2019"),
]

#: BOMP-NAS rows of Table II as the paper measured them (for comparison
#: against our regenerated numbers in EXPERIMENTS.md).
TABLE2_BOMP_PAPER: List[SotaEntry] = [
    SotaEntry("cifar10", "BOMP-NAS", 67.36, 4.57, "paper Table II"),
    SotaEntry("cifar10", "BOMP-NAS", 88.67, 76.08, "paper Table II"),
    SotaEntry("cifar10", "BOMP-NAS", 83.96, 16.30, "paper Table II"),
    SotaEntry("cifar100", "BOMP-NAS", 75.84, 4199.00, "paper Table II"),
    SotaEntry("cifar100", "BOMP-NAS", 74.00, 1773.00, "paper Table II"),
    SotaEntry("cifar100", "BOMP-NAS", 72.36, 1047.00, "paper Table II"),
    SotaEntry("cifar100", "BOMP-NAS", 68.18, 353.00, "paper Table II"),
]


@dataclass(frozen=True)
class SearchCostEntry:
    """One row of Table III: cost = ``fixed + per_scenario * N`` GPU-hours."""

    method: str
    dataset: str
    fixed_hours: float
    per_scenario_hours: float
    source: str

    def cost(self, n_scenarios: int) -> float:
        if n_scenarios < 0:
            raise ValueError("n_scenarios must be non-negative")
        return self.fixed_hours + self.per_scenario_hours * n_scenarios


#: Table III literature rows.
TABLE3_REFERENCES: List[SearchCostEntry] = [
    SearchCostEntry("APQ", "imagenet", 2400.0, 0.5, "Wang et al. 2020"),
    SearchCostEntry("OQA", "imagenet", 1200.0, 0.5, "Shen et al. 2020"),
    SearchCostEntry("QFA", "imagenet", 1805.0, 0.0, "Bai et al. 2021"),
    SearchCostEntry("JASQ", "cifar10", 0.0, 72.0, "Chen et al. 2018"),
    SearchCostEntry("muNAS", "cifar10", 0.0, 552.0, "Liberis et al. 2020"),
]

#: BOMP-NAS rows of Table III as published (measured per-scenario hours).
TABLE3_BOMP_PAPER: List[SearchCostEntry] = [
    SearchCostEntry("BOMP-NAS", "cifar10", 0.0, 12.0, "paper Table III"),
    SearchCostEntry("BOMP-NAS", "cifar100", 0.0, 30.0, "paper Table III"),
]

#: Table IV ablation rows as published (per-scenario GPU-hours).
TABLE4_PAPER = {
    ("fixed8_ptq", "cifar10"): 10.0,
    ("fixed8_ptq", "cifar100"): 23.0,
    ("mp_ptq", "cifar10"): 10.0,
    ("mp_ptq", "cifar100"): 23.0,
    ("mp_qaft", "cifar10"): 12.0,
    ("mp_qaft", "cifar100"): 30.0,
    ("fixed4_qaft", "cifar10"): 15.0,
    ("fixed4_qaft", "cifar100"): 35.0,
}


def table2_rows(dataset: Optional[str] = None) -> List[SotaEntry]:
    """Literature rows, optionally filtered by dataset."""
    rows = TABLE2_REFERENCES
    if dataset is not None:
        rows = [r for r in rows if r.dataset == dataset]
    return list(rows)
