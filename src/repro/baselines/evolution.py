"""Aging-evolution search core, shared by the JASQ and μNAS baselines.

Regularized (aging) evolution (Real et al., 2019): keep a FIFO population;
each cycle, tournament-sample a parent from the population, mutate it into
a child, evaluate the child, append it and evict the oldest member.  This
is the search strategy the paper's main comparators use, and its tendency
to get stuck in local minima (Section II, on JASQ) is exactly what BO is
introduced to fix.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from ..space.genome import MixedPrecisionGenome

SampleFn = Callable[[np.random.Generator], MixedPrecisionGenome]
MutateFn = Callable[[MixedPrecisionGenome, np.random.Generator],
                    MixedPrecisionGenome]
EvaluateFn = Callable[[MixedPrecisionGenome], float]


class AgingEvolution:
    """Tournament-based aging evolution over genomes.

    Args:
        population_size: FIFO population capacity.
        tournament_size: candidates sampled per parent selection.
        sample_fn / mutate_fn: genome operators (mode-restricted by caller).
    """

    def __init__(self, rng: np.random.Generator,
                 sample_fn: SampleFn, mutate_fn: MutateFn,
                 population_size: int = 16,
                 tournament_size: int = 4) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= tournament_size <= population_size:
            raise ValueError(
                "tournament_size must be in [1, population_size]")
        self.rng = rng
        self.sample_fn = sample_fn
        self.mutate_fn = mutate_fn
        self.population_size = population_size
        self.tournament_size = tournament_size
        self._population: Deque[Tuple[MixedPrecisionGenome, float]] = deque()
        self._history: List[Tuple[MixedPrecisionGenome, float]] = []

    @property
    def history(self) -> List[Tuple[MixedPrecisionGenome, float]]:
        return list(self._history)

    @property
    def population(self) -> List[Tuple[MixedPrecisionGenome, float]]:
        return list(self._population)

    def ask(self) -> MixedPrecisionGenome:
        """Next genome to evaluate: random during warm-up, else mutation."""
        if len(self._history) < self.population_size:
            return self.sample_fn(self.rng)
        indices = self.rng.choice(len(self._population),
                                  size=self.tournament_size, replace=False)
        parent = max((self._population[int(i)] for i in indices),
                     key=lambda entry: entry[1])[0]
        return self.mutate_fn(parent, self.rng)

    def tell(self, genome: MixedPrecisionGenome, score: float) -> None:
        """Record an evaluation; evicts the oldest member when full."""
        if not np.isfinite(score):
            raise ValueError(f"score must be finite, got {score}")
        self._history.append((genome, score))
        self._population.append((genome, score))
        if len(self._population) > self.population_size:
            self._population.popleft()

    def best(self) -> Tuple[MixedPrecisionGenome, float]:
        if not self._history:
            raise RuntimeError("no evaluations recorded")
        return max(self._history, key=lambda entry: entry[1])

    def run(self, evaluate: EvaluateFn, n_evaluations: int
            ) -> List[Tuple[MixedPrecisionGenome, float]]:
        """Drive the full loop for ``n_evaluations`` evaluations."""
        if n_evaluations <= 0:
            raise ValueError("n_evaluations must be positive")
        for _ in range(n_evaluations):
            genome = self.ask()
            self.tell(genome, evaluate(genome))
        return self.history
