"""Aging-evolution search core, shared by the JASQ and μNAS baselines.

Regularized (aging) evolution (Real et al., 2019): keep a FIFO population;
each cycle, tournament-sample a parent from the population, mutate it into
a child, evaluate the child, append it and evict the oldest member.  This
is the search strategy the paper's main comparators use, and its tendency
to get stuck in local minima (Section II, on JASQ) is exactly what BO is
introduced to fix.
"""

from __future__ import annotations

from collections import deque
from typing import (TYPE_CHECKING, Callable, Deque, Iterator, List, Optional,
                    Tuple)

import numpy as np

from ..space.genome import MixedPrecisionGenome

if TYPE_CHECKING:  # pragma: no cover
    from ..nas.search import BOMPNAS
    from ..nas.trial import TrialResult

SampleFn = Callable[[np.random.Generator], MixedPrecisionGenome]
MutateFn = Callable[[MixedPrecisionGenome, np.random.Generator],
                    MixedPrecisionGenome]
EvaluateFn = Callable[[MixedPrecisionGenome], float]


class AgingEvolution:
    """Tournament-based aging evolution over genomes.

    Args:
        population_size: FIFO population capacity.
        tournament_size: candidates sampled per parent selection.
        sample_fn / mutate_fn: genome operators (mode-restricted by caller).
    """

    def __init__(self, rng: np.random.Generator,
                 sample_fn: SampleFn, mutate_fn: MutateFn,
                 population_size: int = 16,
                 tournament_size: int = 4) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= tournament_size <= population_size:
            raise ValueError(
                "tournament_size must be in [1, population_size]")
        self.rng = rng
        self.sample_fn = sample_fn
        self.mutate_fn = mutate_fn
        self.population_size = population_size
        self.tournament_size = tournament_size
        self._population: Deque[Tuple[MixedPrecisionGenome, float]] = deque()
        self._history: List[Tuple[MixedPrecisionGenome, float]] = []

    @property
    def history(self) -> List[Tuple[MixedPrecisionGenome, float]]:
        return list(self._history)

    @property
    def population(self) -> List[Tuple[MixedPrecisionGenome, float]]:
        return list(self._population)

    def ask(self) -> MixedPrecisionGenome:
        """Next genome to evaluate: random during warm-up, else mutation."""
        if len(self._history) < self.population_size:
            return self.sample_fn(self.rng)
        indices = self.rng.choice(len(self._population),
                                  size=self.tournament_size, replace=False)
        parent = max((self._population[int(i)] for i in indices),
                     key=lambda entry: entry[1])[0]
        return self.mutate_fn(parent, self.rng)

    def ask_batch(self, q: int) -> List[MixedPrecisionGenome]:
        """Propose ``q`` genomes for concurrent evaluation.

        Each proposal runs its own tournament against the *current*
        population — no fantasy updates are needed because aging evolution
        never conditions a proposal on pending evaluations.
        ``ask_batch(1)`` is exactly one :meth:`ask`.
        """
        if q < 1:
            raise ValueError("batch size must be >= 1")
        return [self.ask() for _ in range(q)]

    def tell(self, genome: MixedPrecisionGenome, score: float) -> None:
        """Record an evaluation; evicts the oldest member when full."""
        if not np.isfinite(score):
            raise ValueError(f"score must be finite, got {score}")
        self._history.append((genome, score))
        self._population.append((genome, score))
        if len(self._population) > self.population_size:
            self._population.popleft()

    def best(self) -> Tuple[MixedPrecisionGenome, float]:
        if not self._history:
            raise RuntimeError("no evaluations recorded")
        return max(self._history, key=lambda entry: entry[1])

    def run(self, evaluate: EvaluateFn, n_evaluations: int,
            batch_size: int = 1, map_fn: Optional[Callable] = None
            ) -> List[Tuple[MixedPrecisionGenome, float]]:
        """Drive the full loop for ``n_evaluations`` evaluations.

        With ``batch_size > 1``, whole batches are proposed up front and
        evaluated through ``map_fn`` (builtin ``map`` by default — pass a
        pool's ``map`` for parallel evaluation); results are told back in
        proposal order, so the trajectory is independent of the mapper.
        """
        if n_evaluations <= 0:
            raise ValueError("n_evaluations must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        mapper = map_fn if map_fn is not None else map
        done = 0
        while done < n_evaluations:
            genomes = self.ask_batch(min(batch_size, n_evaluations - done))
            for genome, score in zip(genomes, list(mapper(evaluate,
                                                          genomes))):
                self.tell(genome, score)
            done += len(genomes)
        return self.history


def evolved_trials(evaluator: "BOMPNAS", evolution: AgingEvolution,
                   total: int, workers: int = 1,
                   batch_size: Optional[int] = None
                   ) -> Iterator["TrialResult"]:
    """Drive an evolutionary search through a parallel trial engine.

    Proposes candidates in batches from ``evolution`` and evaluates each
    batch with the shared BOMP-NAS trial pipeline — on a process pool when
    ``workers > 1``.  Yields :class:`TrialResult`\\ s in proposal order;
    the *caller* tells the evolution its scores between yields (JASQ tells
    the Eq. 1 score, μNAS a constrained one), and the next batch is only
    proposed after every result of the previous one was consumed.
    Deterministic per-trial seeding makes the yielded trials identical for
    any ``workers`` value.
    """
    from ..parallel.engine import (DEFAULT_TRIAL_BATCH, TrialEngine,
                                   TrialSpec)
    from ..parallel.seeding import trial_seed
    config = evaluator.config
    per_candidate = config.policies_per_trial
    proposal_batch = max(1, batch_size if batch_size is not None
                         else DEFAULT_TRIAL_BATCH)
    produced = 0
    engine = TrialEngine(config, evaluator.dataset, workers=workers,
                         cost_model=evaluator.cost_model,
                         space=evaluator.space, evaluator=evaluator)
    with engine:
        while produced < total:
            base = produced
            remaining = -(-(total - base) // per_candidate)
            genomes = evolution.ask_batch(min(proposal_batch, remaining))
            specs = [
                TrialSpec(index=base + j * per_candidate, genome=genome,
                          seed=trial_seed(config.seed,
                                          base + j * per_candidate))
                for j, genome in enumerate(genomes)]
            for batch in engine.evaluate(specs):
                for result in batch:
                    yield result
                    produced += 1
