"""Quantization-aware fine-tuning (QAFT).

QAFT is ordinary gradient training run on a model whose layers carry fake
quantizers: forwards see quantized weights/activations, backwards flow
through the straight-through estimators to the latent full-precision
weights.  The paper runs 1 epoch of QAFT inside the search loop and 5
epochs after final training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.network import Sequential
from ..nn.optim import SGD, ConstantLR
from ..nn.trainer import Trainer, TrainHistory
from ..obs.trace import get_recorder
from .apply import is_quantized


def quantization_aware_finetune(model: Sequential,
                                x: np.ndarray, labels: np.ndarray,
                                epochs: int = 1,
                                learning_rate: float = 0.002,
                                batch_size: int = 64,
                                momentum: float = 0.9,
                                rng: Optional[np.random.Generator] = None
                                ) -> TrainHistory:
    """Fine-tune a quantized model so it compensates for quantization noise.

    The model must already have quantizers attached and calibrated
    (``apply_policy`` + ``calibrate``); raises ``RuntimeError`` otherwise.
    Uses plain SGD at a small constant learning rate, the usual QAT recipe.
    """
    if not is_quantized(model):
        raise RuntimeError(
            "QAFT requires quantizers to be attached; call apply_policy "
            "and calibrate first")
    if epochs < 0:
        raise ValueError("epochs must be non-negative")
    optimizer = SGD(model.parameters(), ConstantLR(learning_rate),
                    momentum=momentum)
    trainer = Trainer(model, optimizer)
    history = trainer.fit(x, labels, epochs=epochs, batch_size=batch_size,
                          rng=rng)
    recorder = get_recorder()
    if recorder.enabled and history.train_loss:
        recorder.gauge("qaft.loss_delta",
                       history.train_loss[-1] - history.train_loss[0],
                       first=history.train_loss[0],
                       last=history.train_loss[-1], epochs=history.epochs)
    return history
