"""Deployment export: pack a quantized model into an actual binary artifact.

The paper's size objective is "model size on disk [kB]".  This module makes
that literal: it serializes a calibrated, quantized model into a flat
binary container — per-channel integer weight codes bit-packed at their
policy bitwidth, float biases, float64 scales and activation calibration
ranges — and reads it back into an equivalent model.  The container's real
byte length matches the analytic accounting of :mod:`repro.quant.size` (up
to per-layer padding), which the test suite asserts.

Version 2 of the container is *lossless* with respect to the fake-quant
simulation: scales and activation ranges are stored at float64 (exactly
the precision the quantizers compute with) and biases as raw float32, so
:func:`rebuild_into` reconstructs a model whose logits are bit-identical
to the pre-export quantized model.  This is what lets the integer
inference engine (:mod:`repro.infer`) compile a container instead of a
live model.  Version 1 (float32 scales, fixed-point biases) is no longer
produced or read; the container is an internal format with no persisted
artifacts to migrate.

Container layout (little-endian):

    magic  b"BOMP"            4 bytes
    version u32               2
    n_layers u32
    per layer:
        name_len u32, name bytes (utf-8)
        bits u8, channel_axis u8, ndim u8, flags u8 (bit 0: has bias)
        shape u32 x ndim
        n_scales u32, scales f64 x n_scales
        act_bits u32 (0 if the input quantizer is absent/uncalibrated)
        act_range f64 x 2 (calibrated lo, hi; NaN if unquantized input)
        bias_len u32, bias f32 x bias_len (empty when the layer has none)
        packed_len u32, packed weight codes (bitstream, byte aligned)
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.module import FLOAT, Module
from .apply import quantizable_layers
from .quantizers import ActivationQuantizer, FixedScaleWeightQuantizer

MAGIC = b"BOMP"
VERSION = 2

#: layer flag bits
_FLAG_HAS_BIAS = 1


def pack_bits(codes: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integer codes (< 2**bits) into a dense bitstream.

    Bit ``j`` of code ``i`` lands at bitstream position ``i*bits + j``,
    LSB-first within each byte (``np.packbits(bitorder="little")``
    convention).  The stream is padded with zero bits to a whole byte.
    """
    if bits < 1 or bits > 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    codes = np.asarray(codes, dtype=np.uint64).ravel()
    if codes.size == 0:
        return b""
    if int(codes.max()) >= (1 << bits):
        raise ValueError("code out of range for bitwidth")
    shifts = np.arange(bits, dtype=np.uint64)
    bit_matrix = ((codes[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel(), bitorder="little").tobytes()


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    if bits < 1 or bits > 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    raw = np.unpackbits(np.frombuffer(data, dtype=np.uint8),
                        bitorder="little")
    if raw.size < count * bits:
        raise ValueError(
            f"bitstream holds {raw.size} bits, need {count * bits}")
    bit_matrix = raw[:count * bits].reshape(count, bits).astype(np.uint64)
    weights = np.left_shift(np.uint64(1), np.arange(bits, dtype=np.uint64))
    return (bit_matrix * weights).sum(axis=1)


@dataclass
class ExportedLayer:
    """One layer's deployed payload."""

    name: str
    bits: int
    channel_axis: int
    shape: Tuple[int, ...]
    scales: np.ndarray          # float64, one per output channel
    act_bits: int               # input-quantizer bitwidth (0 if absent)
    act_range: Optional[Tuple[float, float]]  # calibrated (lo, hi)
    bias: np.ndarray            # float32 (empty if the layer has none)
    codes: np.ndarray           # unsigned weight codes (offset-binary)

    @property
    def activation(self) -> Optional[Tuple[float, float]]:
        """Input-quantizer ``(scale, zero_point)``, or None if unquantized.

        Computed from the stored calibration range with exactly the
        arithmetic of :meth:`ActivationQuantizer.quant_params`.
        """
        if self.act_range is None:
            return None
        lo, hi = self.act_range
        n_levels = 2 ** self.act_bits - 1
        scale = (hi - lo) / n_levels
        return scale, float(round(-lo / scale))

    def signed_codes(self) -> np.ndarray:
        """Weight codes recentred to the symmetric grid (int64)."""
        qmax = 2 ** (self.bits - 1) - 1
        return self.codes.astype(np.int64) - qmax

    def dequantized_weights(self) -> np.ndarray:
        """Reconstruct the float weight tensor from codes and scales."""
        scale_shape = [1] * len(self.shape)
        scale_shape[self.channel_axis] = -1
        scales = self.scales.reshape(scale_shape)
        return (self.signed_codes().reshape(self.shape)
                * scales).astype(FLOAT)


def export_model(model: Module) -> bytes:
    """Serialize a quantized model's deployable payload to bytes.

    Requires weight quantizers to be attached (activation quantizers are
    optional; calibrated ones are stored, others recorded as absent).
    """
    layers = quantizable_layers(model)
    if not any(layer.weight_quantizer is not None for layer in layers):
        raise ValueError("export requires an (at least partially) "
                         "quantized model; call apply_policy first")
    stream = io.BytesIO()
    stream.write(MAGIC)
    stream.write(struct.pack("<II", VERSION, len(layers)))
    for layer in layers:
        _write_layer(stream, layer)
    return stream.getvalue()


def _write_layer(stream: io.BytesIO, layer) -> None:
    quantizer = layer.weight_quantizer
    bits = quantizer.bits if quantizer is not None else 32
    axis = layer.weight_channel_axis
    weights = layer.weight.data
    name = layer.name.encode()
    has_bias = getattr(layer, "bias", None) is not None
    stream.write(struct.pack("<I", len(name)))
    stream.write(name)
    stream.write(struct.pack("<BBBB", bits, axis, weights.ndim,
                             _FLAG_HAS_BIAS if has_bias else 0))
    stream.write(struct.pack(f"<{weights.ndim}I", *weights.shape))

    if quantizer is not None and bits < 32:
        # the exact arithmetic of quantize_symmetric: float64 scales,
        # float64 division, round, clip — so codes * scales reproduces the
        # fake-quantized weights bit for bit
        scales = np.asarray(quantizer.scale_for(weights), dtype=np.float64)
        qmax = 2 ** (bits - 1) - 1
        scale_shape = [1] * weights.ndim
        scale_shape[axis] = -1
        levels = np.clip(np.round(weights / scales.reshape(scale_shape)),
                         -qmax, qmax).astype(np.int64)
        codes = (levels + qmax).astype(np.uint64)  # offset-binary
        packed = pack_bits(codes, bits)
    else:
        scales = np.ones(weights.shape[axis], dtype=np.float64)
        packed = weights.astype("<f4").tobytes()
    stream.write(struct.pack("<I", scales.size))
    stream.write(scales.astype("<f8").tobytes())

    act = layer.input_quantizer
    if act is not None and act.frozen:
        lo, hi = act._range
        stream.write(struct.pack("<I", act.bits))
        stream.write(struct.pack("<dd", float(lo), float(hi)))
    else:
        stream.write(struct.pack("<I", 0))
        stream.write(struct.pack("<dd", float("nan"), float("nan")))

    bias = (layer.bias.data.astype("<f4") if has_bias
            else np.empty(0, dtype="<f4"))
    stream.write(struct.pack("<I", bias.size))
    stream.write(bias.tobytes())

    stream.write(struct.pack("<I", len(packed)))
    stream.write(packed)


def import_model(data: bytes) -> List[ExportedLayer]:
    """Parse an exported container back into per-layer payloads."""
    stream = io.BytesIO(data)
    if stream.read(4) != MAGIC:
        raise ValueError("not a BOMP container")
    version, n_layers = struct.unpack("<II", stream.read(8))
    if version != VERSION:
        raise ValueError(f"unsupported container version {version}")
    layers = []
    for _ in range(n_layers):
        layers.append(_read_layer(stream))
    return layers


def _read_layer(stream: io.BytesIO) -> ExportedLayer:
    (name_len,) = struct.unpack("<I", stream.read(4))
    name = stream.read(name_len).decode()
    bits, axis, ndim, _flags = struct.unpack("<BBBB", stream.read(4))
    shape = struct.unpack(f"<{ndim}I", stream.read(4 * ndim))
    (n_scales,) = struct.unpack("<I", stream.read(4))
    scales = np.frombuffer(stream.read(8 * n_scales), dtype="<f8").copy()
    (act_bits,) = struct.unpack("<I", stream.read(4))
    lo, hi = struct.unpack("<dd", stream.read(16))
    act_range = None
    if act_bits and not (np.isnan(lo) or np.isnan(hi)):
        act_range = (lo, hi)
    (bias_len,) = struct.unpack("<I", stream.read(4))
    bias = np.frombuffer(stream.read(4 * bias_len), dtype="<f4").copy()
    (packed_len,) = struct.unpack("<I", stream.read(4))
    packed = stream.read(packed_len)
    count = int(np.prod(shape))
    if bits < 32:
        codes = unpack_bits(packed, bits, count)
    else:
        codes = np.frombuffer(packed, dtype="<f4").astype(np.uint64)
    return ExportedLayer(name=name, bits=bits, channel_axis=axis,
                         shape=tuple(shape), scales=scales,
                         act_bits=act_bits, act_range=act_range,
                         bias=bias, codes=codes)


def rebuild_into(model: Module, exported) -> Module:
    """Load a container's payload into an architecture-matching model.

    ``model`` must have the same quantizable-layer sequence the container
    was exported from (e.g. rebuilt from the same genome).  Each layer
    gets its latent weights replaced by the dequantized export, a
    :class:`FixedScaleWeightQuantizer` pinned to the stored float64 scales
    (idempotent on the grid, so re-quantizing reproduces the exact codes),
    its bias restored, and a frozen :class:`ActivationQuantizer` carrying
    the stored calibration range.  The rebuilt model's logits are
    bit-identical to the pre-export quantized model's.

    ``exported`` is either container bytes or the list returned by
    :func:`import_model`.  Returns ``model``.
    """
    if isinstance(exported, (bytes, bytearray)):
        exported = import_model(bytes(exported))
    layers = quantizable_layers(model)
    if len(layers) != len(exported):
        raise ValueError(
            f"model has {len(layers)} quantizable layers, container has "
            f"{len(exported)}")
    for layer, payload in zip(layers, exported):
        if layer.name != payload.name:
            raise ValueError(
                f"layer order mismatch: model {layer.name!r} vs "
                f"container {payload.name!r}")
        if tuple(layer.weight.data.shape) != payload.shape:
            raise ValueError(
                f"{layer.name}: weight shape {layer.weight.data.shape} "
                f"!= container {payload.shape}")
        if payload.bits < 32:
            layer.weight.data = payload.dequantized_weights()
            layer.weight_quantizer = FixedScaleWeightQuantizer(
                payload.bits, channel_axis=payload.channel_axis,
                scales=payload.scales)
        else:
            layer.weight.data = payload.dequantized_weights()
            layer.weight_quantizer = None
        if (payload.bias.size > 0) != (getattr(layer, "bias", None)
                                       is not None):
            raise ValueError(
                f"{layer.name}: bias presence mismatch between model and "
                "container")
        if payload.bias.size:
            layer.bias.data = payload.bias.astype(FLOAT)
        if payload.act_range is not None:
            quantizer = ActivationQuantizer(payload.act_bits)
            quantizer._range = payload.act_range
            quantizer.calibrating = False
            layer.input_quantizer = quantizer
        else:
            layer.input_quantizer = None
    return model


def verify_roundtrip(model: Module, data: bytes,
                     atol: float = 1e-5) -> Dict[str, float]:
    """Check the exported container reconstructs the quantized weights.

    Returns the per-layer max abs error between the model's fake-quantized
    weights and the container's dequantized weights; raises on mismatch.
    With the version-2 container the errors are exactly zero.
    """
    exported = {layer.name: layer for layer in import_model(data)}
    errors: Dict[str, float] = {}
    for layer in quantizable_layers(model):
        payload = exported[layer.name]
        if layer.weight_quantizer is None or payload.bits >= 32:
            continue
        reference = layer.weight_quantizer.forward(layer.weight.data)
        reconstructed = payload.dequantized_weights()
        error = float(np.abs(reference - reconstructed).max())
        errors[layer.name] = error
        if error > atol:
            raise ValueError(
                f"{layer.name}: roundtrip error {error} exceeds {atol}")
    return errors


def exported_size_kb(data: bytes) -> float:
    """Real artifact size in kB (1024 bytes)."""
    return len(data) / 1024
