"""Deployment export: pack a quantized model into an actual binary artifact.

The paper's size objective is "model size on disk [kB]".  This module makes
that literal: it serializes a calibrated, quantized model into a flat
binary container — per-channel integer weight codes bit-packed at their
policy bitwidth, INT32 biases (folded batch norm), float32 scales and
activation quantization parameters — and reads it back into an equivalent
model.  The container's real byte length matches the analytic accounting of
:mod:`repro.quant.size` (up to per-layer padding), which the test suite
asserts.

Container layout (little-endian):

    magic  b"BOMP"            4 bytes
    version u32               1
    n_layers u32
    per layer:
        name_len u32, name bytes (utf-8)
        bits u8, channel_axis u8, ndim u8, pad u8
        shape u32 x ndim
        n_scales u32, scales f32 x n_scales
        act_params f32 x 2 (scale, zero_point; NaN if unquantized input)
        bias_len u32, bias i32 x bias_len (folded BN shift, fixed point)
        packed_len u32, packed weight codes (bitstream, byte aligned)
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.module import FLOAT, Module
from .apply import quantizable_layers
from .quantizers import symmetric_scale

MAGIC = b"BOMP"
VERSION = 1


def pack_bits(codes: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integer codes (< 2**bits) into a dense bitstream."""
    if bits < 1 or bits > 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    codes = np.asarray(codes, dtype=np.uint64).ravel()
    if codes.size and int(codes.max()) >= (1 << bits):
        raise ValueError("code out of range for bitwidth")
    total_bits = codes.size * bits
    n_bytes = -(-total_bits // 8)
    buffer = np.zeros(n_bytes, dtype=np.uint8)
    bit_position = 0
    for code in codes:
        byte_index = bit_position // 8
        offset = bit_position % 8
        value = int(code) << offset
        while value:
            buffer[byte_index] |= value & 0xFF
            value >>= 8
            byte_index += 1
        bit_position += bits
    return buffer.tobytes()


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    if count < 0:
        raise ValueError("count must be non-negative")
    buffer = np.frombuffer(data, dtype=np.uint8)
    codes = np.empty(count, dtype=np.uint64)
    mask = (1 << bits) - 1
    bit_position = 0
    for i in range(count):
        byte_index = bit_position // 8
        offset = bit_position % 8
        value = 0
        shift = -offset
        while shift < bits:
            value |= int(buffer[byte_index]) << shift if shift >= 0 else \
                int(buffer[byte_index]) >> -shift
            byte_index += 1
            shift += 8
        codes[i] = value & mask
        bit_position += bits
    return codes


@dataclass
class ExportedLayer:
    """One layer's deployed payload."""

    name: str
    bits: int
    channel_axis: int
    shape: Tuple[int, ...]
    scales: np.ndarray          # float32, one per output channel
    activation: Optional[Tuple[float, float]]  # (scale, zero_point)
    bias: np.ndarray            # int32 fixed-point (empty if none)
    codes: np.ndarray           # unsigned weight codes

    def dequantized_weights(self) -> np.ndarray:
        """Reconstruct the float weight tensor from codes and scales."""
        qmax = 2 ** (self.bits - 1) - 1
        signed = self.codes.astype(np.int64) - qmax  # offset-binary
        scale_shape = [1] * len(self.shape)
        scale_shape[self.channel_axis] = -1
        scales = self.scales.reshape(scale_shape)
        return (signed.reshape(self.shape) * scales).astype(FLOAT)


def export_model(model: Module) -> bytes:
    """Serialize a quantized model's deployable payload to bytes.

    Requires weight quantizers to be attached (activation quantizers are
    optional; calibrated ones are stored, others recorded as absent).
    """
    layers = quantizable_layers(model)
    if not any(layer.weight_quantizer is not None for layer in layers):
        raise ValueError("export requires an (at least partially) "
                         "quantized model; call apply_policy first")
    stream = io.BytesIO()
    stream.write(MAGIC)
    stream.write(struct.pack("<II", VERSION, len(layers)))
    for layer in layers:
        _write_layer(stream, layer)
    return stream.getvalue()


def _write_layer(stream: io.BytesIO, layer) -> None:
    quantizer = layer.weight_quantizer
    bits = quantizer.bits if quantizer is not None else 32
    axis = layer.weight_channel_axis
    weights = layer.weight.data
    name = layer.name.encode()
    stream.write(struct.pack("<I", len(name)))
    stream.write(name)
    stream.write(struct.pack("<BBBB", bits, axis, weights.ndim, 0))
    stream.write(struct.pack(f"<{weights.ndim}I", *weights.shape))

    if quantizer is not None and bits < 32:
        scales = symmetric_scale(weights, bits, axis).astype(np.float32)
        qmax = 2 ** (bits - 1) - 1
        scale_shape = [1] * weights.ndim
        scale_shape[axis] = -1
        levels = np.clip(np.round(weights / scales.reshape(scale_shape)),
                         -qmax, qmax).astype(np.int64)
        codes = (levels + qmax).astype(np.uint64)  # offset-binary
        packed = pack_bits(codes, bits)
    else:
        scales = np.ones(weights.shape[axis], dtype=np.float32)
        packed = weights.astype("<f4").tobytes()
    stream.write(struct.pack("<I", scales.size))
    stream.write(scales.astype("<f4").tobytes())

    act = layer.input_quantizer
    if act is not None and act.frozen:
        act_scale, act_zero = act.quant_params()
        stream.write(struct.pack("<ff", act_scale, act_zero))
    else:
        stream.write(struct.pack("<ff", float("nan"), float("nan")))

    bias = (layer.bias.data.astype(np.float64)
            if getattr(layer, "bias", None) is not None
            else np.zeros(weights.shape[axis]))
    # INT32 fixed point with 2^-16 resolution, the usual bias convention
    bias_fixed = np.clip(np.round(bias * (1 << 16)),
                         -2 ** 31, 2 ** 31 - 1).astype("<i4")
    stream.write(struct.pack("<I", bias_fixed.size))
    stream.write(bias_fixed.tobytes())

    stream.write(struct.pack("<I", len(packed)))
    stream.write(packed)


def import_model(data: bytes) -> List[ExportedLayer]:
    """Parse an exported container back into per-layer payloads."""
    stream = io.BytesIO(data)
    if stream.read(4) != MAGIC:
        raise ValueError("not a BOMP container")
    version, n_layers = struct.unpack("<II", stream.read(8))
    if version != VERSION:
        raise ValueError(f"unsupported container version {version}")
    layers = []
    for _ in range(n_layers):
        layers.append(_read_layer(stream))
    return layers


def _read_layer(stream: io.BytesIO) -> ExportedLayer:
    (name_len,) = struct.unpack("<I", stream.read(4))
    name = stream.read(name_len).decode()
    bits, axis, ndim, _ = struct.unpack("<BBBB", stream.read(4))
    shape = struct.unpack(f"<{ndim}I", stream.read(4 * ndim))
    (n_scales,) = struct.unpack("<I", stream.read(4))
    scales = np.frombuffer(stream.read(4 * n_scales), dtype="<f4").copy()
    act_scale, act_zero = struct.unpack("<ff", stream.read(8))
    activation = None
    if not (np.isnan(act_scale) or np.isnan(act_zero)):
        activation = (act_scale, act_zero)
    (bias_len,) = struct.unpack("<I", stream.read(4))
    bias = np.frombuffer(stream.read(4 * bias_len), dtype="<i4").copy()
    (packed_len,) = struct.unpack("<I", stream.read(4))
    packed = stream.read(packed_len)
    count = int(np.prod(shape))
    if bits < 32:
        codes = unpack_bits(packed, bits, count)
    else:
        codes = np.frombuffer(packed, dtype="<f4").astype(np.uint64)
    return ExportedLayer(name=name, bits=bits, channel_axis=axis,
                         shape=tuple(shape), scales=scales,
                         activation=activation, bias=bias, codes=codes)


def verify_roundtrip(model: Module, data: bytes,
                     atol: float = 1e-5) -> Dict[str, float]:
    """Check the exported container reconstructs the quantized weights.

    Returns the per-layer max abs error between the model's fake-quantized
    weights and the container's dequantized weights; raises on mismatch.
    """
    exported = {layer.name: layer for layer in import_model(data)}
    errors: Dict[str, float] = {}
    for layer in quantizable_layers(model):
        payload = exported[layer.name]
        if layer.weight_quantizer is None or payload.bits >= 32:
            continue
        reference = layer.weight_quantizer.forward(layer.weight.data)
        reconstructed = payload.dequantized_weights()
        error = float(np.abs(reference - reconstructed).max())
        errors[layer.name] = error
        if error > atol:
            raise ValueError(
                f"{layer.name}: roundtrip error {error} exceeds {atol}")
    return errors


def exported_size_kb(data: bytes) -> float:
    """Real artifact size in kB (1024 bytes)."""
    return len(data) / 1024
