"""Mixed-precision quantization policies.

A policy assigns one weight bitwidth to each *quantization slot*.  A slot is
a named position in the architecture template (e.g. ``ib3.expand``); all
repetitions of a block share its slots, which is what makes the policy space
size ``5**23`` for the Table I search space (23 slots, bitwidths {4..8}).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

DEFAULT_BITWIDTH_CHOICES = (4, 5, 6, 7, 8)


class QuantizationPolicy:
    """Immutable mapping from slot name to weight bitwidth."""

    def __init__(self, bitwidths: Mapping[str, int],
                 allowed: Sequence[int] = DEFAULT_BITWIDTH_CHOICES) -> None:
        if not bitwidths:
            raise ValueError("policy needs at least one slot")
        allowed_set = set(allowed)
        for slot, bits in bitwidths.items():
            if bits not in allowed_set:
                raise ValueError(
                    f"slot {slot!r}: bitwidth {bits} not in {sorted(allowed_set)}")
        self._bits: Dict[str, int] = dict(bitwidths)
        self.allowed = tuple(sorted(allowed_set))

    @classmethod
    def homogeneous(cls, slots: Iterable[str], bits: int,
                    allowed: Sequence[int] = DEFAULT_BITWIDTH_CHOICES
                    ) -> "QuantizationPolicy":
        """Fixed-precision policy: every slot at the same bitwidth."""
        return cls({slot: bits for slot in slots}, allowed=allowed)

    @property
    def slots(self) -> List[str]:
        return list(self._bits)

    def bits_for(self, slot: str) -> int:
        if slot not in self._bits:
            raise KeyError(f"unknown quantization slot {slot!r}")
        return self._bits[slot]

    def as_dict(self) -> Dict[str, int]:
        return dict(self._bits)

    def mean_bits(self) -> float:
        return sum(self._bits.values()) / len(self._bits)

    def min_bits(self) -> int:
        return min(self._bits.values())

    def max_bits(self) -> int:
        return max(self._bits.values())

    def is_homogeneous(self) -> bool:
        return self.min_bits() == self.max_bits()

    def with_bits(self, slot: str, bits: int) -> "QuantizationPolicy":
        """A copy of this policy with one slot changed."""
        if slot not in self._bits:
            raise KeyError(f"unknown quantization slot {slot!r}")
        updated = dict(self._bits)
        updated[slot] = bits
        return QuantizationPolicy(updated, allowed=self.allowed)

    def __len__(self) -> int:
        return len(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantizationPolicy):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._bits.items())))

    def __repr__(self) -> str:
        if self.is_homogeneous():
            return (f"QuantizationPolicy(homogeneous {self.min_bits()}-bit, "
                    f"{len(self)} slots)")
        return (f"QuantizationPolicy(mixed {self.min_bits()}-"
                f"{self.max_bits()}-bit, {len(self)} slots)")
