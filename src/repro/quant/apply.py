"""Attaching quantizers to a model, PTQ calibration, and removal.

Workflow (mirroring steps (3) of Fig. 1 in the paper):

1. :func:`apply_policy` attaches a :class:`WeightQuantizer` (bitwidth from
   the policy, per output channel) and an INT8 :class:`ActivationQuantizer`
   to every quantizable layer.
2. :func:`calibrate` runs calibration batches through the model so the
   activation observers see realistic ranges, then freezes them.  After
   this, evaluating the model *is* post-training quantization (PTQ).
3. Optionally, training the calibrated model is quantization-aware
   fine-tuning (QAFT) — see :mod:`repro.quant.qaft`.

Layers are matched to policy slots through their ``quant_slot`` attribute,
set by the model builder (:mod:`repro.space.builder`).  Repeated blocks share
a slot, so one policy covers every architecture in the search space.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..nn.conv import Conv2D, DepthwiseConv2D
from ..nn.layers import Dense
from ..nn.module import Module
from ..nn.network import Sequential
from ..obs.trace import get_recorder
from .observers import make_observer
from .policy import QuantizationPolicy
from .quantizers import ActivationQuantizer, WeightQuantizer

QuantizableLayer = Union[Conv2D, DepthwiseConv2D, Dense]

ACTIVATION_BITS = 8
BIAS_BITS = 32


def quantizable_layers(model: Module) -> List[QuantizableLayer]:
    """All weight-bearing layers of a model, in execution order."""
    return [m for m in model.modules()
            if isinstance(m, (Conv2D, DepthwiseConv2D, Dense))]


def apply_policy(model: Module, policy: QuantizationPolicy,
                 activation_bits: int = ACTIVATION_BITS,
                 observer_kind: str = "minmax") -> List[QuantizableLayer]:
    """Attach fake quantizers to every quantizable layer per ``policy``.

    Returns the layers that received quantizers.  Raises ``KeyError`` if a
    layer's ``quant_slot`` is missing from the policy, and ``ValueError``
    if a layer has no ``quant_slot`` tag at all (models must be built by
    the search-space builder or tagged manually).
    """
    layers = quantizable_layers(model)
    if not layers:
        raise ValueError("model has no quantizable layers")
    for layer in layers:
        slot = getattr(layer, "quant_slot", None)
        if slot is None:
            raise ValueError(
                f"layer {layer.name!r} has no quant_slot tag; tag it or "
                "build the model via repro.space.builder")
        bits = policy.bits_for(slot)
        layer.weight_quantizer = WeightQuantizer(
            bits, channel_axis=layer.weight_channel_axis)
        layer.input_quantizer = ActivationQuantizer(
            activation_bits, observer=make_observer(observer_kind))
    return layers


def calibrate(model: Sequential, x: np.ndarray,
              batch_size: int = 128,
              max_batches: Optional[int] = 4) -> None:
    """Run calibration batches through the model, then freeze activations.

    Must be called after :func:`apply_policy`; evaluating the model after
    this call realizes PTQ.
    """
    layers = quantizable_layers(model)
    quantizers = [layer.input_quantizer for layer in layers
                  if layer.input_quantizer is not None]
    if not quantizers:
        raise RuntimeError("no activation quantizers attached; call "
                           "apply_policy first")
    model.set_training(False)
    n_batches = 0
    for start in range(0, x.shape[0], batch_size):
        model.forward(x[start:start + batch_size])
        n_batches += 1
        if max_batches is not None and n_batches >= max_batches:
            break
    for quantizer in quantizers:
        quantizer.freeze()
    recorder = get_recorder()
    if recorder.enabled:
        recorder.counter("ptq.calibrated_layers", len(quantizers))
        recorder.gauge("ptq.calibration_batches", n_batches)
        for quantizer in quantizers:
            scale, zero_point = quantizer.quant_params()
            recorder.observe("ptq.act_scale", scale)
            recorder.observe("ptq.act_zero_point", zero_point)


def remove_quantizers(model: Module) -> None:
    """Detach all quantizers, restoring full-precision behaviour."""
    for layer in quantizable_layers(model):
        layer.weight_quantizer = None
        layer.input_quantizer = None


def is_quantized(model: Module) -> bool:
    """True if any layer currently has a weight quantizer attached."""
    return any(layer.weight_quantizer is not None
               for layer in quantizable_layers(model))


def bake_weights(model: Module) -> None:
    """Overwrite latent weights with their quantized values.

    After baking, removing the quantizers leaves the model numerically on
    the quantization grid — this is what "deploying" the model means in the
    simulation, and it is used to show that PTQ'd weights are exactly
    representable.
    """
    for layer in quantizable_layers(model):
        if layer.weight_quantizer is not None:
            layer.weight.data = layer.weight_quantizer.forward(
                layer.weight.data)
