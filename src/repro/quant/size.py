"""Model size-on-disk accounting.

The deployed artifact stores, per weight-bearing layer:

- the weight tensor at the policy's bitwidth (or 32-bit when unquantized),
- one 32-bit scale per output channel (per-channel symmetric quantization),
- a 32-bit (INT32) bias per output channel — batch norm is folded into the
  preceding convolution at deployment, which turns every conv into a
  conv-with-bias and makes the BN parameters free,
- for quantized activations, one 32-bit scale + zero-point pair per layer.

Sizes are reported in bits and in kB (1 kB = 1024 bytes, as is conventional
for on-device model sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..nn.module import Module
from .apply import BIAS_BITS, quantizable_layers
from .policy import QuantizationPolicy

BITS_PER_KB = 8 * 1024
FLOAT_BITS = 32


@dataclass
class LayerSize:
    """Size breakdown of a single layer."""

    name: str
    slot: Optional[str]
    weight_bits: int
    n_weights: int
    weight_storage_bits: int
    overhead_bits: int

    @property
    def total_bits(self) -> int:
        return self.weight_storage_bits + self.overhead_bits


def layer_sizes(model: Module,
                policy: Optional[QuantizationPolicy] = None,
                activation_bits: Optional[int] = 8) -> List[LayerSize]:
    """Per-layer size breakdown.

    If ``policy`` is given it determines the bitwidths (whether or not
    quantizers are attached); otherwise attached quantizers are consulted,
    falling back to 32-bit float weights.
    """
    sizes: List[LayerSize] = []
    for layer in quantizable_layers(model):
        slot = getattr(layer, "quant_slot", None)
        if policy is not None:
            if slot is None:
                raise ValueError(
                    f"layer {layer.name!r} has no quant_slot tag")
            bits = policy.bits_for(slot)
        elif layer.weight_quantizer is not None:
            bits = layer.weight_quantizer.bits
        else:
            bits = FLOAT_BITS
        n_weights = layer.weight.size
        weight_storage = n_weights * bits
        out_channels = layer.weight.shape[layer.weight_channel_axis]
        overhead = out_channels * BIAS_BITS  # folded-BN / dense bias
        if bits < FLOAT_BITS:
            overhead += out_channels * FLOAT_BITS  # per-channel scales
            if activation_bits is not None:
                overhead += 2 * FLOAT_BITS  # activation scale + zero point
        sizes.append(LayerSize(
            name=layer.name, slot=slot, weight_bits=bits,
            n_weights=n_weights, weight_storage_bits=weight_storage,
            overhead_bits=overhead))
    return sizes


def model_size_bits(model: Module,
                    policy: Optional[QuantizationPolicy] = None,
                    activation_bits: Optional[int] = 8) -> int:
    """Total deployed size in bits."""
    return sum(s.total_bits for s in layer_sizes(model, policy,
                                                 activation_bits))


def model_size_kb(model: Module,
                  policy: Optional[QuantizationPolicy] = None,
                  activation_bits: Optional[int] = 8) -> float:
    """Total deployed size in kB (1024 bytes)."""
    return model_size_bits(model, policy, activation_bits) / BITS_PER_KB


def size_report(model: Module,
                policy: Optional[QuantizationPolicy] = None) -> str:
    """Human-readable per-layer size table."""
    sizes = layer_sizes(model, policy)
    lines = [f"{'layer':<28} {'slot':<16} {'bits':>4} {'weights':>9} "
             f"{'kB':>8}"]
    for s in sizes:
        lines.append(
            f"{s.name:<28} {str(s.slot):<16} {s.weight_bits:>4} "
            f"{s.n_weights:>9} {s.total_bits / BITS_PER_KB:>8.2f}")
    total = sum(s.total_bits for s in sizes)
    lines.append(f"{'TOTAL':<50} {total / BITS_PER_KB:>12.2f} kB")
    return "\n".join(lines)


def bitwidth_by_layer(model: Module,
                      policy: QuantizationPolicy) -> Dict[str, int]:
    """Ordered mapping of layer name -> weight bitwidth (drives Fig. 3)."""
    return {s.name: s.weight_bits for s in layer_sizes(model, policy)}
