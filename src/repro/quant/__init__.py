"""Quantization substrate: fake quantizers, policies, PTQ and QAFT.

Replaces QKeras in the paper's stack.  Weights are quantized symmetrically
per output channel at searchable bitwidths {4..8}; activations are quantized
affinely per tensor at INT8; biases are accounted at INT32.
"""

from .apply import (ACTIVATION_BITS, BIAS_BITS, apply_policy, bake_weights,
                    calibrate, is_quantized, quantizable_layers,
                    remove_quantizers)
from .export import (ExportedLayer, export_model, exported_size_kb,
                     import_model, pack_bits, rebuild_into, unpack_bits,
                     verify_roundtrip)
from .observers import (MinMaxObserver, MovingAverageObserver, Observer,
                        PercentileObserver, make_observer)
from .policy import DEFAULT_BITWIDTH_CHOICES, QuantizationPolicy
from .qaft import quantization_aware_finetune
from .quantizers import (ActivationQuantizer, FixedScaleWeightQuantizer,
                         WeightQuantizer, quantization_error,
                         quantize_symmetric, symmetric_scale)
from .size import (BITS_PER_KB, FLOAT_BITS, LayerSize, bitwidth_by_layer,
                   layer_sizes, model_size_bits, model_size_kb, size_report)

__all__ = [
    "QuantizationPolicy", "DEFAULT_BITWIDTH_CHOICES",
    "WeightQuantizer", "ActivationQuantizer", "FixedScaleWeightQuantizer",
    "quantize_symmetric", "symmetric_scale", "quantization_error",
    "Observer", "MinMaxObserver", "MovingAverageObserver",
    "PercentileObserver", "make_observer",
    "apply_policy", "calibrate", "remove_quantizers", "is_quantized",
    "quantizable_layers", "bake_weights",
    "quantization_aware_finetune",
    "model_size_bits", "model_size_kb", "layer_sizes", "LayerSize",
    "size_report", "bitwidth_by_layer",
    "ACTIVATION_BITS", "BIAS_BITS", "BITS_PER_KB", "FLOAT_BITS",
    "export_model", "import_model", "verify_roundtrip", "ExportedLayer",
    "pack_bits", "unpack_bits", "exported_size_kb", "rebuild_into",
]
