"""Fake quantizers with straight-through estimators.

Quantization semantics follow the paper (Section III, citing Nagel et al.):

- **Weights**: symmetric uniform quantization, *per output channel*, to a
  searchable bitwidth in {4..8}.  The scale is recomputed from the current
  weight values on every forward pass, so QAFT continuously adapts.
- **Activations**: affine uniform quantization, *per tensor*, to INT8, with
  the range frozen from calibration observers.
- **Biases**: INT32 — at 32 bits the rounding error is negligible, so biases
  are kept in float during simulation and only *accounted* at 32 bits by
  :mod:`repro.quant.size` (the standard deployment convention).

Both quantizers implement ``forward``/``backward``; ``backward`` is the
straight-through estimator (identity for weights, in-range mask for
activations).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.module import FLOAT
from ..obs import profile as prof
from .observers import MinMaxObserver, Observer


def symmetric_scale(weights: np.ndarray, bits: int,
                    channel_axis: Optional[int] = None) -> np.ndarray:
    """Per-channel (or per-tensor) symmetric quantization scale.

    The scale maps the largest absolute weight onto the top quantization
    level ``2**(bits-1) - 1``.
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    qmax = 2 ** (bits - 1) - 1
    if channel_axis is None:
        max_abs = np.abs(weights).max()
        scale = np.asarray(max_abs / qmax, dtype=np.float64)
    else:
        axes = tuple(a for a in range(weights.ndim) if a != channel_axis)
        max_abs = np.abs(weights).max(axis=axes)
        scale = max_abs / qmax
    # an all-zero channel would give scale 0 -> division by zero
    return np.where(scale > 0, scale, 1.0)


def quantize_symmetric(weights: np.ndarray, bits: int,
                       channel_axis: Optional[int] = None) -> np.ndarray:
    """Round weights onto the symmetric grid and return the dequantized copy."""
    scale = symmetric_scale(weights, bits, channel_axis)
    qmax = 2 ** (bits - 1) - 1
    if channel_axis is not None:
        shape = [1] * weights.ndim
        shape[channel_axis] = -1
        scale = scale.reshape(shape)
    q = np.clip(np.round(weights / scale), -qmax, qmax)
    return (q * scale).astype(FLOAT)


class WeightQuantizer:
    """Symmetric per-channel fake quantizer for weight tensors.

    ``forward`` quantizes to the grid, ``backward`` passes the gradient
    straight through to the latent full-precision weights (STE), which is
    what makes quantization-aware fine-tuning work.
    """

    def __init__(self, bits: int, channel_axis: Optional[int] = None) -> None:
        if not 2 <= bits <= 32:
            raise ValueError(f"bits must be in [2, 32], got {bits}")
        self.bits = bits
        self.channel_axis = channel_axis

    def forward(self, weights: np.ndarray) -> np.ndarray:
        if self.bits >= 32:
            return weights
        with prof.kernel("quant.weight_fq"):
            return quantize_symmetric(weights, self.bits, self.channel_axis)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad

    def scale_for(self, weights: np.ndarray) -> np.ndarray:
        """The float64 scale(s) ``forward`` would quantize ``weights`` with.

        Exposed so deployment (export, integer compilation) shares the
        exact scale arithmetic of the fake-quant simulation.
        """
        return symmetric_scale(weights, self.bits, self.channel_axis)

    def num_scales(self, weights_shape: tuple) -> int:
        """Number of 32-bit scale constants this quantizer stores on disk."""
        if self.channel_axis is None:
            return 1
        return int(weights_shape[self.channel_axis])

    def __repr__(self) -> str:
        return (f"WeightQuantizer(bits={self.bits}, "
                f"channel_axis={self.channel_axis})")


class FixedScaleWeightQuantizer(WeightQuantizer):
    """A weight quantizer pinned to externally supplied scales.

    Used when rebuilding a model from an exported container
    (:func:`repro.quant.export.rebuild_into`): the stored float64 scales
    are reused verbatim instead of being recomputed from the weights, so
    quantization is idempotent — weights already on the grid round back to
    the exact same integer codes, making the rebuilt model bit-identical
    to the pre-export one.
    """

    def __init__(self, bits: int, channel_axis: Optional[int],
                 scales: np.ndarray) -> None:
        super().__init__(bits, channel_axis=channel_axis)
        self.scales = np.asarray(scales, dtype=np.float64)

    def scale_for(self, weights: np.ndarray) -> np.ndarray:
        return self.scales

    def forward(self, weights: np.ndarray) -> np.ndarray:
        if self.bits >= 32:
            return weights
        with prof.kernel("quant.weight_fq"):
            qmax = 2 ** (self.bits - 1) - 1
            scale = self.scales
            if self.channel_axis is not None:
                shape = [1] * weights.ndim
                shape[self.channel_axis] = -1
                scale = scale.reshape(shape)
            q = np.clip(np.round(weights / scale), -qmax, qmax)
            return (q * scale).astype(FLOAT)

    def __repr__(self) -> str:
        return (f"FixedScaleWeightQuantizer(bits={self.bits}, "
                f"channel_axis={self.channel_axis})")


class ActivationQuantizer:
    """Affine per-tensor fake quantizer for activations.

    Lifecycle: constructed in *calibration* mode, where ``forward`` only
    feeds the observer and returns the input unchanged; after
    :meth:`freeze`, ``forward`` fake-quantizes with the frozen range and
    ``backward`` masks gradients of clipped values (the STE for affine
    quantization).
    """

    def __init__(self, bits: int = 8,
                 observer: Optional[Observer] = None) -> None:
        if not 2 <= bits <= 32:
            raise ValueError(f"bits must be in [2, 32], got {bits}")
        self.bits = bits
        self.observer = observer if observer is not None else MinMaxObserver()
        self.calibrating = True
        self._range: Optional[Tuple[float, float]] = None
        self._mask: Optional[np.ndarray] = None

    @property
    def frozen(self) -> bool:
        return not self.calibrating

    def freeze(self) -> None:
        """End calibration; subsequent forwards fake-quantize."""
        self._range = self.observer.range()
        self.calibrating = False

    def quant_params(self) -> Tuple[float, float]:
        """``(scale, zero_point)`` of the frozen affine grid."""
        if self._range is None:
            raise RuntimeError("quantizer not frozen yet")
        lo, hi = self._range
        n_levels = 2 ** self.bits - 1
        scale = (hi - lo) / n_levels
        zero_point = round(-lo / scale)
        return scale, float(zero_point)

    def fake_quant(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantize with the frozen grid, without touching any state.

        Used for secondary consumers of an already-quantized tensor (the
        residual path of an inverted bottleneck), which must see the same
        grid-clamped value the deployed integer engine reads, without
        double-feeding the observer or clobbering the STE mask.
        """
        if self.calibrating:
            return x
        scale, zero_point = self.quant_params()
        n_levels = 2 ** self.bits - 1
        q = np.clip(np.round(x / scale + zero_point), 0, n_levels)
        return ((q - zero_point) * scale).astype(FLOAT)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.calibrating:
            self.observer.observe(x)
            self._mask = None
            return x
        with prof.kernel("quant.act_fq"):
            lo, hi = self._range
            self._mask = (x >= lo) & (x <= hi)
            return self.fake_quant(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            # calibration mode (or backward without forward): pass through
            return grad
        out = np.where(self._mask, grad, 0).astype(FLOAT, copy=False)
        self._mask = None
        return out

    def __repr__(self) -> str:
        state = "calibrating" if self.calibrating else f"range={self._range}"
        return f"ActivationQuantizer(bits={self.bits}, {state})"


def quantization_error(weights: np.ndarray, bits: int,
                       channel_axis: Optional[int] = None) -> float:
    """Mean squared error introduced by symmetric quantization.

    Useful for sensitivity analysis of layers to bitwidth choices.
    """
    quantized = quantize_symmetric(weights, bits, channel_axis)
    return float(((weights - quantized) ** 2).mean())
