"""Range observers for activation calibration.

Post-training quantization needs an estimate of each activation tensor's
dynamic range.  Observers collect that estimate over calibration batches;
the activation quantizer then freezes the observed range.  Three strategies
are provided (min-max, moving-average min-max, percentile), matching the
standard choices in Nagel et al., "A white paper on neural network
quantization" (2021).
"""

from __future__ import annotations

import numpy as np


class Observer:
    """Base range observer."""

    def __init__(self) -> None:
        self.min_val: float = np.inf
        self.max_val: float = -np.inf
        self.n_batches: int = 0

    @property
    def calibrated(self) -> bool:
        return self.n_batches > 0

    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    #: smallest representable range width; narrower observed ranges are
    #: numerically degenerate (their scale underflows float32) and are
    #: widened to this
    MIN_RANGE = 1e-8

    def range(self) -> tuple:
        """The calibrated ``(min, max)`` range, always containing zero.

        Including zero guarantees that zero-padding and ReLU zeros are
        exactly representable (a requirement for affine quantization).
        """
        if not self.calibrated:
            raise RuntimeError(
                f"{type(self).__name__} queried before any observation")
        lo = min(self.min_val, 0.0)
        hi = max(self.max_val, 0.0)
        if hi - lo < self.MIN_RANGE:
            hi = lo + self.MIN_RANGE
        return lo, hi

    def reset(self) -> None:
        self.min_val = np.inf
        self.max_val = -np.inf
        self.n_batches = 0


class MinMaxObserver(Observer):
    """Tracks the global minimum and maximum over all observed batches."""

    def observe(self, x: np.ndarray) -> None:
        if x.size == 0:
            raise ValueError("cannot observe an empty tensor")
        self.min_val = min(self.min_val, float(x.min()))
        self.max_val = max(self.max_val, float(x.max()))
        self.n_batches += 1


class MovingAverageObserver(Observer):
    """Exponential moving average of per-batch min/max.

    Less sensitive to a single outlier batch than :class:`MinMaxObserver`;
    the first observation initializes the average.
    """

    def __init__(self, momentum: float = 0.9) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum

    def observe(self, x: np.ndarray) -> None:
        if x.size == 0:
            raise ValueError("cannot observe an empty tensor")
        batch_min = float(x.min())
        batch_max = float(x.max())
        if self.n_batches == 0:
            self.min_val = batch_min
            self.max_val = batch_max
        else:
            self.min_val = (self.momentum * self.min_val
                            + (1 - self.momentum) * batch_min)
            self.max_val = (self.momentum * self.max_val
                            + (1 - self.momentum) * batch_max)
        self.n_batches += 1


class PercentileObserver(Observer):
    """Clips the range to symmetric percentiles of the observed values.

    Keeps a bounded reservoir of observed values and reports the
    ``(p, 100-p)`` percentiles, discarding extreme outliers that would
    otherwise waste quantization levels.
    """

    def __init__(self, percentile: float = 99.9,
                 reservoir_size: int = 100_000, seed: int = 0) -> None:
        super().__init__()
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.percentile = percentile
        self.reservoir_size = reservoir_size
        self._rng = np.random.default_rng(seed)
        self._values = np.empty(0, dtype=np.float32)

    def observe(self, x: np.ndarray) -> None:
        if x.size == 0:
            raise ValueError("cannot observe an empty tensor")
        flat = x.reshape(-1).astype(np.float32)
        if flat.size > self.reservoir_size:
            flat = self._rng.choice(flat, self.reservoir_size, replace=False)
        self._values = np.concatenate([self._values, flat])
        if self._values.size > self.reservoir_size:
            keep = self._rng.choice(self._values.size, self.reservoir_size,
                                    replace=False)
            self._values = self._values[keep]
        lo_p = 100.0 - self.percentile
        self.min_val = float(np.percentile(self._values, lo_p))
        self.max_val = float(np.percentile(self._values, self.percentile))
        self.n_batches += 1

    def reset(self) -> None:
        super().reset()
        self._values = np.empty(0, dtype=np.float32)


OBSERVERS = {
    "minmax": MinMaxObserver,
    "moving_average": MovingAverageObserver,
    "percentile": PercentileObserver,
}


def make_observer(kind: str, **kwargs) -> Observer:
    """Factory for observers by name (``minmax``/``moving_average``/...)."""
    if kind not in OBSERVERS:
        raise ValueError(
            f"unknown observer {kind!r}; choices: {sorted(OBSERVERS)}")
    return OBSERVERS[kind](**kwargs)
