"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from .module import FLOAT, Parameter


class LRSchedule:
    """Base learning-rate schedule: returns the LR for a given step."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = base_lr

    def lr_at(self, step: int) -> float:
        return self.base_lr


class ConstantLR(LRSchedule):
    """Constant learning rate."""


class CosineDecayLR(LRSchedule):
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, base_lr: float, total_steps: int,
                 min_lr: float = 0.0) -> None:
        super().__init__(base_lr)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if min_lr < 0 or min_lr > base_lr:
            raise ValueError("min_lr must be in [0, base_lr]")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepDecayLR(LRSchedule):
    """Multiply the LR by ``factor`` every ``step_size`` steps."""

    def __init__(self, base_lr: float, step_size: int,
                 factor: float = 0.1) -> None:
        super().__init__(base_lr)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        self.step_size = step_size
        self.factor = factor

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.factor ** (step // self.step_size)


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: List[Parameter],
                 schedule: LRSchedule) -> None:
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = params
        self.schedule = schedule
        self.step_count = 0

    @property
    def lr(self) -> float:
        return self.schedule.lr_at(self.step_count)

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        lr = self.lr
        for param in self.params:
            if not param.trainable or param.grad is None:
                continue
            self._update(param, lr)
        self.step_count += 1

    def _update(self, param: Parameter, lr: float) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(self, params: List[Parameter], schedule: LRSchedule,
                 momentum: float = 0.9, weight_decay: float = 0.0) -> None:
        super().__init__(params, schedule)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, lr: float) -> None:
        grad = param.grad
        if self.weight_decay > 0:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param.data)
        velocity = self.momentum * velocity - lr * grad
        self._velocity[key] = velocity
        param.data += velocity.astype(FLOAT, copy=False)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: List[Parameter], schedule: LRSchedule,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, schedule)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, lr: float) -> None:
        grad = param.grad
        if self.weight_decay > 0:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        t = self.step_count + 1
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param.data -= (lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(
            FLOAT, copy=False)


def clip_gradients(params: List[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads: List[Optional[np.ndarray]] = [p.grad for p in params]
    for grad in grads:
        if grad is not None:
            total += float((grad.astype(np.float64) ** 2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            if grad is not None:
                grad *= scale
    return norm
