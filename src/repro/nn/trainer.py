"""Mini-batch training loop with history tracking.

The trainer is the single training entry point used by early training,
quantization-aware fine-tuning (QAFT) and final training — the only
difference between those stages is the epoch count, schedule, and whether
quantizers are attached to the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..obs.trace import get_recorder
from .losses import SoftmaxCrossEntropy, accuracy
from .network import Sequential
from .optim import Optimizer, clip_gradients


@dataclass
class TrainHistory:
    """Per-epoch metrics collected during a fit."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    steps: int = 0

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        if not self.val_accuracy:
            raise ValueError("no validation metrics recorded")
        return max(self.val_accuracy)

    def as_dict(self) -> Dict[str, list]:
        return {
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "val_loss": self.val_loss,
            "val_accuracy": self.val_accuracy,
        }


class Trainer:
    """Trains a :class:`~repro.nn.network.Sequential` classifier.

    Args:
        model: the network to train.
        optimizer: optimizer built over ``model.parameters()``.
        loss: loss object with ``forward(logits, labels)``/``backward()``.
        grad_clip: optional global-norm gradient clipping threshold.
        augment: optional callable ``(x_batch, rng) -> x_batch`` applied to
            each training batch (used for shift/flip augmentation).
    """

    def __init__(self, model: Sequential, optimizer: Optimizer,
                 loss: Optional[SoftmaxCrossEntropy] = None,
                 grad_clip: Optional[float] = 5.0,
                 augment: Optional[Callable] = None) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.grad_clip = grad_clip
        self.augment = augment

    def train_epoch(self, x: np.ndarray, labels: np.ndarray,
                    batch_size: int, rng: np.random.Generator,
                    history: TrainHistory) -> None:
        """One shuffled pass over the training set."""
        n = x.shape[0]
        order = rng.permutation(n)
        self.model.set_training(True)
        recorder = get_recorder()
        epoch_index = len(history.train_loss)
        with recorder.span("epoch", kind="epoch", epoch=epoch_index) as span:
            epoch_loss = 0.0
            epoch_correct = 0.0
            grad_norm = None
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                xb = x[idx]
                yb = labels[idx]
                if self.augment is not None:
                    xb = self.augment(xb, rng)
                logits = self.model.forward(xb)
                loss_value = self.loss.forward(logits, yb)
                self.model.zero_grad()
                self.model.backward(self.loss.backward())
                if self.grad_clip is not None:
                    grad_norm = clip_gradients(self.optimizer.params,
                                               self.grad_clip)
                self.optimizer.step()
                epoch_loss += loss_value * len(idx)
                epoch_correct += accuracy(logits, yb) * len(idx)
                history.steps += 1
            history.train_loss.append(epoch_loss / n)
            history.train_accuracy.append(epoch_correct / n)
            if recorder.enabled:
                # pre-clip global grad norm of the last batch; LR after it
                span.tags.update(
                    loss=history.train_loss[-1],
                    accuracy=history.train_accuracy[-1],
                    lr=self.optimizer.lr, grad_norm=grad_norm,
                    steps=-(-n // batch_size))

    def fit(self, x: np.ndarray, labels: np.ndarray, epochs: int,
            batch_size: int = 64,
            x_val: Optional[np.ndarray] = None,
            labels_val: Optional[np.ndarray] = None,
            rng: Optional[np.random.Generator] = None) -> TrainHistory:
        """Train for ``epochs`` epochs, validating after each if data given."""
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if x.shape[0] != labels.shape[0]:
            raise ValueError("x and labels disagree on batch dimension")
        rng = rng if rng is not None else np.random.default_rng(0)
        history = TrainHistory()
        for _ in range(epochs):
            self.train_epoch(x, labels, batch_size, rng, history)
            if x_val is not None and labels_val is not None:
                val_loss, val_acc = self.evaluate(x_val, labels_val,
                                                  batch_size)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
        self.model.set_training(False)
        return history

    def evaluate(self, x: np.ndarray, labels: np.ndarray,
                 batch_size: int = 256) -> tuple:
        """``(loss, accuracy)`` on a labelled set, in inference mode."""
        logits = self.model.predict(x, batch_size=batch_size)
        loss_fn = SoftmaxCrossEntropy()
        return loss_fn.forward(logits, labels), accuracy(logits, labels)
