"""Weight initialization schemes.

All initializers take an ``rng`` so that candidate training inside a NAS run
is reproducible given the search seed.
"""

from __future__ import annotations

import numpy as np

from .module import FLOAT


def he_normal(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal init — appropriate for ReLU-family activations."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(FLOAT)


def glorot_uniform(shape: tuple, fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) uniform init — used for the final classifier layer."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(FLOAT)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=FLOAT)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape, dtype=FLOAT)
