"""Base classes for the numpy neural-network framework.

The framework follows a layer-object design: every layer is a
:class:`Module` with an explicit ``forward``/``backward`` pair and a list of
:class:`Parameter` objects.  There is no autograd tape; each module caches
whatever it needs during ``forward`` and consumes the cache in ``backward``.
This keeps the framework small, debuggable and fast enough to train the tiny
MobileNetV2-style candidates that BOMP-NAS samples.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

FLOAT = np.float32


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes:
        data: the parameter values (float32 ndarray).
        grad: gradient of the loss w.r.t. ``data``; ``None`` until the first
            backward pass, reset via :meth:`zero_grad`.
        name: human-readable identifier used in serialization and debugging.
        trainable: frozen parameters are skipped by optimizers.
    """

    def __init__(self, data: np.ndarray, name: str = "param",
                 trainable: bool = True) -> None:
        self.data = np.asarray(data, dtype=FLOAT)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.trainable = trainable

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient (creating it if absent)."""
        grad = grad.astype(FLOAT, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and composite blocks.

    Subclasses implement :meth:`forward` and :meth:`backward`.  ``backward``
    receives the gradient of the loss w.r.t. the module output and must
    return the gradient w.r.t. the module input, accumulating parameter
    gradients along the way.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.training = False

    # -- graph traversal -------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its submodules, in order."""
        params: List[Parameter] = []
        for attr in self.__dict__.values():
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Module):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule, depth-first."""
        yield self
        for attr in self.__dict__.values():
            if isinstance(attr, Module):
                yield from attr.modules()
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        yield from item.modules()

    def set_training(self, training: bool) -> None:
        for module in self.modules():
            module.training = training

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        return sum(p.size for p in self.parameters()
                   if p.trainable or not trainable_only)

    # -- computation ------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
