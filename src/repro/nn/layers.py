"""Non-convolutional layers: dense, batch norm, activations, pooling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs import profile as prof
from .initializers import glorot_uniform, ones, zeros
from .module import FLOAT, Module, Parameter


class Dense(Module):
    """Fully-connected layer over ``(N, D)`` input, with quantizer hooks."""

    weight_channel_axis = 1

    def __init__(self, in_features: int, out_features: int,
                 use_bias: bool = True,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "dense") -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform((in_features, out_features), in_features,
                           out_features, rng),
            name=f"{name}.weight")
        self.bias: Optional[Parameter] = None
        if use_bias:
            self.bias = Parameter(zeros((out_features,)), name=f"{name}.bias")
        self.weight_quantizer = None
        self.input_quantizer = None
        self._cache = None

    # aliases for uniform size/MACs accounting with conv layers
    @property
    def in_channels(self) -> int:
        return self.in_features

    @property
    def out_channels(self) -> int:
        return self.out_features

    def macs(self) -> int:
        return self.in_features * self.out_features

    def _effective_weight(self) -> np.ndarray:
        if self.weight_quantizer is not None:
            return self.weight_quantizer.forward(self.weight.data)
        return self.weight.data

    def forward(self, x: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.dense.fwd"):
            if x.ndim != 2 or x.shape[1] != self.in_features:
                raise ValueError(
                    f"{self.name}: expected (N, {self.in_features}), "
                    f"got {x.shape}")
            if self.input_quantizer is not None:
                x = self.input_quantizer.forward(x)
            weight = self._effective_weight()
            out = x @ weight
            if self.bias is not None:
                out = out + self.bias.data
            self._cache = (x, weight)
            return out.astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.dense.bwd"):
            if self._cache is None:
                raise RuntimeError(
                    f"{self.name}: backward called before forward")
            x, weight = self._cache
            grad = grad.astype(FLOAT, copy=False)
            dweight = x.T @ grad
            if self.weight_quantizer is not None:
                dweight = self.weight_quantizer.backward(dweight)
            self.weight.accumulate_grad(dweight)
            if self.bias is not None:
                self.bias.accumulate_grad(grad.sum(axis=0))
            dx = grad @ weight.T
            if self.input_quantizer is not None:
                dx = self.input_quantizer.backward(dx)
            self._cache = None
            return dx

    def __repr__(self) -> str:
        return f"Dense({self.in_features}->{self.out_features})"


class BatchNorm2D(Module):
    """Batch normalization over the channel axis of NHWC input.

    Uses batch statistics while ``training`` and exponential running
    statistics at inference, like Keras' ``BatchNormalization``.
    """

    def __init__(self, channels: int, momentum: float = 0.9,
                 eps: float = 1e-3, name: str = "bn") -> None:
        super().__init__(name)
        if channels <= 0:
            raise ValueError("channels must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(ones((channels,)), name=f"{name}.gamma")
        self.beta = Parameter(zeros((channels,)), name=f"{name}.beta")
        self.running_mean = np.zeros((channels,), dtype=FLOAT)
        self.running_var = np.ones((channels,), dtype=FLOAT)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.bn.fwd"):
            if x.shape[-1] != self.channels:
                raise ValueError(
                    f"{self.name}: expected {self.channels} channels, "
                    f"got {x.shape[-1]}")
            axes = tuple(range(x.ndim - 1))
            if self.training:
                mean = x.mean(axis=axes)
                var = x.var(axis=axes)
                count = int(np.prod([x.shape[a] for a in axes]))
                self.running_mean = (
                    self.momentum * self.running_mean
                    + (1 - self.momentum) * mean).astype(FLOAT)
                # unbiased variance for the running estimate, as Keras does
                unbiased = var * count / max(count - 1, 1)
                self.running_var = (
                    self.momentum * self.running_var
                    + (1 - self.momentum) * unbiased).astype(FLOAT)
            else:
                mean = self.running_mean
                var = self.running_var
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean) * inv_std
            out = self.gamma.data * x_hat + self.beta.data
            self._cache = (x_hat, inv_std, axes, x.shape)
            return out.astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.bn.bwd"):
            if self._cache is None:
                raise RuntimeError(
                    f"{self.name}: backward called before forward")
            x_hat, inv_std, axes, shape = self._cache
            grad = grad.astype(FLOAT, copy=False)
            self.gamma.accumulate_grad((grad * x_hat).sum(axis=axes))
            self.beta.accumulate_grad(grad.sum(axis=axes))
            if not self.training:
                # inference: mean/var are constants
                dx = grad * self.gamma.data * inv_std
                self._cache = None
                return dx.astype(FLOAT, copy=False)
            count = int(np.prod([shape[a] for a in axes]))
            dx_hat = grad * self.gamma.data
            dx = (inv_std / count) * (
                count * dx_hat
                - dx_hat.sum(axis=axes)
                - x_hat * (dx_hat * x_hat).sum(axis=axes))
            self._cache = None
            return dx.astype(FLOAT, copy=False)

    def fold_scale_shift(self) -> tuple:
        """Equivalent per-channel ``(scale, shift)`` for BN folding.

        At inference BN computes ``y = scale * x + shift`` with constants
        derived from running statistics; deployment folds these into the
        preceding convolution, which is why BN contributes no disk size in
        :mod:`repro.quant.size`.
        """
        scale = self.gamma.data / np.sqrt(self.running_var + self.eps)
        shift = self.beta.data - scale * self.running_mean
        return scale, shift

    def __repr__(self) -> str:
        return f"BatchNorm2D(c={self.channels})"


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self, name: str = "relu") -> None:
        super().__init__(name)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0).astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        dx = np.where(self._mask, grad, 0).astype(FLOAT, copy=False)
        self._mask = None
        return dx


class ReLU6(Module):
    """ReLU clipped at 6, the MobileNetV2 activation."""

    def __init__(self, name: str = "relu6") -> None:
        super().__init__(name)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0) & (x < 6)
        return np.clip(x, 0.0, 6.0).astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        dx = np.where(self._mask, grad, 0).astype(FLOAT, copy=False)
        self._mask = None
        return dx


class GlobalAvgPool2D(Module):
    """Global average pooling: ``(N, H, W, C) -> (N, C)``."""

    def __init__(self, name: str = "gap") -> None:
        super().__init__(name)
        self._in_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.pool.fwd"):
            if x.ndim != 4:
                raise ValueError(f"expected NHWC input, got shape {x.shape}")
            self._in_shape = x.shape
            return x.mean(axis=(1, 2)).astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.pool.bwd"):
            if self._in_shape is None:
                raise RuntimeError(
                    f"{self.name}: backward called before forward")
            n, h, w, c = self._in_shape
            dx = np.broadcast_to(grad[:, None, None, :] / (h * w),
                                 self._in_shape).astype(FLOAT)
            self._in_shape = None
            return dx


class Flatten(Module):
    """Flatten all non-batch axes: ``(N, ...) -> (N, D)``."""

    def __init__(self, name: str = "flatten") -> None:
        super().__init__(name)
        self._in_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        dx = grad.reshape(self._in_shape)
        self._in_shape = None
        return dx
