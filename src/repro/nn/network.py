"""Sequential network container.

MobileNetV2-style models are expressed as a flat sequence of modules; the
residual connections live *inside* :class:`repro.nn.blocks.InvertedBottleneck`,
so a sequential container is sufficient for the whole search space.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .module import Module


class Sequential(Module):
    """Runs a list of modules in order; backward runs them in reverse."""

    def __init__(self, modules: Sequence[Module], name: str = "net") -> None:
        super().__init__(name)
        if not modules:
            raise ValueError("Sequential needs at least one module")
        self.layers: List[Module] = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference-mode forward over a full array, in batches."""
        self.set_training(False)
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start:start + batch_size]))
        return np.concatenate(outputs, axis=0)

    def summary(self) -> str:
        """Human-readable layer listing with parameter counts."""
        lines = [f"Sequential {self.name!r}:"]
        for i, layer in enumerate(self.layers):
            n_params = layer.num_parameters()
            lines.append(f"  [{i:2d}] {layer!r}  params={n_params}")
        lines.append(f"  total params: {self.num_parameters()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __repr__(self) -> str:
        return f"Sequential(name={self.name!r}, n_layers={len(self.layers)})"
