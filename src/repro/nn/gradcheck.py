"""Numerical gradient checking utilities (used by the test suite)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from .module import Module


def numerical_gradient(fn: Callable[[], float], array: np.ndarray,
                       eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array``.

    ``array`` is perturbed in place element by element; ``fn`` must read it
    on every call (e.g. a closure over a module whose parameter it is).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_module_gradients(module: Module, x: np.ndarray,
                           eps: float = 1e-3, atol: float = 1e-2,
                           rtol: float = 5e-2) -> None:
    """Assert analytic parameter and input gradients match finite differences.

    Uses ``loss = sum(module(x))`` so the upstream gradient is all ones.
    Raises ``AssertionError`` with the offending parameter name on mismatch.
    """
    module.set_training(True)

    def loss() -> float:
        return float(module.forward(x).astype(np.float64).sum())

    out = module.forward(x)
    module.zero_grad()
    dx = module.backward(np.ones_like(out))

    for param in module.parameters():
        numeric = numerical_gradient(loss, param.data, eps)
        analytic = param.grad
        if analytic is None:
            raise AssertionError(f"{param.name}: no gradient accumulated")
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"{param.name}: gradient mismatch (max abs err {worst:.4g})")

    numeric_dx = numerical_gradient(loss, x, eps)
    if not np.allclose(dx, numeric_dx, atol=atol, rtol=rtol):
        worst = np.abs(dx - numeric_dx).max()
        raise AssertionError(
            f"input gradient mismatch (max abs err {worst:.4g})")
