"""Weight (de)serialization and weight-vector snapshots.

Weights are stored positionally (``param_0``, ``param_1``, ...) plus batch
norm running statistics, so a model rebuilt from the same genome can reload
a snapshot exactly.  Snapshots are also used by the NAS loop to restore the
full-precision weights between quantization policies when several policies
are evaluated per trial (the paper's future-work extension).

Quantized models carry one extra piece of non-replayable state: the frozen
calibration range of each activation quantizer.  Snapshots store those as
``aq_{i}_range`` (in ``model.modules()`` order), so a rebuilt model with
the same policy re-applied reloads to bit-identical forwards without
re-calibration.  Weight quantizers are stateless beyond the policy (scales
are recomputed from the weights every forward) and need nothing here.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .layers import BatchNorm2D
from .module import Module


def _activation_quantizers(model: Module) -> List:
    """Attached activation quantizers, in ``model.modules()`` order.

    Duck-typed on the ``input_quantizer`` attribute so this module never
    imports :mod:`repro.quant` (which imports :mod:`repro.nn`).
    """
    quantizers = []
    for module in model.modules():
        quantizer = getattr(module, "input_quantizer", None)
        if quantizer is not None:
            quantizers.append(quantizer)
    return quantizers


def state_dict(model: Module) -> Dict[str, np.ndarray]:
    """Snapshot of parameters, batch-norm stats, and frozen quantizer ranges.

    Raises ``ValueError`` if an attached activation quantizer is still
    calibrating: an unfrozen range cannot be serialized, and silently
    skipping it would make the snapshot's quantizer count disagree with
    the model's.
    """
    state: Dict[str, np.ndarray] = {}
    for i, param in enumerate(model.parameters()):
        state[f"param_{i}"] = param.data.copy()
    bn_index = 0
    for module in model.modules():
        if isinstance(module, BatchNorm2D):
            state[f"bn_{bn_index}_mean"] = module.running_mean.copy()
            state[f"bn_{bn_index}_var"] = module.running_var.copy()
            bn_index += 1
    for i, quantizer in enumerate(_activation_quantizers(model)):
        if quantizer.calibrating:
            raise ValueError(
                f"activation quantizer {i} is still calibrating; freeze "
                "quantizers (repro.quant.calibrate) before snapshotting")
        lo, hi = quantizer._range
        state[f"aq_{i}_range"] = np.array([lo, hi], dtype=np.float64)
    return state


def load_state_dict(model: Module, state: Dict[str, np.ndarray]) -> None:
    """Restore a snapshot produced by :func:`state_dict`.

    Raises ``ValueError`` on any shape or count mismatch so that loading a
    snapshot into a model built from a different genome fails loudly.
    """
    params = model.parameters()
    expected = {f"param_{i}" for i in range(len(params))}
    missing = expected - set(state)
    if missing:
        raise ValueError(f"snapshot is missing parameters: {sorted(missing)}")
    for i, param in enumerate(params):
        data = state[f"param_{i}"]
        if data.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for param_{i}: snapshot {data.shape} vs "
                f"model {param.data.shape}")
        param.data = data.copy()
    bn_modules: List[BatchNorm2D] = [
        m for m in model.modules() if isinstance(m, BatchNorm2D)]
    for i, module in enumerate(bn_modules):
        mean_key, var_key = f"bn_{i}_mean", f"bn_{i}_var"
        if mean_key not in state or var_key not in state:
            raise ValueError(f"snapshot is missing running stats for BN {i}")
        if state[mean_key].shape != module.running_mean.shape:
            raise ValueError(f"shape mismatch for BN {i} running stats")
        module.running_mean = state[mean_key].copy()
        module.running_var = state[var_key].copy()
    aq_keys = sorted(k for k in state if k.startswith("aq_"))
    if not aq_keys:
        return  # full-precision snapshot; leave any quantizers untouched
    quantizers = _activation_quantizers(model)
    expected_aq = {f"aq_{i}_range" for i in range(len(quantizers))}
    if set(aq_keys) != expected_aq:
        raise ValueError(
            f"snapshot has quantizer ranges {aq_keys} but the model has "
            f"{len(quantizers)} activation quantizers; apply the same "
            "quantization policy before loading")
    for i, quantizer in enumerate(quantizers):
        lo, hi = state[f"aq_{i}_range"]
        quantizer._range = (float(lo), float(hi))
        quantizer.calibrating = False


def save_weights(model: Module, path: str) -> None:
    """Save a model snapshot to an ``.npz`` file."""
    np.savez(path, **state_dict(model))


def load_weights(model: Module, path: str) -> None:
    """Load an ``.npz`` snapshot saved by :func:`save_weights`."""
    with np.load(path) as data:
        load_state_dict(model, dict(data))
