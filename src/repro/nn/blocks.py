"""Composite MobileNetV2 building blocks.

The inverted bottleneck (Sandler et al., 2018) is the unit the BOMP-NAS
search space is built from: an optional 1x1 expansion convolution, a
depthwise convolution, and a linear 1x1 projection, with a residual add when
input and output shapes match.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .conv import Conv2D, DepthwiseConv2D
from .layers import BatchNorm2D, ReLU6
from .module import Module


class ConvBNReLU(Module):
    """Convolution → batch norm → ReLU6, the standard MobileNet triplet."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, rng: Optional[np.random.Generator] = None,
                 name: str = "convbnrelu") -> None:
        super().__init__(name)
        self.conv = Conv2D(in_channels, out_channels, kernel, stride,
                           rng=rng, name=f"{name}.conv")
        self.bn = BatchNorm2D(out_channels, name=f"{name}.bn")
        self.act = ReLU6(name=f"{name}.relu6")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.act.forward(self.bn.forward(self.conv.forward(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.conv.backward(self.bn.backward(self.act.backward(grad)))


class InvertedBottleneck(Module):
    """MobileNetV2 inverted residual block.

    Structure (expansion factor ``e``):

    - ``e > 1``: 1x1 expand conv (``c_in -> e*c_in``) + BN + ReLU6
    - depthwise ``k x k`` conv (stride ``s``) + BN + ReLU6
    - 1x1 linear projection (``-> c_out``) + BN
    - residual add iff ``stride == 1`` and ``c_in == c_out``

    The searchable kernel size applies to the depthwise convolution.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 expansion: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "ib") -> None:
        super().__init__(name)
        if expansion < 1:
            raise ValueError(f"expansion factor must be >= 1, got {expansion}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.expansion = expansion
        hidden = in_channels * expansion
        self.hidden_channels = hidden

        self.expand: Optional[ConvBNReLU] = None
        if expansion > 1:
            self.expand = ConvBNReLU(in_channels, hidden, kernel=1,
                                     rng=rng, name=f"{name}.expand")
        self.depthwise = DepthwiseConv2D(hidden, kernel, stride,
                                         rng=rng, name=f"{name}.dw")
        self.dw_bn = BatchNorm2D(hidden, name=f"{name}.dw_bn")
        self.dw_act = ReLU6(name=f"{name}.dw_relu6")
        self.project = Conv2D(hidden, out_channels, kernel=1,
                              rng=rng, name=f"{name}.project")
        self.project_bn = BatchNorm2D(out_channels, name=f"{name}.proj_bn")
        self.use_residual = stride == 1 and in_channels == out_channels

    def _residual_input(self, x: np.ndarray) -> np.ndarray:
        """The value the skip connection adds.

        Once the block's first convolution carries a frozen input
        quantizer, the deployed integer engine can only read the
        grid-clamped code of ``x`` — so the fake-quant reference must add
        that same value, not the raw float.  Outlier activations beyond
        the calibrated range would otherwise make the float residual
        diverge unboundedly from any integer implementation.
        """
        first = self.expand.conv if self.expand is not None else \
            self.depthwise
        quantizer = first.input_quantizer
        if quantizer is None or getattr(quantizer, "calibrating", True):
            return x
        return quantizer.fake_quant(x)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        if self.expand is not None:
            out = self.expand.forward(out)
        out = self.dw_act.forward(self.dw_bn.forward(
            self.depthwise.forward(out)))
        out = self.project_bn.forward(self.project.forward(out))
        if self.use_residual:
            out = out + self._residual_input(x)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        dmain = self.project.backward(self.project_bn.backward(grad))
        dmain = self.depthwise.backward(self.dw_bn.backward(
            self.dw_act.backward(dmain)))
        if self.expand is not None:
            dmain = self.expand.backward(dmain)
        if self.use_residual:
            dmain = dmain + grad
        return dmain

    def conv_layers(self) -> List[Module]:
        """The quantizable convolutions of this block, in execution order."""
        layers: List[Module] = []
        if self.expand is not None:
            layers.append(self.expand.conv)
        layers.extend([self.depthwise, self.project])
        return layers

    def __repr__(self) -> str:
        return (f"InvertedBottleneck({self.in_channels}->{self.out_channels}, "
                f"k={self.depthwise.kernel}, e={self.expansion}, "
                f"s={self.stride}, residual={self.use_residual})")
