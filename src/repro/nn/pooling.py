"""Additional layers: spatial pooling and dropout.

Not used by the MobileNetV2 search space itself (which downsamples with
strided convolutions and pools only globally), but part of the framework's
public surface so downstream users can build other search spaces on it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs import profile as prof
from . import functional as F
from .module import FLOAT, Module


class AvgPool2D(Module):
    """Non-overlapping average pooling over NHWC input.

    ``pool`` divides the spatial dimensions; inputs must be divisible by
    it (explicit error otherwise — silent cropping hides bugs).
    """

    def __init__(self, pool: int = 2, name: str = "avgpool") -> None:
        super().__init__(name)
        if pool < 1:
            raise ValueError("pool must be >= 1")
        self.pool = pool
        self._in_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.pool.fwd"):
            if x.ndim != 4:
                raise ValueError(f"expected NHWC input, got shape {x.shape}")
            n, h, w, c = x.shape
            p = self.pool
            if h % p or w % p:
                raise ValueError(
                    f"{self.name}: input {h}x{w} not divisible by pool {p}")
            self._in_shape = x.shape
            return x.reshape(n, h // p, p, w // p, p, c).mean(
                axis=(2, 4)).astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.pool.bwd"):
            if self._in_shape is None:
                raise RuntimeError(
                    f"{self.name}: backward called before forward")
            n, h, w, c = self._in_shape
            p = self.pool
            dx = np.repeat(np.repeat(grad, p, axis=1), p, axis=2) / (p * p)
            self._in_shape = None
            return dx.astype(FLOAT, copy=False)


class MaxPool2D(Module):
    """Non-overlapping max pooling over NHWC input."""

    def __init__(self, pool: int = 2, name: str = "maxpool") -> None:
        super().__init__(name)
        if pool < 1:
            raise ValueError("pool must be >= 1")
        self.pool = pool
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.pool.fwd"):
            if x.ndim != 4:
                raise ValueError(f"expected NHWC input, got shape {x.shape}")
            n, h, w, c = x.shape
            p = self.pool
            if h % p or w % p:
                raise ValueError(
                    f"{self.name}: input {h}x{w} not divisible by pool {p}")
            windows = x.reshape(n, h // p, p, w // p, p, c)
            out = windows.max(axis=(2, 4))
            # mask of argmax positions for the backward routing
            mask = windows == out[:, :, None, :, None, :]
            self._cache = (mask, x.shape)
            return out.astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.pool.bwd"):
            if self._cache is None:
                raise RuntimeError(
                    f"{self.name}: backward called before forward")
            mask, shape = self._cache
            n, h, w, c = shape
            p = self.pool
            # distribute gradient over (possibly tied) max positions
            counts = mask.sum(axis=(2, 4), keepdims=True)
            dgrid = mask / counts * grad[:, :, None, :, None, :]
            self._cache = None
            return dgrid.reshape(shape).astype(FLOAT, copy=False)


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, rate: float = 0.5, seed: int = 0,
                 name: str = "dropout") -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(FLOAT) / keep
        return (x * self._mask).astype(FLOAT, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        out = (grad * self._mask).astype(FLOAT, copy=False)
        self._mask = None
        return out
