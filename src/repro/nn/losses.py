"""Loss functions and classification metrics."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .module import FLOAT


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax cross-entropy with integer labels and optional label smoothing.

    ``forward`` returns the mean loss; ``backward`` returns the gradient of
    the mean loss w.r.t. the logits (already divided by the batch size).
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("batch size mismatch between logits and labels")
        n, n_classes = logits.shape
        probs = softmax(logits.astype(np.float64))
        targets = np.full((n, n_classes),
                          self.label_smoothing / n_classes, dtype=np.float64)
        targets[np.arange(n), labels] += 1.0 - self.label_smoothing
        log_probs = np.log(np.clip(probs, 1e-12, None))
        loss = -(targets * log_probs).sum(axis=1).mean()
        self._cache = (probs, targets, n)
        return float(loss)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, targets, n = self._cache
        grad = (probs - targets) / n
        self._cache = None
        return grad.astype(FLOAT)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy as a fraction in [0, 1]."""
    if logits.shape[0] == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = logits.argmax(axis=-1)
    return float((predictions == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Top-k classification accuracy as a fraction in [0, 1]."""
    if k <= 0:
        raise ValueError("k must be positive")
    if logits.shape[0] == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    k = min(k, logits.shape[1])
    top_k = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def evaluate_classifier(model, x: np.ndarray, labels: np.ndarray,
                        batch_size: int = 256) -> Tuple[float, float]:
    """Evaluate ``(loss, accuracy)`` of a model on a labelled set."""
    logits = model.predict(x, batch_size=batch_size)
    loss_fn = SoftmaxCrossEntropy()
    loss = loss_fn.forward(logits, labels)
    return loss, accuracy(logits, labels)
