"""Stateless tensor helpers shared by the convolution layers.

Convolutions use the patch-extraction ("im2col") formulation: sliding
windows are materialized with :func:`numpy.lib.stride_tricks.sliding_window_view`
and contracted against the kernel with :func:`numpy.einsum`.  The data layout
is NHWC throughout the framework.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .module import FLOAT


def same_padding(in_size: int, kernel: int, stride: int) -> Tuple[int, int]:
    """TensorFlow-style SAME padding amounts ``(before, after)`` for one axis.

    Output size is ``ceil(in_size / stride)``; when the total padding is odd
    the extra pixel goes after (bottom/right), matching TF/Keras.
    """
    if in_size <= 0 or kernel <= 0 or stride <= 0:
        raise ValueError("in_size, kernel and stride must be positive")
    out_size = -(-in_size // stride)
    total = max((out_size - 1) * stride + kernel - in_size, 0)
    before = total // 2
    return before, total - before


def conv_output_size(in_size: int, kernel: int, stride: int,
                     padding: str) -> int:
    """Spatial output size of a convolution along one axis."""
    if padding == "same":
        return -(-in_size // stride)
    if padding == "valid":
        if in_size < kernel:
            raise ValueError(
                f"valid conv needs input >= kernel ({in_size} < {kernel})")
        return (in_size - kernel) // stride + 1
    raise ValueError(f"unknown padding mode {padding!r}")


def pad_input(x: np.ndarray, kernel: int, stride: int,
              padding: str) -> Tuple[np.ndarray, Tuple[int, int], Tuple[int, int]]:
    """Zero-pad an NHWC batch for a square-kernel convolution.

    Returns the padded tensor and the (before, after) padding used on the
    height and width axes so the backward pass can crop its result.
    """
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    if padding == "valid":
        return x, (0, 0), (0, 0)
    if padding != "same":
        raise ValueError(f"unknown padding mode {padding!r}")
    pad_h = same_padding(x.shape[1], kernel, stride)
    pad_w = same_padding(x.shape[2], kernel, stride)
    if pad_h == (0, 0) and pad_w == (0, 0):
        return x, pad_h, pad_w
    padded = np.pad(x, ((0, 0), pad_h, pad_w, (0, 0)))
    return padded, pad_h, pad_w


def extract_patches(padded: np.ndarray, kernel: int,
                    stride: int) -> np.ndarray:
    """Sliding ``kernel x kernel`` patches of an NHWC tensor.

    Returns a view (no copy) of shape ``(N, Ho, Wo, C, kh, kw)`` where
    ``Ho``/``Wo`` already account for the stride.
    """
    windows = sliding_window_view(padded, (kernel, kernel), axis=(1, 2))
    return windows[:, ::stride, ::stride]


def scatter_patches(dpatches: np.ndarray, padded_shape: tuple,
                    kernel: int, stride: int) -> np.ndarray:
    """Inverse of :func:`extract_patches` for the backward pass.

    Scatter-adds patch gradients of shape ``(N, Ho, Wo, C, kh, kw)`` back
    into a zero tensor of ``padded_shape`` (the padded input shape).
    """
    dx = np.zeros(padded_shape, dtype=FLOAT)
    n_out_h, n_out_w = dpatches.shape[1], dpatches.shape[2]
    span_h = (n_out_h - 1) * stride + 1
    span_w = (n_out_w - 1) * stride + 1
    for i in range(kernel):
        for j in range(kernel):
            dx[:, i:i + span_h:stride, j:j + span_w:stride, :] += \
                dpatches[:, :, :, :, i, j]
    return dx


def crop_padding(dx_padded: np.ndarray, pad_h: Tuple[int, int],
                 pad_w: Tuple[int, int]) -> np.ndarray:
    """Remove the padding applied by :func:`pad_input` from a gradient."""
    h_end = dx_padded.shape[1] - pad_h[1]
    w_end = dx_padded.shape[2] - pad_w[1]
    return dx_padded[:, pad_h[0]:h_end, pad_w[0]:w_end, :]
