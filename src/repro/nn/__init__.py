"""A small numpy neural-network framework.

Provides everything BOMP-NAS needs to *actually train* its candidate
networks: convolutions (standard and depthwise), batch norm, ReLU6,
inverted-bottleneck blocks, losses, optimizers, a trainer, serialization
and gradient checking.  Data layout is NHWC; all math is float32.
"""

from .blocks import ConvBNReLU, InvertedBottleneck
from .conv import Conv2D, DepthwiseConv2D
from .gradcheck import check_module_gradients, numerical_gradient
from .layers import (BatchNorm2D, Dense, Flatten, GlobalAvgPool2D, ReLU,
                     ReLU6)
from .losses import (SoftmaxCrossEntropy, accuracy, evaluate_classifier,
                     softmax, top_k_accuracy)
from .module import FLOAT, Module, Parameter
from .network import Sequential
from .optim import (SGD, Adam, ConstantLR, CosineDecayLR, LRSchedule,
                    Optimizer, StepDecayLR, clip_gradients)
from .pooling import AvgPool2D, Dropout, MaxPool2D
from .serialization import (load_state_dict, load_weights, save_weights,
                            state_dict)
from .trainer import Trainer, TrainHistory

__all__ = [
    "FLOAT", "Module", "Parameter",
    "Conv2D", "DepthwiseConv2D", "Dense", "BatchNorm2D",
    "ReLU", "ReLU6", "GlobalAvgPool2D", "Flatten",
    "AvgPool2D", "MaxPool2D", "Dropout",
    "ConvBNReLU", "InvertedBottleneck", "Sequential",
    "SoftmaxCrossEntropy", "softmax", "accuracy", "top_k_accuracy",
    "evaluate_classifier",
    "Optimizer", "SGD", "Adam",
    "LRSchedule", "ConstantLR", "CosineDecayLR", "StepDecayLR",
    "clip_gradients",
    "Trainer", "TrainHistory",
    "state_dict", "load_state_dict", "save_weights", "load_weights",
    "check_module_gradients", "numerical_gradient",
]
