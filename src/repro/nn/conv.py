"""Convolution layers (standard and depthwise) with quantization hooks.

Each layer owns an optional ``weight_quantizer`` and ``input_quantizer``
(attached by :mod:`repro.quant.apply`).  When present, the forward pass runs
on fake-quantized weights/inputs and the backward pass routes gradients
through the quantizer's straight-through estimator.  Layers with no
quantizers behave as plain float32 convolutions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..obs import profile as prof
from . import functional as F
from .initializers import he_normal, zeros
from .module import FLOAT, Module, Parameter

#: memoized np.einsum contraction paths per (subscripts, operand shapes).
#: The search evaluates thousands of forward/backward steps over a handful
#: of distinct layer shapes, so re-optimizing the contraction order on
#: every call is pure hot-path overhead.
_EINSUM_PATHS: Dict[Tuple, list] = {}


def _cached_einsum(subscripts: str, a: np.ndarray,
                   b: np.ndarray) -> np.ndarray:
    key = (subscripts, a.shape, b.shape)
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(subscripts, a, b, optimize="optimal")[0]
        _EINSUM_PATHS[key] = path
    return np.einsum(subscripts, a, b, optimize=path)


class Conv2D(Module):
    """2-D convolution over NHWC input.

    Weights have shape ``(kernel, kernel, in_channels, out_channels)``.
    ``use_bias`` defaults to False because in MobileNetV2 every convolution
    is followed by batch normalization.
    """

    #: axis of the weight tensor indexing output channels (for per-channel
    #: quantization).
    weight_channel_axis = 3

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, padding: str = "same",
                 use_bias: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "conv") -> None:
        super().__init__(name)
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel <= 0 or stride <= 0:
            raise ValueError("kernel and stride must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = kernel * kernel * in_channels
        self.weight = Parameter(
            he_normal((kernel, kernel, in_channels, out_channels), fan_in, rng),
            name=f"{name}.weight")
        self.bias: Optional[Parameter] = None
        if use_bias:
            self.bias = Parameter(zeros((out_channels,)), name=f"{name}.bias")
        self.weight_quantizer = None
        self.input_quantizer = None
        self._cache = None

    def macs(self, in_h: int, in_w: int) -> int:
        """Multiply-accumulate count for one input of spatial size HxW."""
        out_h = F.conv_output_size(in_h, self.kernel, self.stride, self.padding)
        out_w = F.conv_output_size(in_w, self.kernel, self.stride, self.padding)
        return (out_h * out_w * self.kernel * self.kernel
                * self.in_channels * self.out_channels)

    def _effective_weight(self) -> np.ndarray:
        if self.weight_quantizer is not None:
            return self.weight_quantizer.forward(self.weight.data)
        return self.weight.data

    def forward(self, x: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.conv2d.fwd"):
            if x.shape[3] != self.in_channels:
                raise ValueError(
                    f"{self.name}: expected {self.in_channels} input "
                    f"channels, got {x.shape[3]}")
            if self.input_quantizer is not None:
                x = self.input_quantizer.forward(x)
            weight = self._effective_weight()
            if self.kernel == 1:
                # 1x1 convolution: a per-pixel channel mix -> one BLAS
                # matmul.  This is the fast path for the expand/project/head
                # convs that dominate MobileNetV2 compute.
                with prof.kernel("nn.conv2d.matmul"):
                    strided = x[:, ::self.stride, ::self.stride, :]
                    n, ho, wo, c = strided.shape
                    out = strided.reshape(-1, c) @ weight.reshape(c, -1)
                    out = out.reshape(n, ho, wo, self.out_channels)
                # stride==1 backward never scatters into a zero tensor, so
                # there is no need to keep the input shape alive in the cache
                shape = None if self.stride == 1 else x.shape
                self._cache = ("1x1", strided, weight, shape)
            else:
                with prof.kernel("nn.conv2d.im2col"):
                    padded, pad_h, pad_w = F.pad_input(
                        x, self.kernel, self.stride, self.padding)
                    patches = F.extract_patches(padded, self.kernel,
                                                self.stride)
                with prof.kernel("nn.conv2d.matmul"):
                    out = _cached_einsum("nhwcij,ijcf->nhwf", patches, weight)
                self._cache = ("kxk", patches, padded.shape, pad_h, pad_w,
                               weight)
            out = out.astype(FLOAT, copy=False)
            if self.bias is not None:
                out = out + self.bias.data
            return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.conv2d.bwd"):
            if self._cache is None:
                raise RuntimeError(
                    f"{self.name}: backward called before forward")
            grad = grad.astype(FLOAT, copy=False)
            if self.bias is not None:
                self.bias.accumulate_grad(grad.sum(axis=(0, 1, 2)))
            if self._cache[0] == "1x1":
                dx = self._backward_1x1(grad)
            else:
                dx = self._backward_kxk(grad)
            if self.input_quantizer is not None:
                dx = self.input_quantizer.backward(dx)
            self._cache = None
            return dx

    def _backward_1x1(self, grad: np.ndarray) -> np.ndarray:
        _, strided, weight, x_shape = self._cache
        n, ho, wo, c = strided.shape
        grad_flat = grad.reshape(-1, self.out_channels)
        dweight = (strided.reshape(-1, c).T @ grad_flat).reshape(
            1, 1, c, self.out_channels)
        if self.weight_quantizer is not None:
            dweight = self.weight_quantizer.backward(dweight)
        self.weight.accumulate_grad(dweight)
        dx_strided = (grad_flat @ weight.reshape(c, -1).T).reshape(
            n, ho, wo, c)
        if self.stride == 1:
            return dx_strided.astype(FLOAT, copy=False)
        dx = np.zeros(x_shape, dtype=FLOAT)
        dx[:, ::self.stride, ::self.stride, :] = dx_strided
        return dx

    def _backward_kxk(self, grad: np.ndarray) -> np.ndarray:
        _, patches, padded_shape, pad_h, pad_w, weight = self._cache
        dweight = _cached_einsum("nhwcij,nhwf->ijcf", patches, grad)
        if self.weight_quantizer is not None:
            dweight = self.weight_quantizer.backward(dweight)
        self.weight.accumulate_grad(dweight)
        dpatches = _cached_einsum("nhwf,ijcf->nhwcij", grad, weight)
        dx_padded = F.scatter_patches(dpatches, padded_shape, self.kernel,
                                      self.stride)
        return F.crop_padding(dx_padded, pad_h, pad_w)

    def __repr__(self) -> str:
        return (f"Conv2D({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel}, s={self.stride}, pad={self.padding})")


class DepthwiseConv2D(Module):
    """Depthwise 2-D convolution (depth multiplier 1) over NHWC input.

    Weights have shape ``(kernel, kernel, channels)``; each input channel is
    convolved with its own filter.
    """

    weight_channel_axis = 2

    def __init__(self, channels: int, kernel: int, stride: int = 1,
                 padding: str = "same",
                 rng: Optional[np.random.Generator] = None,
                 name: str = "dwconv") -> None:
        super().__init__(name)
        if channels <= 0 or kernel <= 0 or stride <= 0:
            raise ValueError("channels, kernel and stride must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = kernel * kernel
        self.weight = Parameter(
            he_normal((kernel, kernel, channels), fan_in, rng),
            name=f"{name}.weight")
        self.weight_quantizer = None
        self.input_quantizer = None
        self._cache = None

    # alias so size accounting can treat both conv types uniformly
    @property
    def in_channels(self) -> int:
        return self.channels

    @property
    def out_channels(self) -> int:
        return self.channels

    def macs(self, in_h: int, in_w: int) -> int:
        out_h = F.conv_output_size(in_h, self.kernel, self.stride, self.padding)
        out_w = F.conv_output_size(in_w, self.kernel, self.stride, self.padding)
        return out_h * out_w * self.kernel * self.kernel * self.channels

    def _effective_weight(self) -> np.ndarray:
        if self.weight_quantizer is not None:
            return self.weight_quantizer.forward(self.weight.data)
        return self.weight.data

    def forward(self, x: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.dwconv.fwd"):
            if x.shape[3] != self.channels:
                raise ValueError(
                    f"{self.name}: expected {self.channels} channels, "
                    f"got {x.shape[3]}")
            if self.input_quantizer is not None:
                x = self.input_quantizer.forward(x)
            padded, pad_h, pad_w = F.pad_input(x, self.kernel, self.stride,
                                               self.padding)
            weight = self._effective_weight()
            # shift-and-add formulation: k^2 strided slices of the padded
            # input each scaled by one kernel tap.  Never materializes the
            # (N, Ho, Wo, C, k, k) patch tensor, which for wide CIFAR-100
            # candidates would be gigabytes.
            out_h = F.conv_output_size(x.shape[1], self.kernel, self.stride,
                                       self.padding)
            out_w = F.conv_output_size(x.shape[2], self.kernel, self.stride,
                                       self.padding)
            span_h = (out_h - 1) * self.stride + 1
            span_w = (out_w - 1) * self.stride + 1
            out = np.zeros((x.shape[0], out_h, out_w, self.channels),
                           dtype=FLOAT)
            for i in range(self.kernel):
                for j in range(self.kernel):
                    window = padded[:, i:i + span_h:self.stride,
                                    j:j + span_w:self.stride, :]
                    out += window * weight[i, j]
            self._cache = (padded, (span_h, span_w), pad_h, pad_w, weight)
            return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with prof.kernel("nn.dwconv.bwd"):
            if self._cache is None:
                raise RuntimeError(
                    f"{self.name}: backward called before forward")
            padded, (span_h, span_w), pad_h, pad_w, weight = self._cache
            grad = grad.astype(FLOAT, copy=False)
            dweight = np.zeros_like(self.weight.data)
            dx_padded = np.zeros(padded.shape, dtype=FLOAT)
            for i in range(self.kernel):
                for j in range(self.kernel):
                    window = padded[:, i:i + span_h:self.stride,
                                    j:j + span_w:self.stride, :]
                    dweight[i, j] = (window * grad).sum(axis=(0, 1, 2))
                    dx_padded[:, i:i + span_h:self.stride,
                              j:j + span_w:self.stride, :] += (grad
                                                               * weight[i, j])
            if self.weight_quantizer is not None:
                dweight = self.weight_quantizer.backward(dweight)
            self.weight.accumulate_grad(dweight)
            dx = F.crop_padding(dx_padded, pad_h, pad_w)
            if self.input_quantizer is not None:
                dx = self.input_quantizer.backward(dx)
            self._cache = None
            return dx

    def __repr__(self) -> str:
        return (f"DepthwiseConv2D(c={self.channels}, k={self.kernel}, "
                f"s={self.stride}, pad={self.padding})")
