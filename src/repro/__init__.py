"""BOMP-NAS: Bayesian Optimization Mixed Precision NAS (DATE 2023).

A from-scratch reproduction of van Son et al.'s quantization-aware neural
architecture search, including every substrate it depends on:

- :mod:`repro.nn` — a numpy CNN training framework (the TensorFlow stand-in)
- :mod:`repro.quant` — mixed-precision fake quantization, PTQ and QAFT
  (the QKeras stand-in)
- :mod:`repro.space` — the Table I MobileNetV2 search space
- :mod:`repro.bo` — GP surrogate + UCB Bayesian optimization (the
  AutoKeras stand-in)
- :mod:`repro.nas` — the BOMP-NAS loop, search modes and cost model
- :mod:`repro.baselines` — JASQ / muNAS / sequential comparators
- :mod:`repro.data` — synthetic CIFAR surrogates
- :mod:`repro.experiments` — regeneration of every paper figure and table

Quick start::

    from repro import BOMPNAS, SearchConfig, get_scale, synthetic_cifar10

    scale = get_scale("smoke")
    dataset = synthetic_cifar10(scale.n_train, scale.n_test,
                                image_size=scale.image_size)
    result = BOMPNAS(SearchConfig(scale=scale), dataset).run()
    print(result.summary())
"""

from .bo import ScalarizationConfig, pareto_front, scalarize
from .data import synthetic_cifar10, synthetic_cifar100
from .nas import (BOMPNAS, CostModel, SearchConfig, SearchResult, get_mode,
                  get_scale)
from .quant import QuantizationPolicy, model_size_kb
from .space import ArchGenome, MixedPrecisionGenome, SearchSpace, build_model

__version__ = "1.0.0"

__all__ = [
    "BOMPNAS", "SearchConfig", "SearchResult", "CostModel",
    "get_mode", "get_scale",
    "SearchSpace", "ArchGenome", "MixedPrecisionGenome", "build_model",
    "QuantizationPolicy", "model_size_kb",
    "ScalarizationConfig", "scalarize", "pareto_front",
    "synthetic_cifar10", "synthetic_cifar100",
    "__version__",
]
