"""Deterministic phase/kernel profiler layered on the span tracer.

The span tracer answers *where did the wall-clock go per phase*; this
module answers *which kernel burned it* — inclusive/exclusive wall time
and call counts per nn/infer kernel (conv im2col, matmul, BN, pooling,
dense, fake-quant, arena stage kinds), attributed to the pipeline phase
(train/ptq/qaft/eval/final_training) that was open when the kernel ran.

Pay-for-what-you-use, like the tracer: instrumented call sites go through
:func:`kernel`, which returns a shared no-op context manager unless a
:class:`KernelProfiler` has been activated (``BOMP_PROFILE=1``, the CLI
``--profile`` flag, or :func:`use_profiler` in tests).  The profiler only
reads clocks — never RNGs — so profiled runs are bit-identical to
unprofiled runs.

Two modes:

- ``"time"`` (``BOMP_PROFILE=1``): wall-time + call counts, < 3%% overhead
  on the smoke path;
- ``"alloc"`` (``BOMP_PROFILE=alloc``): additionally tracks tracemalloc
  peak/net bytes per phase and ndarray-constructor alloc counts per
  kernel.  Heavier (tracemalloc hooks every allocation); use it for
  targeted memory hunts, not routine runs.

Exclusive time uses the classic timer-stack subtraction: a frame's
exclusive cost is its duration minus the summed durations of its direct
children, so nested kernels (conv forward -> fake-quant) never
double-count.  Phase attribution is driven by the tracer — ``phase``-kind
spans push/pop the profiler's phase stack (see
:meth:`repro.obs.trace.Span.__enter__`).

Workers profile with their own :class:`KernelProfiler` and flush the
aggregate into their private trace recorder (:func:`KernelProfiler.
flush_to`); the resulting ``"profile"`` events ship through
``TrialOutcome.events`` and merge like any other event.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: environment variable enabling profiling ("1"/"time" or "alloc")
PROFILE_ENV = "BOMP_PROFILE"

#: supported profiling modes
MODES = ("time", "alloc")

#: numpy constructors counted as explicit ndarray allocations (alloc mode);
#: the same set the arena-executor alloc tests patch.
NDARRAY_CONSTRUCTORS = ("empty", "zeros", "ones", "full",
                        "empty_like", "zeros_like", "ones_like", "full_like")


def mode_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Profiling mode requested by ``BOMP_PROFILE`` (``None`` = off)."""
    source = environ if environ is not None else os.environ
    value = source.get(PROFILE_ENV, "").strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return None
    if value in ("alloc", "allocs", "mem", "memory", "2"):
        return "alloc"
    return "time"


class _KernelStat:
    """Aggregate for one (phase, kernel) pair."""

    __slots__ = ("calls", "incl_s", "excl_s", "allocs")

    def __init__(self) -> None:
        self.calls = 0
        self.incl_s = 0.0
        self.excl_s = 0.0
        self.allocs = 0


class _PhaseStat:
    """Aggregate for one phase as seen by the profiler."""

    __slots__ = ("calls", "wall_s", "allocs", "peak_bytes", "net_bytes")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0
        self.allocs = 0
        self.peak_bytes = 0
        self.net_bytes = 0


class _KernelTimer:
    """Context manager timing one kernel invocation (profiler on)."""

    __slots__ = ("profiler", "name", "_t0", "_a0", "child_s", "child_allocs")

    def __init__(self, profiler: "KernelProfiler", name: str) -> None:
        self.profiler = profiler
        self.name = name

    def __enter__(self) -> "_KernelTimer":
        self.child_s = 0.0
        self.child_allocs = 0
        self.profiler._kstack.append(self)
        self._a0 = self.profiler.alloc_count
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        dur = time.perf_counter() - self._t0
        profiler = self.profiler
        allocs = profiler.alloc_count - self._a0
        stack = profiler._kstack
        while stack and stack[-1] is not self:
            stack.pop()  # tolerate out-of-order exits, like the tracer
        if stack:
            stack.pop()
        if stack:
            parent = stack[-1]
            parent.child_s += dur
            parent.child_allocs += allocs
        stat = profiler._kernel_stat(self.name)
        stat.calls += 1
        stat.incl_s += dur
        stat.excl_s += dur - self.child_s
        stat.allocs += allocs - self.child_allocs


class _NullTimer:
    """The shared do-nothing timer returned when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_TIMER = _NullTimer()


class KernelProfiler:
    """Accumulates per-(phase, kernel) wall time, calls, and allocations.

    Create one per scope you want attributed (one per trial in workers,
    one for the parent process), activate it with :func:`activate` /
    :func:`use_profiler`, and :meth:`flush_to` a recorder when done.
    """

    def __init__(self, mode: str = "time") -> None:
        if mode not in MODES:
            raise ValueError(f"unknown profile mode {mode!r}; "
                             f"expected one of {MODES}")
        self.mode = mode
        self.kernels: Dict[Tuple[str, str], _KernelStat] = {}
        self.phases: Dict[str, _PhaseStat] = {}
        self.alloc_count = 0  # bumped by the constructor wrappers
        self._kstack: List[_KernelTimer] = []
        # each entry: [name, t0, alloc0, tracemalloc_cur0 or None]
        self._pstack: List[list] = []

    # -- collection --------------------------------------------------------
    def timer(self, name: str) -> _KernelTimer:
        return _KernelTimer(self, name)

    def current_phase(self) -> str:
        return self._pstack[-1][0] if self._pstack else ""

    def _kernel_stat(self, name: str) -> _KernelStat:
        key = (self.current_phase(), name)
        stat = self.kernels.get(key)
        if stat is None:
            stat = self.kernels[key] = _KernelStat()
        return stat

    def phase_started(self, name: str) -> None:
        """Called by the tracer when a ``phase``-kind span opens."""
        mem0 = None
        if self.mode == "alloc" and tracemalloc.is_tracing():
            mem0 = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        self._pstack.append([name, time.perf_counter(), self.alloc_count,
                             mem0])

    def phase_finished(self, name: str) -> None:
        """Called by the tracer when a ``phase``-kind span closes."""
        while self._pstack and self._pstack[-1][0] != name:
            self._pstack.pop()  # tolerate out-of-order exits
        if not self._pstack:
            return
        pname, t0, alloc0, mem0 = self._pstack.pop()
        stat = self.phases.get(pname)
        if stat is None:
            stat = self.phases[pname] = _PhaseStat()
        stat.calls += 1
        stat.wall_s += time.perf_counter() - t0
        stat.allocs += self.alloc_count - alloc0
        if mem0 is not None:
            current, peak = tracemalloc.get_traced_memory()
            stat.peak_bytes = max(stat.peak_bytes, peak - mem0)
            stat.net_bytes += current - mem0

    # -- export ------------------------------------------------------------
    def events(self, trial: Optional[int] = None) -> List[Dict[str, Any]]:
        """The accumulated stats as ``"profile"`` trace events."""
        alloc = self.mode == "alloc"
        out: List[Dict[str, Any]] = []
        for name in sorted(self.phases):
            stat = self.phases[name]
            out.append({
                "type": "profile", "scope": "phase", "name": name,
                "phase": name, "mode": self.mode, "trial": trial,
                "calls": stat.calls, "excl_s": stat.wall_s,
                "incl_s": stat.wall_s,
                "allocs": stat.allocs if alloc else None,
                "peak_bytes": stat.peak_bytes if alloc else None,
                "net_bytes": stat.net_bytes if alloc else None,
                "tags": {}})
        for phase, name in sorted(self.kernels):
            stat = self.kernels[(phase, name)]
            out.append({
                "type": "profile", "scope": "kernel", "name": name,
                "phase": phase, "mode": self.mode, "trial": trial,
                "calls": stat.calls, "excl_s": stat.excl_s,
                "incl_s": stat.incl_s,
                "allocs": stat.allocs if alloc else None,
                "peak_bytes": None, "net_bytes": None,
                "tags": {}})
        return out

    def flush_to(self, recorder: Any, trial: Optional[int] = None) -> int:
        """Emit the accumulated stats into ``recorder`` and reset.

        Returns the number of events emitted.  Safe to call on the no-op
        recorder (the stats are still cleared).
        """
        events = self.events(trial=trial)
        for event in events:
            recorder.event(event)
        self.reset()
        return len(events)

    def reset(self) -> None:
        """Drop accumulated stats (open stacks are left untouched)."""
        self.kernels.clear()
        self.phases.clear()


# -- process-wide activation ------------------------------------------------
_active: Optional[KernelProfiler] = None

# alloc-mode bookkeeping: constructor wrappers and tracemalloc are enabled
# once and refcounted, so nested alloc profilers (run-level + per-trial)
# compose.
_alloc_depth = 0
_started_tracemalloc = False
_saved_constructors: Dict[str, Any] = {}


def _counting(original: Any) -> Any:
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        profiler = _active
        if profiler is not None:
            profiler.alloc_count += 1
        return wrapper.__wrapped__(*args, **kwargs)
    wrapper.__wrapped__ = original
    wrapper.__name__ = getattr(original, "__name__", "ndarray_constructor")
    return wrapper


def _enable_alloc_tracking() -> None:
    global _alloc_depth, _started_tracemalloc
    _alloc_depth += 1
    if _alloc_depth > 1:
        return
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _started_tracemalloc = True
    import numpy as np
    for name in NDARRAY_CONSTRUCTORS:
        original = getattr(np, name)
        _saved_constructors[name] = original
        setattr(np, name, _counting(original))


def _disable_alloc_tracking() -> None:
    global _alloc_depth, _started_tracemalloc
    if _alloc_depth == 0:
        return
    _alloc_depth -= 1
    if _alloc_depth:
        return
    import numpy as np
    for name, original in _saved_constructors.items():
        setattr(np, name, original)
    _saved_constructors.clear()
    if _started_tracemalloc:
        tracemalloc.stop()
        _started_tracemalloc = False


def current() -> Optional[KernelProfiler]:
    """The active profiler, or ``None`` when profiling is off."""
    return _active


def current_mode() -> Optional[str]:
    """The active profiler's mode, or ``None`` when profiling is off."""
    return _active.mode if _active is not None else None


def activate(profiler: Optional[KernelProfiler]) -> Optional[KernelProfiler]:
    """Install ``profiler`` process-wide; returns the previous one."""
    global _active
    previous = _active
    if profiler is not None and profiler.mode == "alloc":
        _enable_alloc_tracking()
    _active = profiler
    if previous is not None and previous.mode == "alloc":
        _disable_alloc_tracking()
    return previous


@contextmanager
def use_profiler(
        profiler: Optional[KernelProfiler]) -> Iterator[
            Optional[KernelProfiler]]:
    """Scoped :func:`activate`; restores the previous profiler on exit."""
    previous = activate(profiler)
    try:
        yield profiler
    finally:
        activate(previous)


def kernel(name: str) -> Any:
    """A kernel timer on the active profiler (no-op when profiling is off).

    This is the hot-path hook: one module-global read and one shared
    object when off, one :class:`_KernelTimer` when on.
    """
    profiler = _active
    if profiler is None:
        return _NULL_TIMER
    return _KernelTimer(profiler, name)
