"""Search-health reporting: dashboards from run-dir event logs.

``repro report <run_dir>`` lands here: the JSONL event stream written by a
traced run (:class:`~repro.obs.trace.RunTracer`) is folded into a
:class:`RunReport` — incumbent trajectory, phase-time breakdown, training
dynamics, GP surrogate health (kernel hyperparameters, acquisition values,
predicted-vs-observed calibration), QAFT recovery, and process-pool
telemetry — rendered as a text dashboard and optionally as SVG figures via
the same :mod:`repro.experiments.svg` machinery the paper figures use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry
from .trace import read_events_tolerant

#: phases shown in the breakdown, in pipeline order
PHASE_ORDER = ("train", "ptq", "qaft", "eval", "final_training")

_BAR_WIDTH = 28


@dataclass
class RunReport:
    """Aggregated view over one traced run's event stream."""

    source: str
    events: List[Dict[str, Any]]
    meta: Dict[str, Any] = field(default_factory=dict)
    run_span: Optional[Dict[str, Any]] = None
    trial_scores: List[Tuple[int, float, Dict[str, Any]]] = \
        field(default_factory=list)      # (trial, score, tags)
    phase_totals: Dict[str, float] = field(default_factory=dict)
    phase_counts: Dict[str, int] = field(default_factory=dict)
    epochs: List[Dict[str, Any]] = field(default_factory=list)
    gp_fits: List[Dict[str, Any]] = field(default_factory=list)
    residuals: List[Dict[str, Any]] = field(default_factory=list)
    acquisitions: List[Dict[str, Any]] = field(default_factory=list)
    qaft_recovery: List[Dict[str, Any]] = field(default_factory=list)
    pool_batches: List[Dict[str, Any]] = field(default_factory=list)
    profile_events: List[Dict[str, Any]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    # -- derived views -----------------------------------------------------
    def incumbent_trajectory(self) -> List[Tuple[int, float]]:
        """(trial index, best-so-far score) in trial order."""
        best = -math.inf
        trajectory = []
        for trial, score, _ in sorted(self.trial_scores):
            best = max(best, score)
            trajectory.append((trial, best))
        return trajectory

    def calibration_points(self) -> List[Tuple[float, float, float]]:
        """(predicted mean, observed score, predicted std) per GP tell."""
        points = []
        for event in self.residuals:
            tags = event.get("tags", {})
            if "predicted" in tags and "observed" in tags:
                points.append((float(tags["predicted"]),
                               float(tags["observed"]),
                               float(tags.get("std", 0.0))))
        return points

    def calibration_summary(self) -> Dict[str, float]:
        """Mean |residual| and the share of |z| <= 1 / <= 2 (68/95 rule)."""
        points = self.calibration_points()
        if not points:
            return {}
        residuals = [observed - predicted
                     for predicted, observed, _ in points]
        zs = [abs(r) / s for r, (_, _, s) in zip(residuals, points)
              if s > 0]
        summary = {
            "n": float(len(points)),
            "mean_abs_residual": sum(abs(r) for r in residuals)
            / len(residuals),
        }
        if zs:
            summary["z_within_1"] = sum(z <= 1 for z in zs) / len(zs)
            summary["z_within_2"] = sum(z <= 2 for z in zs) / len(zs)
        return summary


def load_report(run_dir: Union[str, Path]) -> RunReport:
    """Parse and aggregate a run directory's event log.

    Degrades instead of raising: a missing, empty, or torn-tail event log
    (truncated last line from a killed run) yields a report over whatever
    was parseable, with the problems recorded in ``report.warnings``.
    """
    events, warnings = read_events_tolerant(run_dir)
    report = RunReport(source=str(run_dir), events=events,
                       warnings=warnings,
                       metrics=MetricsRegistry.from_events(events))
    for event in events:
        type_ = event.get("type")
        name = event.get("name", "")
        if type_ == "meta":
            payload = {k: v for k, v in event.items()
                       if k not in ("type", "schema")}
            report.meta.update(payload)
        elif type_ == "span":
            kind = event.get("kind")
            if kind == "run":
                report.run_span = event
            elif kind == "phase":
                report.phase_totals[name] = report.phase_totals.get(
                    name, 0.0) + float(event.get("dur_s", 0.0))
                report.phase_counts[name] = report.phase_counts.get(
                    name, 0) + 1
            elif kind == "epoch":
                report.epochs.append(event)
        elif type_ == "profile":
            report.profile_events.append(event)
        elif type_ == "gauge":
            if name == "trial.score":
                report.trial_scores.append(
                    (int(event.get("trial", -1)), float(event["value"]),
                     event.get("tags", {})))
            elif name == "gp.length_scale":
                report.gp_fits.append(event)
            elif name == "gp.residual":
                report.residuals.append(event)
            elif name == "bo.acq_best":
                report.acquisitions.append(event)
            elif name == "qaft.recovery":
                report.qaft_recovery.append(event)
            elif name == "pool.batch_wall_s":
                report.pool_batches.append(event)
    return report


# -- text rendering --------------------------------------------------------
def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _trajectory_lines(report: RunReport) -> List[str]:
    trajectory = report.incumbent_trajectory()
    if not trajectory:
        return ["  (no trial scores recorded)"]
    scores = [s for _, s in trajectory]
    lo, hi = min(scores), max(scores)
    span = (hi - lo) or 1.0
    lines = []
    # show at most 12 evenly spaced points, always including the last
    step = max(1, len(trajectory) // 12)
    picks = list(range(0, len(trajectory), step))
    if picks[-1] != len(trajectory) - 1:
        picks.append(len(trajectory) - 1)
    for i in picks:
        trial, best = trajectory[i]
        lines.append(f"  trial {trial:>3}  best={best:8.3f}  "
                     f"|{_bar((best - lo) / span)}|")
    return lines


def _phase_lines(report: RunReport) -> List[str]:
    total = sum(report.phase_totals.values())
    if total <= 0:
        return ["  (no phase spans recorded)"]
    lines = []
    names = [p for p in PHASE_ORDER if p in report.phase_totals]
    names += sorted(set(report.phase_totals) - set(PHASE_ORDER))
    for name in names:
        seconds = report.phase_totals[name]
        share = seconds / total
        lines.append(f"  {name:<14} {_bar(share)} {share:6.1%} "
                     f"{seconds:9.2f}s  (n={report.phase_counts[name]})")
    return lines


def _epoch_lines(report: RunReport) -> List[str]:
    losses = [e["tags"].get("loss") for e in report.epochs
              if e.get("tags", {}).get("loss") is not None]
    if not losses:
        return ["  (no epoch telemetry recorded)"]
    grad_norms = [e["tags"].get("grad_norm") for e in report.epochs
                  if e.get("tags", {}).get("grad_norm") is not None]
    lines = [f"  epochs recorded: {len(report.epochs)}  "
             f"loss first={losses[0]:.4f} last={losses[-1]:.4f} "
             f"min={min(losses):.4f}"]
    if grad_norms:
        lines.append(f"  grad norm mean={sum(grad_norms) / len(grad_norms):.3f} "
                     f"max={max(grad_norms):.3f}")
    return lines


def _gp_lines(report: RunReport) -> List[str]:
    lines = []
    if report.gp_fits:
        scales = [e["value"] for e in report.gp_fits]
        n_obs = report.gp_fits[-1].get("tags", {}).get("n_obs")
        lines.append(f"  fits: {len(scales)}  length_scale "
                     f"first={scales[0]:.4g} last={scales[-1]:.4g}"
                     + (f"  n_obs={n_obs}" if n_obs is not None else ""))
    if report.acquisitions:
        values = [e["value"] for e in report.acquisitions]
        lines.append(f"  acquisition(best): first={values[0]:.4f} "
                     f"last={values[-1]:.4f} max={max(values):.4f}")
    calibration = report.calibration_summary()
    if calibration:
        line = (f"  calibration: n={int(calibration['n'])} "
                f"mean|resid|={calibration['mean_abs_residual']:.4f}")
        if "z_within_1" in calibration:
            line += (f"  |z|<=1: {calibration['z_within_1']:.0%} "
                     f"<=2: {calibration['z_within_2']:.0%} "
                     f"(well-calibrated ~ 68%/95%)")
        lines.append(line)
    return lines or ["  (no GP diagnostics recorded)"]


def _qaft_lines(report: RunReport) -> List[str]:
    deltas = [e["value"] for e in report.qaft_recovery]
    if not deltas:
        return ["  (no QAFT recovery telemetry)"]
    return [f"  recoveries: {len(deltas)}  mean dacc={sum(deltas) / len(deltas):+.4f} "
            f"min={min(deltas):+.4f} max={max(deltas):+.4f}"]


def _pool_lines(report: RunReport) -> List[str]:
    if not report.pool_batches:
        return ["  (serial run - no pool telemetry)"]
    lines = [f"  batches: {len(report.pool_batches)}"]
    util = report.metrics.get("pool.utilisation")
    if util is not None and util.count:
        lines.append(f"  worker utilisation mean={util.mean:.1%} "
                     f"min={util.vmin:.1%}")
    skew = report.metrics.get("pool.skew")
    if skew is not None and skew.count:
        lines.append(f"  task skew (max/mean) mean={skew.mean:.2f} "
                     f"max={skew.vmax:.2f}")
    task = report.metrics.get("pool.task_s")
    if task is not None and task.count:
        lines.append(f"  task time p50={task.percentile(0.5):.3g}s "
                     f"p90={task.percentile(0.9):.3g}s "
                     f"max={task.vmax:.3g}s")
    return lines


def render_text(report: RunReport) -> str:
    """The full text dashboard."""
    header = f"BOMP-NAS run health - {report.source}"
    lines = [header, "=" * len(header)]
    for warning in report.warnings:
        lines.append(f"WARNING: {warning}")
    run_meta = report.meta.get("run")
    if run_meta:
        lines.append(f"run: {run_meta}")
    if report.run_span is not None:
        lines.append(f"wall time: {report.run_span['dur_s']:.2f}s  "
                     f"events: {len(report.events)}")
    lines.append("")
    lines.append(f"incumbent trajectory "
                 f"({len(report.trial_scores)} trials):")
    lines.extend(_trajectory_lines(report))
    lines.append("")
    lines.append("phase-time breakdown:")
    lines.extend(_phase_lines(report))
    lines.append("")
    lines.append("training dynamics:")
    lines.extend(_epoch_lines(report))
    lines.append("")
    lines.append("GP surrogate:")
    lines.extend(_gp_lines(report))
    lines.append("")
    lines.append("QAFT recovery:")
    lines.extend(_qaft_lines(report))
    lines.append("")
    lines.append("process pool:")
    lines.extend(_pool_lines(report))
    if report.profile_events:
        # lazy import: profreport shares this module's event plumbing
        from .profreport import hotspot_lines
        lines.append("")
        lines.append("profiler hotspots:")
        lines.extend(hotspot_lines(report.events))
    return "\n".join(lines)


# -- SVG rendering ---------------------------------------------------------
# SvgScatter is imported inside the functions: repro.experiments imports the
# search stack, which itself imports repro.obs — a module-level import here
# would close that cycle.
def trajectory_svg(report: RunReport) -> Optional[str]:
    """Incumbent-trajectory figure, or ``None`` when no trials were traced."""
    from ..experiments.svg import SvgScatter
    trajectory = report.incumbent_trajectory()
    if not trajectory:
        return None
    plot = SvgScatter(title="Incumbent trajectory", log_x=False,
                      x_label="trial", y_label="best score so far")
    plot.add("best score", [(float(t), s) for t, s in trajectory],
             connect=True)
    scores = [(float(t), s) for t, s, _ in sorted(report.trial_scores)]
    plot.add("trial scores", scores, marker="square")
    return plot.render()


def calibration_svg(report: RunReport) -> Optional[str]:
    """GP calibration scatter, or ``None`` when the GP never made
    predictions (short runs end inside the initial-random phase)."""
    from ..experiments.svg import SvgScatter
    points = report.calibration_points()
    if not points:
        return None
    plot = SvgScatter(title="GP calibration", log_x=False,
                      x_label="predicted score", y_label="observed score")
    plot.add("trials", [(p, o) for p, o, _ in points])
    values = [v for p, o, _ in points for v in (p, o)]
    lo, hi = min(values), max(values)
    plot.add("ideal", [(lo, lo), (hi, hi)], connect=True, dashed=True)
    return plot.render()


def write_report(run_dir: Union[str, Path],
                 svg_out: Optional[Union[str, Path]] = None
                 ) -> Tuple[RunReport, str]:
    """Load a run dir, render the text dashboard, optionally write SVGs.

    With ``svg_out`` given, the trajectory figure goes to that path and
    the calibration scatter next to it with a ``-calibration`` suffix;
    figures with no data (e.g. no GP predictions yet) are skipped.
    Returns ``(report, dashboard_text)``.
    """
    report = load_report(run_dir)
    text = render_text(report)
    if svg_out is not None:
        svg_path = Path(svg_out)
        svg_path.parent.mkdir(parents=True, exist_ok=True)
        trajectory = trajectory_svg(report)
        if trajectory is not None:
            svg_path.write_text(trajectory)
        calibration = calibration_svg(report)
        if calibration is not None:
            calibration_path = svg_path.with_name(
                svg_path.stem + "-calibration" + (svg_path.suffix or ".svg"))
            calibration_path.write_text(calibration)
        if report.profile_events:
            from .profreport import flame_svg
            flame = flame_svg(report.events)
            if flame is not None:
                flame_path = svg_path.with_name(
                    svg_path.stem + "-flame" + (svg_path.suffix or ".svg"))
                flame_path.write_text(flame)
    return report, text
