"""Zero-dependency hierarchical tracing core.

The BOMP-NAS loop is a pipeline of expensive stages (early train -> PTQ ->
QAFT -> eval -> GP update); this module records it as a stream of *events*:

- **spans** — timed sections forming a hierarchy
  ``run > trial > phase{train,ptq,qaft,eval} > epoch`` with wall-clock
  start, monotonic duration and free-form tags;
- **metrics** — counters, gauges, and histogram observations (see
  :mod:`repro.obs.metrics`), emitted alongside the spans.

Instrumentation is pay-for-what-you-use: the process-wide *current
recorder* defaults to a :class:`Recorder` no-op whose methods discard
everything, so instrumented code costs two ``perf_counter`` reads per span
and nothing per metric.  Installing a :class:`TraceRecorder` (via
:func:`use_recorder`, a :class:`RunTracer`, or the CLI ``--trace`` flag)
turns the same call sites into an in-memory event list, an aggregated
metrics registry, and optionally a line-buffered JSONL sink.

Spans *always* time themselves — callers may read ``span.duration`` after
the ``with`` block even under the no-op recorder — which is what lets
:mod:`repro.nas.search` derive ``TrialResult.phase_times`` from spans
instead of hand-threaded ``perf_counter`` arithmetic.

Worker processes collect their trial events with a private
:class:`TraceRecorder` and ship them back through the ``TrialOutcome``
protocol; :meth:`TraceRecorder.ingest` rebases their span ids under the
current span so parallel runs produce one coherent stream.

:class:`TraceRecorder` is additionally safe to share across *threads*
(the serving daemon records spans from its HTTP handler and batch-worker
threads): the open-span stack is thread-local — each thread nests its own
spans under its own ancestry — while span-id allocation and event
emission are serialized under one lock, so the JSONL stream never tears
and ids stay unique.  Single-threaded runs see the exact same event
stream as before, which is what keeps traced searches bit-identical.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from . import profile as _profile

#: bump when an event field is renamed/removed (additions are compatible)
TRACE_SCHEMA_VERSION = 1

#: the span hierarchy, outermost first ("span" is the free-form catch-all)
SPAN_KINDS = ("run", "trial", "phase", "epoch", "span")

#: every event ``type`` a stream may contain
EVENT_TYPES = ("meta", "span", "counter", "gauge", "hist", "profile")

#: default event-log filename inside a run directory
EVENTS_FILENAME = "events.jsonl"


class Span:
    """One timed section; a context manager that always measures.

    Under the no-op recorder the span still records ``duration`` (two
    ``perf_counter`` reads) but gets no id and emits nothing.  An enabled
    recorder assigns ``span_id``/``parent_id`` on entry and serializes the
    span as an event on exit.
    """

    __slots__ = ("recorder", "name", "kind", "trial", "tags", "span_id",
                 "parent_id", "t_wall", "duration", "_t0")

    def __init__(self, recorder: "Recorder", name: str, kind: str = "span",
                 trial: Optional[int] = None,
                 tags: Optional[Dict[str, Any]] = None) -> None:
        self.recorder = recorder
        self.name = name
        self.kind = kind
        self.trial = trial
        self.tags = tags if tags is not None else {}
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.t_wall = 0.0
        self.duration = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self.t_wall = time.time()
        self._t0 = time.perf_counter()
        self.recorder._span_started(self)
        if self.kind == "phase" and _profile._active is not None:
            _profile._active.phase_started(self.name)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.duration = time.perf_counter() - self._t0
        if self.kind == "phase" and _profile._active is not None:
            _profile._active.phase_finished(self.name)
        self.recorder._span_finished(self)

    def elapsed(self) -> float:
        """Seconds since entry (usable while the span is still open)."""
        return time.perf_counter() - self._t0

    def as_event(self) -> Dict[str, Any]:
        return {"type": "span", "kind": self.kind, "name": self.name,
                "span": self.span_id, "parent": self.parent_id,
                "trial": self.trial, "t_wall": self.t_wall,
                "dur_s": self.duration, "tags": self.tags}


class Recorder:
    """The no-op recorder — also the base class for real ones.

    Every instrumentation hook goes through this interface, so the default
    cost of tracing-off is one attribute read (``enabled``) per metric and
    one :class:`Span` allocation per span.
    """

    enabled = False

    def span(self, name: str, kind: str = "span",
             trial: Optional[int] = None, **tags: Any) -> Span:
        return Span(self, name, kind=kind, trial=trial, tags=tags or None)

    def event(self, payload: Dict[str, Any]) -> None:
        pass

    def counter(self, name: str, value: Union[int, float] = 1,
                trial: Optional[int] = None, **tags: Any) -> None:
        pass

    def gauge(self, name: str, value: float,
              trial: Optional[int] = None, **tags: Any) -> None:
        pass

    def observe(self, name: str, value: float,
                trial: Optional[int] = None, **tags: Any) -> None:
        pass

    def meta(self, **payload: Any) -> None:
        pass

    def ingest(self, events: Optional[List[Dict[str, Any]]]) -> None:
        pass

    # span lifecycle hooks (no-ops here)
    def _span_started(self, span: Span) -> None:
        pass

    def _span_finished(self, span: Span) -> None:
        pass


class TraceRecorder(Recorder):
    """Collects events in memory, aggregates metrics, optionally sinks JSONL.

    Args:
        sink: optional writable text stream; every event is written as one
            JSON line and flushed immediately, so piped/tailed logs stream
            and a crashed run keeps everything recorded so far.
        metrics: optional shared :class:`~repro.obs.metrics.MetricsRegistry`;
            a fresh one is created by default.
    """

    enabled = True

    def __init__(self, sink: Optional[Any] = None,
                 metrics: Optional[Any] = None) -> None:
        from .metrics import MetricsRegistry
        self.events: List[Dict[str, Any]] = []
        self.sink = sink
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1

    @property
    def _stack(self) -> List[Span]:
        """The *calling thread's* open-span stack.

        Thread-local so daemon threads each nest their own spans without
        re-parenting each other; the main thread's stream is unchanged.
        """
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle ----------------------------------------------------
    def _span_started(self, span: Span) -> None:
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        stack = self._stack
        if stack:
            span.parent_id = stack[-1].span_id
            if span.trial is None:  # inherit trial index from the parent
                span.trial = stack[-1].trial
        stack.append(span)

    def _span_finished(self, span: Span) -> None:
        stack = self._stack
        while stack and stack[-1] is not span:
            stack.pop()  # tolerate out-of-order exits
        if stack:
            stack.pop()
        self.event(span.as_event())

    def current_span(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    # -- event emission ----------------------------------------------------
    def event(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self.events.append(payload)
            if self.sink is not None:
                self.sink.write(json.dumps(payload) + "\n")
                self.sink.flush()
        self.metrics.record_event(payload)

    def _metric(self, type_: str, name: str, value: Union[int, float],
                trial: Optional[int], tags: Dict[str, Any]) -> None:
        stack = self._stack
        if trial is None and stack:
            trial = stack[-1].trial
        self.event({"type": type_, "name": name, "value": value,
                    "trial": trial, "tags": tags})

    def counter(self, name: str, value: Union[int, float] = 1,
                trial: Optional[int] = None, **tags: Any) -> None:
        self._metric("counter", name, value, trial, tags)

    def gauge(self, name: str, value: float,
              trial: Optional[int] = None, **tags: Any) -> None:
        self._metric("gauge", name, float(value), trial, tags)

    def observe(self, name: str, value: float,
                trial: Optional[int] = None, **tags: Any) -> None:
        self._metric("hist", name, float(value), trial, tags)

    def meta(self, **payload: Any) -> None:
        self.event({"type": "meta", "schema": TRACE_SCHEMA_VERSION,
                    **payload})

    def ingest(self, events: Optional[List[Dict[str, Any]]]) -> None:
        """Merge a worker's event list into this stream.

        Worker span ids live in their own per-trial id space starting at 1;
        they are rebased past ``_next_id`` and orphan spans are parented
        under the currently open span, so the merged stream forms a single
        tree rooted at the run span.
        """
        if not events:
            return
        max_id = max((event.get("span") or 0 for event in events
                      if event.get("type") == "span"), default=0)
        with self._lock:  # reserve the rebased id range atomically
            base = self._next_id
            self._next_id = base + max_id + 1
        parent = self.current_span()
        parent_id = parent.span_id if parent is not None else None
        for source in events:
            payload = dict(source)
            if payload.get("type") == "span":
                span_id = payload.get("span")
                if span_id is not None:
                    payload["span"] = span_id + base
                if payload.get("parent") is None:
                    payload["parent"] = parent_id
                else:
                    payload["parent"] = payload["parent"] + base
            self.event(payload)


#: the process-wide no-op default (shared, stateless)
NULL_RECORDER = Recorder()

_current: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The current recorder (the no-op singleton unless one is installed)."""
    return _current


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` (``None`` -> no-op); returns the previous one."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Optional[Recorder]) -> Iterator[Recorder]:
    """Scoped :func:`set_recorder`; restores the previous recorder on exit."""
    previous = set_recorder(recorder)
    try:
        yield get_recorder()
    finally:
        set_recorder(previous)


def span(name: str, kind: str = "span", trial: Optional[int] = None,
         **tags: Any) -> Span:
    """A span on the *current* recorder (module-level convenience)."""
    return _current.span(name, kind=kind, trial=trial, **tags)


# -- event-log files -------------------------------------------------------
def events_path(run_dir: Union[str, Path]) -> Path:
    """The event-log path for a run directory (or a direct ``.jsonl`` path)."""
    path = Path(run_dir)
    if path.is_dir() or path.suffix != ".jsonl":
        return path / EVENTS_FILENAME
    return path


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL event log (run directory or file path)."""
    resolved = events_path(path)
    events = []
    with open(resolved) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def read_events_tolerant(
        path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Parse a JSONL event log, degrading instead of raising.

    Returns ``(events, warnings)``.  A missing file, an empty log, or a
    torn tail (a run killed mid-write leaves a truncated last line) all
    yield whatever *was* parseable plus a human-readable warning, so
    ``repro report`` can still render a partial dashboard for a crashed
    run.  Mid-stream garbage is skipped line-by-line with a warning per
    bad line.
    """
    resolved = events_path(path)
    if not resolved.exists():
        return [], [f"{resolved}: no event log found "
                    f"(was the run traced with --trace?)"]
    events: List[Dict[str, Any]] = []
    warnings: List[str] = []
    try:
        with open(resolved) as handle:
            lines = handle.readlines()
    except OSError as exc:
        return [], [f"{resolved}: unreadable ({exc})"]
    last_line = len(lines)
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if line_no == last_line:
                warnings.append(
                    f"{resolved}: torn tail at line {line_no} "
                    f"(run killed mid-write?); dropped the partial event")
            else:
                warnings.append(
                    f"{resolved}: invalid JSON at line {line_no}; skipped")
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            warnings.append(
                f"{resolved}: line {line_no} is not an object; skipped")
    if not events:
        warnings.append(f"{resolved}: event log is empty")
    return events, warnings


class RunTracer:
    """Owns a run directory and streams its event log to disk.

    Create one per traced run; pass it to ``BOMPNAS.run(tracer=...)`` or
    install ``tracer.recorder`` with :func:`use_recorder`.  Use as a
    context manager (or call :meth:`close`) to release the file handle.
    """

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / EVENTS_FILENAME
        self._handle = open(self.path, "w")
        self.recorder = TraceRecorder(sink=self._handle)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self.recorder.sink = None

    def __enter__(self) -> "RunTracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
