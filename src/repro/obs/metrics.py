"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the in-memory aggregation side of :mod:`repro.obs.trace`:
a :class:`~repro.obs.trace.TraceRecorder` feeds every metric event it
emits into one, and :func:`MetricsRegistry.from_events` rebuilds the same
aggregates offline from a JSONL event log (what ``repro report`` does).

Histograms use fixed bucket upper bounds (geometric, tuned for durations
in seconds) so percentile queries are O(buckets) with bounded error and no
sample retention — the usual monitoring-system trade-off.

Every update goes through one module-level lock (:data:`_LOCK`), so
instruments may be hammered concurrently from the serving daemon's
batcher and worker threads without losing increments or tearing
histogram state.  The lock is only ever touched by code that is already
recording — the no-op recorder never reaches a metric — so the
pay-for-what-you-use contract of :mod:`repro.obs.trace` is preserved.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

#: geometric upper bounds covering ~1 ms .. ~4 min (seconds)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0)

#: one lock for every instrument update and registry mutation — a single
#: coarse lock keeps the ordering trivially deadlock-free (metric updates
#: never call back into user code) and the critical sections are a few
#: scalar ops, so contention stays negligible next to inference work
_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        with _LOCK:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value plus min/max/mean of everything ever set."""

    __slots__ = ("name", "value", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def set(self, value: float) -> None:
        value = float(value)
        with _LOCK:
            self.value = value
            self.count += 1
            self.total += value
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "count": self.count,
                "mean": self.mean,
                "min": self.vmin if self.count else None,
                "max": self.vmax if self.count else None}


class Histogram:
    """Fixed-bucket histogram with approximate percentiles.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything larger.  ``percentile(p)`` returns the upper bound
    of the bucket containing the p-quantile (exact max for the overflow
    bucket), which bounds the error by the bucket geometry.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "vmin", "vmax")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and sorted")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with _LOCK:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-quantile (``p`` in [0, 1])."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = p * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if i == len(self.buckets):
                    return self.vmax
                return self.buckets[i]
        return self.vmax

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "hist", "count": self.count, "mean": self.mean,
                "min": self.vmin if self.count else None,
                "max": self.vmax if self.count else None,
                "p50": self.percentile(0.5), "p90": self.percentile(0.9),
                "p95": self.percentile(0.95), "p99": self.percentile(0.99)}


class MetricsRegistry:
    """Name -> metric instrument, created on first use, type-checked."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            with _LOCK:
                metric = self._metrics.get(name)
                if metric is None:  # double-checked: races create one
                    metric = cls(name, *args)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        if buckets is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def record_event(self, event: Dict[str, Any]) -> None:
        """Aggregate one trace event (non-metric events are ignored)."""
        type_ = event.get("type")
        name = event.get("name")
        if not name:
            return
        if type_ == "counter":
            self.counter(name).inc(event.get("value", 1))
        elif type_ == "gauge":
            self.gauge(name).set(event["value"])
        elif type_ == "hist":
            self.histogram(name).observe(event["value"])

    @classmethod
    def from_events(cls, events: Iterable[Dict[str, Any]]
                    ) -> "MetricsRegistry":
        registry = cls()
        for event in events:
            registry.record_event(event)
        return registry

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {name: self._metrics[name].snapshot()
                for name in self.names()}
