"""Observability: structured tracing, metrics, and search-health reports.

The package instruments the whole BOMP-NAS loop without touching its
results:

- :mod:`repro.obs.trace` — hierarchical spans
  (``run > trial > phase > epoch``) and a process-wide current recorder
  that defaults to a no-op, so instrumentation is free until a
  :class:`TraceRecorder` / :class:`RunTracer` is installed;
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms, aggregated live and rebuildable from event logs;
- :mod:`repro.obs.console` — line-buffered CLI progress reporting;
- :mod:`repro.obs.profile` — pay-for-what-you-use deterministic phase and
  kernel profiler (wall time, call counts, allocation attribution),
  enabled via ``BOMP_PROFILE=1`` / ``--profile``;
- :mod:`repro.obs.report` — the ``repro report <run_dir>`` search-health
  dashboard (text + SVG);
- :mod:`repro.obs.profreport` — ``repro profile <run_dir>`` hotspot
  tables and flame/icicle SVGs over the profile events;
- :mod:`repro.obs.schema` — validators for event logs and bench files.

Enabling ``--trace`` or ``--profile`` must never change a trial result:
instrumentation only reads values and clocks, never the run's random
generators (enforced by ``tests/parallel/test_determinism.py`` and
``tests/obs/test_profile.py``).
"""

from .console import ConsoleReporter
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import (KernelProfiler, current_mode, kernel, mode_from_env,
                      use_profiler)
from .profile import current as current_profiler
from .profreport import ProfileView, flame_svg, load_profile, render_hotspots
from .report import RunReport, load_report, render_text, write_report
from .trace import (EVENTS_FILENAME, NULL_RECORDER, TRACE_SCHEMA_VERSION,
                    Recorder, RunTracer, Span, TraceRecorder, get_recorder,
                    read_events, read_events_tolerant, set_recorder, span,
                    use_recorder)

__all__ = [
    "Recorder", "TraceRecorder", "RunTracer", "Span",
    "get_recorder", "set_recorder", "use_recorder", "span",
    "read_events", "read_events_tolerant", "NULL_RECORDER",
    "TRACE_SCHEMA_VERSION", "EVENTS_FILENAME",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "ConsoleReporter",
    "KernelProfiler", "kernel", "use_profiler", "current_profiler",
    "current_mode", "mode_from_env",
    "ProfileView", "load_profile", "render_hotspots", "flame_svg",
    "RunReport", "load_report", "render_text", "write_report",
]
