"""Line-buffered console progress reporting.

Replaces the CLI's bare ``print()`` calls: every line is flushed as soon
as it is written, so ``repro search ... | tee log`` and piped CI logs
stream instead of buffering until exit.  ``--quiet`` suppresses progress
chatter (:meth:`ConsoleReporter.info`) but never results
(:meth:`ConsoleReporter.emit`).
"""

from __future__ import annotations

import sys
from typing import Any, Optional


class ConsoleReporter:
    """Progress/result reporter with quiet gating and eager flushing.

    Args:
        quiet: suppress :meth:`info` progress lines (results still print).
        stream: target text stream (default ``sys.stdout``).
    """

    def __init__(self, quiet: bool = False, stream: Optional[Any] = None
                 ) -> None:
        self.quiet = quiet
        self.stream = stream if stream is not None else sys.stdout

    def _write(self, message: str) -> None:
        self.stream.write(message + "\n")
        self.stream.flush()

    def info(self, message: str) -> None:
        """Progress chatter; dropped under ``--quiet``."""
        if not self.quiet:
            self._write(message)

    def emit(self, message: str) -> None:
        """Results and summaries; always printed."""
        self._write(message)

    def trial(self, trial: Any) -> None:
        """Per-trial progress line (matches the historical CLI format)."""
        self.info(f"  trial {trial.index:>3}: acc={trial.accuracy:.3f} "
                  f"size={trial.size_kb:8.2f} kB score={trial.score:.3f}")
