"""Profiler reporting: hotspot tables and flame/icicle SVGs.

Consumes the ``type == "profile"`` events emitted by
:mod:`repro.obs.profile` (one stream per worker, already rebased into a
single event log by the parent's ``ingest``) and merges them into one
attributed view:

- per-phase wall time as the profiler saw it, checked against the
  span-derived wall time (the two are independent measurements of the
  same thing, so a large delta means lost attribution);
- per-kernel inclusive/exclusive time and call counts, merged across
  trials and workers;
- an icicle SVG (run > trials > phases > kernels) where kernel cells are
  scaled by exclusive time within their phase.

Everything here is pure functions over the event list — no profiler or
tracer state is touched, so reporting works on any run directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .trace import read_events_tolerant

__all__ = [
    "ProfileView",
    "aggregate",
    "load_profile",
    "hotspot_lines",
    "render_hotspots",
    "flame_svg",
]


@dataclass
class ProfileView:
    """Merged profile statistics for one run directory."""

    source: str
    events: List[Dict[str, Any]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    mode: Optional[str] = None
    # phase name -> {calls, excl_s, allocs, peak_bytes, net_bytes}
    phases: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # (phase, kernel) -> {calls, excl_s, incl_s, allocs}
    kernels: Dict[Tuple[str, str], Dict[str, Any]] = field(
        default_factory=dict)
    # (trial, phase, kernel) -> excl_s, for the flame layout
    trial_kernels: Dict[Tuple[Optional[int], str, str], float] = field(
        default_factory=dict)
    # span-derived wall time per phase name (independent measurement)
    span_phase_s: Dict[str, float] = field(default_factory=dict)
    run_span: Optional[Dict[str, Any]] = None
    trial_spans: List[Dict[str, Any]] = field(default_factory=list)
    # (trial, phase) -> summed span seconds, for the flame layout
    trial_phase_s: Dict[Tuple[Optional[int], str], float] = field(
        default_factory=dict)

    @property
    def has_profile(self) -> bool:
        return bool(self.phases or self.kernels)


def _zero_phase() -> Dict[str, Any]:
    return {"calls": 0, "excl_s": 0.0, "allocs": 0,
            "peak_bytes": 0, "net_bytes": 0}


def _zero_kernel() -> Dict[str, Any]:
    return {"calls": 0, "excl_s": 0.0, "incl_s": 0.0, "allocs": 0}


def aggregate(events: List[Dict[str, Any]],
              source: str = "<events>") -> ProfileView:
    """Merge profile + span events into a :class:`ProfileView`.

    Worker streams were flushed independently (one profile event per
    phase/kernel per trial), so merging is a straight sum; ``peak_bytes``
    takes the max, since each worker process has its own heap and the
    worst observed peak is the number that matters for sizing.
    """
    view = ProfileView(source=source, events=events)
    for event in events:
        type_ = event.get("type")
        if type_ == "span":
            kind = event.get("kind")
            dur = float(event.get("dur_s") or 0.0)
            if kind == "run":
                view.run_span = event
            elif kind == "trial":
                view.trial_spans.append(event)
            elif kind == "phase":
                name = str(event.get("name"))
                view.span_phase_s[name] = view.span_phase_s.get(
                    name, 0.0) + dur
                key = (event.get("trial"), name)
                view.trial_phase_s[key] = view.trial_phase_s.get(
                    key, 0.0) + dur
            continue
        if type_ != "profile":
            continue
        mode = event.get("mode")
        if mode and view.mode is None:
            view.mode = str(mode)
        scope = event.get("scope")
        if scope == "phase":
            stat = view.phases.setdefault(
                str(event.get("name")), _zero_phase())
            stat["calls"] += int(event.get("calls") or 0)
            stat["excl_s"] += float(event.get("excl_s") or 0.0)
            stat["allocs"] += int(event.get("allocs") or 0)
            stat["peak_bytes"] = max(stat["peak_bytes"],
                                     int(event.get("peak_bytes") or 0))
            stat["net_bytes"] += int(event.get("net_bytes") or 0)
        elif scope == "kernel":
            phase = str(event.get("phase") or "")
            name = str(event.get("name"))
            stat = view.kernels.setdefault((phase, name), _zero_kernel())
            stat["calls"] += int(event.get("calls") or 0)
            stat["excl_s"] += float(event.get("excl_s") or 0.0)
            stat["incl_s"] += float(event.get("incl_s") or 0.0)
            stat["allocs"] += int(event.get("allocs") or 0)
            excl = float(event.get("excl_s") or 0.0)
            tkey = (event.get("trial"), phase, name)
            view.trial_kernels[tkey] = view.trial_kernels.get(
                tkey, 0.0) + excl
    return view


def load_profile(run_dir: Union[str, Path]) -> ProfileView:
    """Load and merge a run directory's profile, tolerating torn logs."""
    events, warnings = read_events_tolerant(run_dir)
    view = aggregate(events, source=str(run_dir))
    view.warnings = warnings
    return view


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{int(n)}B"


def hotspot_lines(events: List[Dict[str, Any]], top_n: int = 12,
                  source: str = "<events>") -> List[str]:
    """The hotspot table for an event list (indent-free lines)."""
    return render_hotspots(aggregate(events, source=source),
                           top_n=top_n).splitlines()


def render_hotspots(view: ProfileView, top_n: int = 12) -> str:
    """Top-N hotspot table: phase breakdown + kernels by exclusive time."""
    lines: List[str] = []
    for warning in view.warnings:
        lines.append(f"WARNING: {warning}")
    if not view.has_profile:
        lines.append("no profile events in this run "
                     "(rerun with --profile or BOMP_PROFILE=1)")
        return "\n".join(lines)
    alloc = view.mode == "alloc"
    lines.append(f"mode: {view.mode or 'time'}")

    # -- phase breakdown, profiler wall vs independent span-derived wall
    lines.append("phase breakdown (profiler wall vs span wall):")
    prof_total = 0.0
    span_total = 0.0
    for name in sorted(view.phases,
                       key=lambda n: -view.phases[n]["excl_s"]):
        stat = view.phases[name]
        span_s = view.span_phase_s.get(name)
        prof_total += stat["excl_s"]
        kernel_s = sum(k["excl_s"] for (phase, _), k in view.kernels.items()
                       if phase == name)
        coverage = (kernel_s / stat["excl_s"] * 100.0
                    if stat["excl_s"] > 0 else 0.0)
        row = (f"  {name:<16} {stat['excl_s']:>9.3f}s profiled"
               + (f" / {span_s:.3f}s spans" if span_s is not None
                  else " / (no span)")
               + f"  n={stat['calls']}  kernel coverage {coverage:.0f}%")
        if alloc:
            row += (f"  peak {_fmt_bytes(stat['peak_bytes'])}"
                    f"  allocs {stat['allocs']}")
        lines.append(row)
        if span_s is not None:
            span_total += span_s
    if span_total > 0:
        delta = abs(prof_total - span_total) / span_total * 100.0
        lines.append(f"  {'total':<16} {prof_total:>9.3f}s profiled"
                     f" / {span_total:.3f}s spans  (delta {delta:.1f}%)")

    # -- top kernels by exclusive time, merged across trials and workers
    ranked = sorted(view.kernels.items(),
                    key=lambda item: -item[1]["excl_s"])
    shown = ranked[:top_n]
    lines.append(f"top {len(shown)} kernels by exclusive time:")
    header = (f"  {'#':>2} {'kernel':<22} {'phase':<14} {'calls':>8} "
              f"{'excl_s':>9} {'incl_s':>9} {'us/call':>9}")
    if alloc:
        header += f" {'allocs':>8}"
    lines.append(header)
    for rank, ((phase, name), stat) in enumerate(shown, start=1):
        per_call = (stat["excl_s"] / stat["calls"] * 1e6
                    if stat["calls"] else 0.0)
        row = (f"  {rank:>2} {name:<22} {phase:<14} {stat['calls']:>8} "
               f"{stat['excl_s']:>9.3f} {stat['incl_s']:>9.3f} "
               f"{per_call:>9.1f}")
        if alloc:
            row += f" {stat['allocs']:>8}"
        lines.append(row)
    if len(ranked) > len(shown):
        rest = sum(stat["excl_s"] for _, stat in ranked[len(shown):])
        lines.append(f"  .. {len(ranked) - len(shown)} more kernels, "
                     f"{rest:.3f}s exclusive")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# flame / icicle SVG
# ---------------------------------------------------------------------------

_PALETTE = ("#d95f02", "#7570b3", "#1b9e77", "#e7298a",
            "#66a61e", "#e6ab02", "#a6761d", "#666666")


def _color(name: str) -> str:
    # deterministic: hash() is salted per-process, so roll our own
    h = 0
    for ch in name:
        h = (h * 31 + ord(ch)) & 0xFFFFFFFF
    return _PALETTE[h % len(_PALETTE)]


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _cell(parts: List[str], x: float, y: float, w: float, h: float,
          label: str, tooltip: str, color: str) -> None:
    parts.append(
        f'<g><title>{_esc(tooltip)}</title>'
        f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(w, 0.5):.1f}" '
        f'height="{h:.1f}" fill="{color}" stroke="#ffffff" '
        f'stroke-width="0.5"/>')
    if w > 7 * max(len(label), 1) * 0.55 + 6:
        parts.append(
            f'<text x="{x + 3:.1f}" y="{y + h - 4:.1f}" '
            f'font-size="10" font-family="monospace" '
            f'fill="#ffffff">{_esc(label)}</text>')
    parts.append("</g>")


def flame_svg(events: List[Dict[str, Any]], width: int = 960,
              row_h: int = 22) -> Optional[str]:
    """Icicle chart: run > trials > phases > kernels.

    Cell widths are proportional to seconds at each depth.  Trials from
    parallel runs overlap in wall time, so children are packed
    sequentially and rescaled to their parent's width when their summed
    duration exceeds it — the chart reads as *attribution*, not as a
    timeline.  Kernel cells are scaled by exclusive time within their
    (trial, phase) cell; the remainder is unattributed python.
    """
    view = aggregate(events)
    if view.run_span is None and not view.trial_spans:
        return None

    run_dur = (float(view.run_span.get("dur_s") or 0.0)
               if view.run_span else 0.0)
    trials: List[Tuple[Optional[int], float]] = [
        (span.get("trial"), float(span.get("dur_s") or 0.0))
        for span in sorted(view.trial_spans,
                           key=lambda s: (s.get("trial") is None,
                                          s.get("trial") or 0))]
    # phases outside any trial (final_training, run-level eval) get a
    # pseudo-trial cell so their kernels still show up
    loose = sorted({phase for (trial, phase) in view.trial_phase_s
                    if trial is None})
    for phase in loose:
        trials.append((None, view.trial_phase_s[(None, phase)]))
    total_child = sum(dur for _, dur in trials)
    if run_dur <= 0:
        run_dur = total_child
    if run_dur <= 0:
        return None

    height = 4 * row_h + 4
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#fdfdfd"/>',
    ]
    run_label = "run"
    if view.run_span is not None:
        run_label = f"run {view.run_span.get('name', '')}".strip()
    _cell(parts, 0, 2, width, row_h - 2, f"{run_label} {run_dur:.2f}s",
          f"{run_label}: {run_dur:.3f}s", "#35506e")

    # pack trials left to right, rescaling when they oversubscribe the run
    scale = width / max(run_dur, total_child) if total_child else 0.0
    x = 0.0
    seen_loose = 0
    for trial, dur in trials:
        w = dur * scale
        if trial is None:
            label = loose[seen_loose]
            seen_loose += 1
            phases = [(label, dur)]
            tooltip = f"{label}: {dur:.3f}s (outside trials)"
        else:
            label = f"trial {trial}"
            phases = sorted(
                ((phase, sec) for (t, phase), sec
                 in view.trial_phase_s.items() if t == trial),
                key=lambda item: -item[1])
            tooltip = f"trial {trial}: {dur:.3f}s"
        _cell(parts, x, 2 + row_h, w, row_h - 2, f"{label} {dur:.2f}s",
              tooltip, _color(label))

        # phases inside this trial cell
        phase_total = sum(sec for _, sec in phases)
        pscale = (w / max(dur, phase_total)) if phase_total else 0.0
        px = x
        for phase, sec in phases:
            pw = sec * pscale
            _cell(parts, px, 2 + 2 * row_h, pw, row_h - 2,
                  f"{phase} {sec:.2f}s",
                  f"{label} / {phase}: {sec:.3f}s", _color(phase))

            # kernels inside this phase cell, by exclusive time
            kernels = sorted(
                ((name, excl) for (t, p, name), excl
                 in view.trial_kernels.items()
                 if t == trial and p == phase and excl > 0),
                key=lambda item: -item[1])
            ktotal = sum(excl for _, excl in kernels)
            kscale = (pw / max(sec, ktotal)) if ktotal else 0.0
            kx = px
            for name, excl in kernels:
                kw = excl * kscale
                _cell(parts, kx, 2 + 3 * row_h, kw, row_h - 2,
                      name.split(".")[-1],
                      f"{label} / {phase} / {name}: {excl:.3f}s "
                      f"exclusive", _color(name))
                kx += kw
            if ktotal and sec > ktotal:
                rw = pw - (kx - px)
                if rw > 0.5:
                    _cell(parts, kx, 2 + 3 * row_h, rw, row_h - 2, "",
                          f"{label} / {phase}: "
                          f"{sec - ktotal:.3f}s unattributed", "#c9c9c9")
            px += pw
        x += w
    parts.append("</svg>")
    return "".join(parts)
