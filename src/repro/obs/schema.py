"""Validators for run-dir JSONL event logs and ``BENCH_*.json`` files.

Both file families are append-only contracts consumed by later PRs (the
``repro report`` dashboard, the bench trajectory): these validators keep
them honest.  Each function returns a list of human-readable problems —
empty means valid — so callers can aggregate across files.
``scripts/check_schema.py`` is the CLI wrapper; the pytest suite runs the
same checks as a tier-1 test.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from .trace import EVENT_TYPES, SPAN_KINDS, TRACE_SCHEMA_VERSION, events_path

#: fields every span event must carry
SPAN_FIELDS = ("kind", "name", "span", "parent", "trial", "t_wall",
               "dur_s", "tags")

#: fields every metric event must carry
METRIC_FIELDS = ("name", "value", "trial", "tags")

#: fields every profile event must carry (see :mod:`repro.obs.profile`)
PROFILE_FIELDS = ("scope", "name", "phase", "mode", "trial", "calls",
                  "excl_s", "incl_s", "tags")

#: valid ``scope`` values of a profile event
PROFILE_SCOPES = ("phase", "kernel")


def _problem(index: int, message: str) -> str:
    return f"event {index}: {message}"


def validate_events(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Validate a parsed event stream; returns problems (empty = valid)."""
    problems: List[str] = []
    span_ids = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(_problem(index, "not a JSON object"))
            continue
        type_ = event.get("type")
        if type_ not in EVENT_TYPES:
            problems.append(_problem(index, f"unknown type {type_!r}"))
            continue
        if type_ == "meta":
            schema = event.get("schema")
            if schema != TRACE_SCHEMA_VERSION:
                problems.append(_problem(
                    index, f"meta schema {schema!r} != "
                           f"{TRACE_SCHEMA_VERSION}"))
            continue
        if type_ == "span":
            for field in SPAN_FIELDS:
                if field not in event:
                    problems.append(_problem(
                        index, f"span missing field {field!r}"))
            if event.get("kind") not in SPAN_KINDS:
                problems.append(_problem(
                    index, f"unknown span kind {event.get('kind')!r}"))
            span_id = event.get("span")
            if not isinstance(span_id, int):
                problems.append(_problem(index, "span id must be an int"))
            elif span_id in span_ids:
                problems.append(_problem(
                    index, f"duplicate span id {span_id}"))
            else:
                span_ids.add(span_id)
            duration = event.get("dur_s")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(_problem(
                    index, f"dur_s must be a non-negative number, "
                           f"got {duration!r}"))
            if not isinstance(event.get("tags"), dict):
                problems.append(_problem(index, "tags must be an object"))
        elif type_ == "profile":
            for field in PROFILE_FIELDS:
                if field not in event:
                    problems.append(_problem(
                        index, f"profile missing field {field!r}"))
            if event.get("scope") not in PROFILE_SCOPES:
                problems.append(_problem(
                    index, f"unknown profile scope "
                           f"{event.get('scope')!r}"))
            calls = event.get("calls")
            if not isinstance(calls, int) or isinstance(calls, bool) \
                    or calls < 0:
                problems.append(_problem(
                    index, f"profile calls must be a non-negative int, "
                           f"got {calls!r}"))
            for field in ("excl_s", "incl_s"):
                value = event.get(field)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value < 0:
                    problems.append(_problem(
                        index, f"profile {field} must be a non-negative "
                               f"number, got {value!r}"))
        else:  # counter / gauge / hist
            for field in METRIC_FIELDS:
                if field not in event:
                    problems.append(_problem(
                        index, f"{type_} missing field {field!r}"))
            value = event.get("value")
            if not isinstance(value, (int, float)):
                problems.append(_problem(
                    index, f"{type_} value must be a number, "
                           f"got {value!r}"))
    # parents may close after their children, so resolve after a full pass
    for index, event in enumerate(events):
        if isinstance(event, dict) and event.get("type") == "span":
            parent = event.get("parent")
            if parent is not None and parent not in span_ids:
                problems.append(_problem(
                    index, f"parent {parent} references no span"))
    return problems


def validate_events_file(path: Union[str, Path]) -> List[str]:
    """Validate a JSONL event log (run directory or file path)."""
    resolved = events_path(path)
    if not resolved.exists():
        return [f"{resolved}: no event log found"]
    events = []
    problems: List[str] = []
    with open(resolved) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                problems.append(f"line {line_no}: invalid JSON ({exc})")
    problems.extend(validate_events(events))
    return [f"{resolved}: {p}" for p in problems]


def _bench_contract(filename: str):
    """(schema version, required record fields) for a ``BENCH_*`` file.

    Each bench family owns its schema; the filename is the dispatch key
    (``BENCH_infer.json`` → the inference-throughput log,
    ``BENCH_serve.json`` → the serving load-test log, everything else →
    the parallel-engine log, the original family).
    """
    if filename.startswith("BENCH_infer"):
        from ..infer.bench import BENCH_SCHEMA_VERSION, RECORD_FIELDS
    elif filename.startswith("BENCH_serve"):
        from ..serve.bench import BENCH_SCHEMA_VERSION, RECORD_FIELDS
    else:
        from ..parallel.bench import BENCH_SCHEMA_VERSION, RECORD_FIELDS
    return BENCH_SCHEMA_VERSION, RECORD_FIELDS


#: required keys of the ``host`` block in a BENCH_infer v2 record
INFER_HOST_FIELDS = ("platform", "python", "numpy", "cpus")

#: required keys of the ``host`` block in a BENCH_parallel v2 record
#: (adds the CPU model, the fingerprint the bench gate keys on)
PARALLEL_HOST_FIELDS = ("platform", "python", "numpy", "cpus", "cpu")

#: required keys of the ``host`` block in a BENCH_serve v1 record
#: (born with the full fingerprint — no migration debt)
SERVE_HOST_FIELDS = PARALLEL_HOST_FIELDS


def _validate_infer_run(index: int, run: Dict[str, Any]) -> List[str]:
    """Typed checks for the v2 fields of one BENCH_infer record.

    Records migrated from schema 1 carry ``None`` (the data was never
    measured); fresh records must carry well-formed values.
    """
    problems: List[str] = []
    arena = run.get("arena_bytes")
    if arena is not None and (not isinstance(arena, int)
                              or isinstance(arena, bool) or arena < 0):
        problems.append(f"run {index}: arena_bytes must be a non-negative "
                        f"integer or null, got {arena!r}")
    allocs = run.get("allocs_per_image")
    if allocs is not None and (not isinstance(allocs, (int, float))
                               or isinstance(allocs, bool) or allocs < 0):
        problems.append(f"run {index}: allocs_per_image must be a "
                        f"non-negative number or null, got {allocs!r}")
    host = run.get("host")
    if host is not None:
        if not isinstance(host, dict):
            problems.append(f"run {index}: host must be an object or "
                            f"null, got {host!r}")
        else:
            for field in INFER_HOST_FIELDS:
                if field not in host:
                    problems.append(f"run {index}: host missing field "
                                    f"{field!r}")
    return problems


def _validate_parallel_run(index: int, run: Dict[str, Any]) -> List[str]:
    """Typed checks for the v2 fields of one BENCH_parallel record.

    Records migrated from schema 1 carry ``host: null`` (the fingerprint
    was never captured); fresh records must carry a well-formed one.
    ``host_limited`` flags speedups measured on a single-CPU host, which
    the bench gate must not compare against multi-core runs.
    """
    problems: List[str] = []
    host = run.get("host")
    if host is not None:
        if not isinstance(host, dict):
            problems.append(f"run {index}: host must be an object or "
                            f"null, got {host!r}")
        else:
            for field in PARALLEL_HOST_FIELDS:
                if field not in host:
                    problems.append(f"run {index}: host missing field "
                                    f"{field!r}")
    limited = run.get("host_limited")
    if not isinstance(limited, bool):
        problems.append(f"run {index}: host_limited must be a bool, "
                        f"got {limited!r}")
    return problems


def _validate_serve_run(index: int, run: Dict[str, Any]) -> List[str]:
    """Typed checks for one BENCH_serve v1 record.

    The serve family was born at schema 1 with the full host fingerprint
    and ``host_limited`` flag, so — unlike the older families — nothing
    may be null.
    """
    problems: List[str] = []
    host = run.get("host")
    if not isinstance(host, dict):
        problems.append(f"run {index}: host must be an object, "
                        f"got {host!r}")
    else:
        for field in SERVE_HOST_FIELDS:
            if field not in host:
                problems.append(f"run {index}: host missing field "
                                f"{field!r}")
    limited = run.get("host_limited")
    if not isinstance(limited, bool):
        problems.append(f"run {index}: host_limited must be a bool, "
                        f"got {limited!r}")
    for field in ("seq_s", "conc_s", "seq_ips", "conc_ips",
                  "batch_speedup", "mean_batch"):
        value = run.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"run {index}: {field} must be a non-negative "
                            f"number, got {value!r}")
    for field in ("n_requests", "n_clients", "max_batch", "queue_depth",
                  "shed", "timeouts"):
        value = run.get(field)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"run {index}: {field} must be a non-negative "
                            f"integer, got {value!r}")
    for field in ("p50_ms", "p95_ms", "p99_ms"):
        value = run.get(field)
        if value is not None and (not isinstance(value, (int, float))
                                  or isinstance(value, bool) or value < 0):
            problems.append(f"run {index}: {field} must be a non-negative "
                            f"number or null, got {value!r}")
    return problems


def validate_bench(payload: Dict[str, Any],
                   filename: str = "BENCH_parallel.json") -> List[str]:
    """Validate a parsed ``BENCH_*.json`` payload."""
    schema_version, record_fields = _bench_contract(filename)
    if filename.startswith("BENCH_infer"):
        validate_run = _validate_infer_run
    elif filename.startswith("BENCH_serve"):
        validate_run = _validate_serve_run
    else:
        validate_run = _validate_parallel_run
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["bench payload is not a JSON object"]
    if payload.get("schema") != schema_version:
        problems.append(f"schema {payload.get('schema')!r} != "
                        f"{schema_version}")
    runs = payload.get("runs")
    if not isinstance(runs, list):
        return problems + ["'runs' must be a list"]
    for index, run in enumerate(runs):
        if not isinstance(run, dict):
            problems.append(f"run {index}: not a JSON object")
            continue
        for field in record_fields:
            if field not in run:
                problems.append(f"run {index}: missing field {field!r}")
        problems.extend(validate_run(index, run))
    return problems


def validate_bench_file(path: Union[str, Path]) -> List[str]:
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    return [f"{path}: {p}" for p in validate_bench(payload, path.name)]


def validate_path(path: Union[str, Path]) -> List[str]:
    """Dispatch on path shape: bench JSON, checkpoint, event log, or run
    directory."""
    path = Path(path)
    if path.is_file() and path.name.startswith("BENCH"):
        return validate_bench_file(path)
    if path.is_file() and path.name == "checkpoint.json":
        from ..resilience.checkpoint import validate_checkpoint_file
        return validate_checkpoint_file(path)
    if path.name == "serve_stats.json" or (
            path.is_dir() and (path / "serve_stats.json").exists()
            and not (path / "events.jsonl").exists()):
        from ..serve.report import (ServeStatsError, load_serve_stats,
                                    stats_path, validate_serve_stats)
        try:
            payload = load_serve_stats(path)
        except ServeStatsError as exc:
            return [str(exc)]
        return [f"{stats_path(path)}: {p}"
                for p in validate_serve_stats(payload)]
    return validate_events_file(path)
