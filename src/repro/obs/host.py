"""Host fingerprinting shared by the bench logs and the bench gate.

Throughput numbers are only comparable between runs of the same machine
and numeric stack, so every bench record carries this block and
``scripts/bench_gate.py`` refuses to compare across differing
fingerprints.  Keys are only ever added, never renamed (the BENCH files
are append-only contracts).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["host_metadata", "cpu_model", "fingerprint", "compatible"]

#: the keys that must match for two bench records to be comparable
FINGERPRINT_KEYS = ("cpu", "cpus", "numpy")


def cpu_model() -> Optional[str]:
    """The CPU model string, or ``None`` when the platform hides it."""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    import platform
    return platform.processor() or None


def host_metadata() -> Dict[str, Any]:
    """The host facts that make a wall-clock measurement comparable."""
    import os
    import platform

    import numpy as np

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "cpu": cpu_model(),
    }


def fingerprint(host: Optional[Dict[str, Any]]) -> Optional[tuple]:
    """The comparable subset of a ``host`` block (``None`` if absent).

    Migrated v1 records carry ``host: null`` — they have no fingerprint,
    so the gate skips them rather than guessing.
    """
    if not isinstance(host, dict):
        return None
    return tuple(host.get(key) for key in FINGERPRINT_KEYS)


def compatible(a: Optional[Dict[str, Any]],
               b: Optional[Dict[str, Any]]) -> bool:
    """Whether two host blocks describe the same measurement platform.

    Keys absent from either side are treated as wildcards (older records
    captured fewer facts); a ``None``/missing block never matches — the
    caller must skip such records, not compare against them.
    """
    if not isinstance(a, dict) or not isinstance(b, dict):
        return False
    for key in FINGERPRINT_KEYS:
        if key in a and key in b and a[key] != b[key]:
            return False
    return True
