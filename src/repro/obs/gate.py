"""The bench regression gate: newest run vs best prior run, same host.

``scripts/bench_gate.py`` is the CLI wrapper.  The gate reads the
append-only ``BENCH_*.json`` trajectory logs, takes the *newest* record
(the last row — the one the current change produced) and compares its
headline metric against the *best prior* record with a compatible
workload key and host fingerprint:

- ``BENCH_infer.json``: ``int_ips`` (images/sec through the integer
  engine), higher is better, keyed by
  ``(dataset, bits, image_size, n_images, batch_size)``;
- ``BENCH_parallel.json``: ``serial_s`` (serial search wall-clock),
  lower is better, keyed by ``(scale, dataset, mode, seed, trials,
  batch_size)``; ``speedup`` is additionally gated (higher is better,
  key also includes ``workers``) unless either record is
  ``host_limited`` — a single-CPU host measures scheduling overhead,
  not parallelism;
- ``BENCH_serve.json``: ``conc_ips`` (batched serving throughput under
  concurrent clients), higher is better; ``p99_ms`` (tail latency,
  lower is better) is additionally gated unless ``host_limited``.

Records whose host fingerprint is missing (``host: null``, migrated
from schema 1) or differs from the newest record are skipped with a
note: cross-machine wall-clock comparisons are noise, and the gate must
not fail a PR because CI moved to different hardware.

A metric *regresses* when it is worse than the baseline by more than
``tolerance`` (relative, default 10% — wall-clock on shared machines
jitters).  No comparable baseline means the gate passes vacuously.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .host import compatible

__all__ = ["GateCheck", "GateReport", "gate_file", "run_gate",
           "DEFAULT_TOLERANCE"]

DEFAULT_TOLERANCE = 0.10


@dataclass
class GateCheck:
    """One newest-vs-baseline comparison."""

    source: str
    metric: str
    newest: float
    baseline: float
    higher_is_better: bool
    tolerance: float

    @property
    def ratio(self) -> float:
        """newest / baseline (so 1.0 means unchanged)."""
        return self.newest / self.baseline if self.baseline else float("inf")

    @property
    def regressed(self) -> bool:
        if self.higher_is_better:
            return self.newest < self.baseline * (1.0 - self.tolerance)
        return self.newest > self.baseline * (1.0 + self.tolerance)

    def describe(self) -> str:
        arrow = "up" if self.higher_is_better else "down"
        verdict = "REGRESSED" if self.regressed else "ok"
        return (f"{verdict:<9} {self.source}: {self.metric} "
                f"{self.newest:g} vs best prior {self.baseline:g} "
                f"(x{self.ratio:.3f}, {arrow} is better, "
                f"tolerance {self.tolerance:.0%})")


@dataclass
class GateReport:
    checks: List[GateCheck] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[GateCheck]:
        return [check for check in self.checks if check.regressed]

    def describe(self) -> str:
        lines = [check.describe() for check in self.checks]
        lines.extend(f"note      {note}" for note in self.notes)
        if not self.checks:
            lines.append("note      no comparable baseline; gate passes "
                         "vacuously")
        return "\n".join(lines)


def _metric_value(run: Dict[str, Any], metric: str) -> Optional[float]:
    value = run.get(metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _workload_key(run: Dict[str, Any],
                  fields: Sequence[str]) -> Tuple[Any, ...]:
    return tuple(run.get(f) for f in fields)


#: per-file gate spec: metric -> (key fields, higher_is_better,
#: skip when host_limited)
_SPECS = {
    "BENCH_infer": {
        "int_ips": (("dataset", "bits", "image_size", "n_images",
                     "batch_size"), True, False),
    },
    "BENCH_parallel": {
        "serial_s": (("scale", "dataset", "mode", "seed", "trials",
                      "batch_size"), False, False),
        "speedup": (("scale", "dataset", "mode", "seed", "trials",
                     "batch_size", "workers"), True, True),
    },
    "BENCH_serve": {
        # batched serving throughput: meaningful even on one core (the
        # arena pass amortizes per-request Python overhead)
        "conc_ips": (("dataset", "bits", "image_size", "n_requests",
                      "n_clients", "max_batch"), True, False),
        # tail latency is a scheduling measurement; GIL contention on a
        # single-CPU host drowns it, so skip there
        "p99_ms": (("dataset", "bits", "image_size", "n_requests",
                    "n_clients", "max_batch"), False, True),
    },
}


def _spec_for(filename: str) -> Optional[Dict[str, Any]]:
    for prefix, spec in _SPECS.items():
        if filename.startswith(prefix):
            return spec
    return None


def gate_file(path: Union[str, Path],
              tolerance: float = DEFAULT_TOLERANCE) -> GateReport:
    """Gate one ``BENCH_*.json`` trajectory file."""
    path = Path(path)
    report = GateReport()
    spec = _spec_for(path.name)
    if spec is None:
        report.notes.append(f"{path.name}: no gate spec for this file")
        return report
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        report.notes.append(f"{path.name}: unreadable ({exc})")
        return report
    runs = payload.get("runs") if isinstance(payload, dict) else None
    if not isinstance(runs, list) or len(runs) < 2:
        report.notes.append(f"{path.name}: fewer than two runs; nothing "
                            "to compare")
        return report
    newest = runs[-1]
    if not isinstance(newest, dict):
        report.notes.append(f"{path.name}: newest run is not an object")
        return report
    if not isinstance(newest.get("host"), dict):
        report.notes.append(
            f"{path.name}: newest run has no host fingerprint "
            "(migrated from v1?); skipping — wall-clock comparisons "
            "need a known host")
        return report

    for metric, (key_fields, higher, skip_limited) in spec.items():
        new_value = _metric_value(newest, metric)
        if new_value is None:
            report.notes.append(f"{path.name}: newest run has no "
                                f"{metric}; skipped")
            continue
        if skip_limited and newest.get("host_limited"):
            report.notes.append(
                f"{path.name}: newest run is host_limited "
                f"(single CPU); {metric} not gated")
            continue
        key = _workload_key(newest, key_fields)
        best: Optional[float] = None
        skipped_host = 0
        for run in runs[:-1]:
            if not isinstance(run, dict):
                continue
            if _workload_key(run, key_fields) != key:
                continue
            if skip_limited and run.get("host_limited"):
                continue
            if not compatible(run.get("host"), newest.get("host")):
                skipped_host += 1
                continue
            value = _metric_value(run, metric)
            if value is None:
                continue
            if best is None or (value > best if higher else value < best):
                best = value
        if skipped_host:
            report.notes.append(
                f"{path.name}: {metric}: skipped {skipped_host} prior "
                "run(s) with missing or differing host fingerprint")
        if best is None:
            report.notes.append(f"{path.name}: {metric}: no comparable "
                                "prior run on this host")
            continue
        report.checks.append(GateCheck(
            source=path.name, metric=metric, newest=new_value,
            baseline=best, higher_is_better=higher, tolerance=tolerance))
    return report


def run_gate(paths: Sequence[Union[str, Path]],
             tolerance: float = DEFAULT_TOLERANCE) -> GateReport:
    """Gate several bench files into one merged report."""
    merged = GateReport()
    for path in paths:
        report = gate_file(path, tolerance=tolerance)
        merged.checks.extend(report.checks)
        merged.notes.extend(report.notes)
    return merged
