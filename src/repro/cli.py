"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``search``  — run a BOMP-NAS search (any mode) and write the result JSON;
  ``--trace`` additionally streams a structured event log to a run
  directory (see :mod:`repro.obs`).
- ``report``  — regenerate a paper figure or table, or — given a traced
  run directory — render its search-health dashboard.
- ``inspect`` — summarize a saved search result JSON.
- ``space``   — print the Table I search space and its cardinalities.
- ``export``  — re-materialize a searched candidate from a saved run
  (result JSON or checkpoint) into a deployable integer-inference
  artifact (see :mod:`repro.infer`).
- ``infer``   — run the integer-only engine on an exported artifact:
  deployed accuracy, deployment cost report, optional parity check.
- ``profile`` — hotspot table + flame SVG for a profiled run directory
  (a search run with ``--profile`` / ``BOMP_PROFILE=1``).
- ``serve``   — multi-model serving daemon over exported artifacts:
  dynamic batching, admission control, graceful SIGTERM drain (see
  :mod:`repro.serve`).
- ``serve-report`` — latency/SLO report over the ``serve_stats.json``
  a drained daemon leaves in its run directory.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from .bo.scalarization import ScalarizationConfig
from .data.synthetic import load_dataset
from .experiments.runner import REF_SIZE, ExperimentContext
from .nas.config import (SCALE_PRESETS, SEARCH_MODES, SearchConfig,
                         get_mode, get_scale)
from .nas.results import SearchResult
from .nas.search import BOMPNAS
from .obs.console import ConsoleReporter
from .obs.trace import EVENTS_FILENAME, RunTracer
from .space.space import SearchSpace

#: the paper artifacts ``report`` can regenerate (everything else is
#: interpreted as a traced run directory / event log path)
PAPER_ARTIFACTS = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                   "table1", "table2", "table3", "table4")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BOMP-NAS (DATE 2023) reproduction toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="run a BOMP-NAS search")
    search.add_argument("--dataset", choices=("cifar10", "cifar100"),
                        default="cifar10")
    search.add_argument("--mode", choices=sorted(SEARCH_MODES),
                        default="mp_qaft")
    search.add_argument("--scale", choices=sorted(SCALE_PRESETS),
                        default=None,
                        help="protocol scale (default: BOMP_SCALE env or "
                             "'smoke')")
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--ref-acc", type=float, default=0.8,
                        help="Eq. (1) accuracy reference")
    search.add_argument("--ref-size", type=float, default=None,
                        help="Eq. (1) size reference (default: paper value "
                             "for the dataset)")
    search.add_argument("--policies-per-trial", type=int, default=1,
                        help="quantization policies evaluated per trained "
                             "network (paper future-work extension)")
    search.add_argument("--workers", type=int, default=None,
                        help="process-pool size for trial evaluation "
                             "(default: CPU count, capped at 8; results "
                             "are identical for any value)")
    search.add_argument("--trial-batch", type=int, default=None,
                        help="candidates proposed per constant-liar BO "
                             "batch (default 4; part of the search "
                             "schedule, unlike --workers)")
    search.add_argument("--no-final-training", action="store_true",
                        help="skip final training of the Pareto set")
    search.add_argument("--checkpoint-dir", default=None,
                        help="atomically persist the search state to "
                             "<dir>/checkpoint.json after every BO batch; "
                             "an interrupted run restarts with --resume")
    search.add_argument("--resume", default=None, metavar="RUN_DIR",
                        help="resume an interrupted search from its "
                             "checkpoint directory; the config and dataset "
                             "are restored from the checkpoint and the "
                             "resumed run is bit-identical to an "
                             "uninterrupted one")
    search.add_argument("--trial-timeout", type=float, default=None,
                        help="per-trial wall-clock timeout in seconds for "
                             "pooled evaluation (<= 0 disables; default "
                             "BOMP_TRIAL_TIMEOUT env or 3600)")
    search.add_argument("--out", default=None,
                        help="write the result JSON here")
    search.add_argument("--trace", action="store_true",
                        help="record a structured event log (spans + "
                             "metrics) for the run; never changes results")
    search.add_argument("--trace-dir", default=None,
                        help="run directory for the event log (implies "
                             "--trace; default runs/<mode>-<dataset>-"
                             "<scale>-seed<seed>)")
    search.add_argument("--profile", nargs="?", const="time",
                        choices=("time", "alloc"), default=None,
                        help="profile phase/kernel hot spots into the "
                             "event log (implies --trace; 'alloc' adds "
                             "tracemalloc peaks and ndarray allocation "
                             "counts; never changes results)")
    search.add_argument("--quiet", action="store_true")

    report = commands.add_parser(
        "report",
        help="regenerate a paper figure/table, or render the "
             "search-health dashboard of a traced run directory")
    report.add_argument("artifact",
                        help="one of %s, or a path to a traced run "
                             "directory / events.jsonl" %
                             ", ".join(PAPER_ARTIFACTS))
    report.add_argument("--scale", choices=sorted(SCALE_PRESETS),
                        default=None)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--workers", type=int, default=None,
                        help="process-pool size for the underlying "
                             "searches (default: BOMP_WORKERS env or 1; "
                             "cached results are reused either way)")
    report.add_argument("--svg-out", default=None,
                        help="also write an SVG rendering here (figures "
                             "and run-dir dashboards)")

    inspect = commands.add_parser(
        "inspect", help="summarize a saved search result")
    inspect.add_argument("result", help="path to a result JSON")

    space = commands.add_parser(
        "space", help="print the search space and cardinalities")
    space.add_argument("--dataset", choices=("cifar10", "cifar100"),
                       default="cifar10")

    export = commands.add_parser(
        "export",
        help="materialize a searched model into a deployable "
             "integer-inference artifact")
    export.add_argument("source",
                        help="search result JSON, checkpoint.json, or a "
                             "run directory containing either")
    export.add_argument("--trial", type=int, default=None,
                        help="trial index to export (default: highest "
                             "score)")
    export.add_argument("--force-qaft", action="store_true",
                        help="apply QAFT in the re-run final training "
                             "even for PTQ search modes")
    export.add_argument("--out", default=None,
                        help="artifact path (default: <source dir>/"
                             "model-trial<N>.bomp)")

    infer = commands.add_parser(
        "infer", help="run the integer-only engine on an exported "
                      "artifact")
    infer.add_argument("artifact", help="path to a .bomp artifact")
    infer.add_argument("--batch-size", type=int, default=256)
    infer.add_argument("--limit", type=int, default=None,
                       help="evaluate at most N test images")
    infer.add_argument("--parity", action="store_true",
                       help="also run the parity harness against the "
                            "rebuilt fake-quant reference")

    profile = commands.add_parser(
        "profile",
        help="hotspot table + flame SVG for a profiled run directory")
    profile.add_argument("run_dir",
                         help="traced+profiled run directory (or an "
                              "events.jsonl path)")
    profile.add_argument("--top", type=int, default=12,
                         help="kernels shown in the hotspot table")
    profile.add_argument("--svg-out", default=None,
                         help="flame SVG path (default <run_dir>/"
                              "flame.svg; 'none' to skip)")

    serve = commands.add_parser(
        "serve",
        help="serve exported .bomp artifacts over HTTP with dynamic "
             "batching and admission control")
    serve.add_argument("--model", action="append", default=[],
                       metavar="NAME=PATH",
                       help="load a model at startup (repeatable); more "
                            "can be loaded later via POST "
                            "/v1/models/<name>/load")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8700,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="arena capacity: most images per coalesced "
                            "batch")
    serve.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="how long a batch waits to fill before "
                            "running short")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admitted-but-unbatched bound per model; "
                            "beyond it requests are shed with 429")
    serve.add_argument("--workers-per-model", type=int, default=1,
                       help="batch workers (private arenas) per model")
    serve.add_argument("--timeout-ms", type=float, default=30_000.0,
                       help="default server-side request deadline")
    serve.add_argument("--slo-p99-ms", type=float, default=None,
                       help="p99 latency target judged by serve-report")
    serve.add_argument("--run-dir", default=None,
                       help="write serve_stats.json here on shutdown "
                            "(default runs/serve)")
    serve.add_argument("--bench", action="store_true",
                       help="skip the server: run the deterministic "
                            "load generator and append to "
                            "BENCH_serve.json")
    serve.add_argument("--bench-requests", type=int, default=256)
    serve.add_argument("--bench-clients", type=int, default=8)
    serve.add_argument("--bench-out", default=None,
                       help="bench log path (default BENCH_serve.json "
                            "at the repo root)")

    serve_report = commands.add_parser(
        "serve-report",
        help="latency/SLO report for a drained serving run")
    serve_report.add_argument(
        "source", help="serving run directory or serve_stats.json path")
    return parser


def default_trace_dir(config: SearchConfig) -> str:
    """Deterministic run-directory name for ``--trace`` without a path."""
    return (f"runs/{config.mode.name}-{config.dataset}-"
            f"{config.scale.name}-seed{config.seed}")


def _resumed_search_inputs(args: argparse.Namespace):
    """(config, dataset) restored from the ``--resume`` checkpoint.

    The checkpoint is the source of truth for a resumed run: flags like
    ``--mode`` or ``--seed`` are ignored so the resumed search cannot
    silently diverge from the interrupted one.
    """
    from .data.synthetic import make_synthetic_dataset
    from .nas.results import config_from_dict
    from .resilience.checkpoint import load_checkpoint
    checkpoint = load_checkpoint(args.resume)
    config = config_from_dict(checkpoint.config)
    if checkpoint.dataset_spec is None:
        raise SystemExit(
            f"checkpoint at {args.resume} records no dataset spec; "
            "cannot reconstruct the dataset for a resumed run")
    dataset = make_synthetic_dataset(**checkpoint.dataset_spec)
    return config, dataset


def cmd_search(args: argparse.Namespace) -> int:
    if args.resume:
        config, dataset = _resumed_search_inputs(args)
        scale = config.scale
    else:
        scale = get_scale(args.scale)
        ref_size = args.ref_size if args.ref_size is not None else \
            REF_SIZE[args.dataset]
        config = SearchConfig(
            dataset=args.dataset, mode=get_mode(args.mode), scale=scale,
            scalarization=ScalarizationConfig(ref_accuracy=args.ref_acc,
                                              ref_model_size=ref_size),
            seed=args.seed, policies_per_trial=args.policies_per_trial)
        dataset = load_dataset(args.dataset, n_train=scale.n_train,
                               n_test=scale.n_test,
                               image_size=scale.image_size, seed=args.seed)
    reporter = ConsoleReporter(quiet=args.quiet)
    verb = "resuming" if args.resume else "running"
    reporter.info(f"{verb} {config.describe()}")
    progress = None if args.quiet else reporter.trial

    from .parallel import RetryPolicy, default_workers
    workers = args.workers if args.workers is not None else default_workers()
    retry_policy = None
    if args.trial_timeout is not None:
        import dataclasses
        timeout = args.trial_timeout if args.trial_timeout > 0 else None
        retry_policy = dataclasses.replace(RetryPolicy.from_env(),
                                           trial_timeout_s=timeout)
    nas = BOMPNAS(config, dataset, progress=progress)
    tracer = None
    if args.trace or args.trace_dir or args.profile:
        trace_dir = args.trace_dir or default_trace_dir(config)
        tracer = RunTracer(trace_dir)
        reporter.info(f"tracing to {tracer.path}")
    from .obs.profile import PROFILE_ENV
    saved_profile_env = os.environ.get(PROFILE_ENV)
    if args.profile:
        # the search loop reads BOMP_PROFILE when tracing is on, and the
        # mode rides to pool workers through TrialSpec.profile
        os.environ[PROFILE_ENV] = args.profile
        reporter.info(f"profiling ({args.profile} mode)")
    try:
        result = nas.run(final_training=not args.no_final_training,
                         workers=workers, batch_size=args.trial_batch,
                         tracer=tracer,
                         checkpoint_dir=args.checkpoint_dir,
                         resume_from=args.resume,
                         retry_policy=retry_policy, reporter=reporter)
    finally:
        if args.profile:
            if saved_profile_env is None:
                os.environ.pop(PROFILE_ENV, None)
            else:
                os.environ[PROFILE_ENV] = saved_profile_env
        if tracer is not None:
            tracer.close()
    reporter.emit(result.summary())
    if args.out:
        result.save(args.out)
        reporter.emit(f"result written to {args.out}")
    if tracer is not None:
        reporter.emit(f"event log written to {tracer.path} "
                      f"(render with: repro report {tracer.run_dir})")
        if args.profile:
            reporter.emit(f"profile recorded (render with: repro profile "
                          f"{tracer.run_dir})")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    reporter = ConsoleReporter()
    if args.artifact not in PAPER_ARTIFACTS:
        path = Path(args.artifact)
        if path.is_dir() or path.suffix == ".jsonl":
            if not (path if path.suffix == ".jsonl"
                    else path / EVENTS_FILENAME).exists():
                from .serve.daemon import STATS_FILENAME
                if path.is_dir() and (path / STATS_FILENAME).exists():
                    # a serving run dir, not a traced search run
                    return cmd_serve_report(
                        argparse.Namespace(source=str(path)))
                reporter.emit(f"no {EVENTS_FILENAME} under {path}; was the "
                              "search run with --trace?")
                return 1
            from .obs.report import write_report
            _, text = write_report(path, svg_out=args.svg_out)
            reporter.emit(text)
            if args.svg_out:
                reporter.emit(f"SVG written to {args.svg_out}")
            return 0
        raise SystemExit(
            f"unknown artifact {args.artifact!r}: expected one of "
            f"{', '.join(PAPER_ARTIFACTS)} or a traced run directory")
    from .experiments import figures, tables
    if args.artifact.startswith("table"):
        if args.artifact == "table1":
            _, text = tables.table1()
        else:
            ctx = ExperimentContext(args.scale, seed=args.seed,
                                    workers=args.workers)
            _, text = getattr(tables, args.artifact)(ctx)
        reporter.emit(text)
        return 0
    ctx = ExperimentContext(args.scale, seed=args.seed, workers=args.workers)
    data, text = getattr(figures, args.artifact)(ctx)
    reporter.emit(text)
    if args.svg_out:
        from .experiments.svg import figure_to_svg
        figure_to_svg(data, args.artifact.replace("fig", "Figure "),
                      path=args.svg_out)
        reporter.emit(f"SVG written to {args.svg_out}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    reporter = ConsoleReporter()
    result = SearchResult.load(args.result)
    reporter.emit(result.summary())
    reporter.emit("\ncandidate Pareto front (accuracy, size kB):")
    for accuracy, size_kb in result.candidate_front():
        reporter.emit(f"  {accuracy:.3f}  {size_kb:9.2f}")
    return 0


def cmd_space(args: argparse.Namespace) -> int:
    ConsoleReporter().emit(SearchSpace(args.dataset).summary())
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    reporter = ConsoleReporter()
    from .infer import ArtifactError, export_run, save_artifact
    from .quant.export import exported_size_kb
    try:
        artifact, final = export_run(args.source, trial_index=args.trial,
                                     force_qaft=args.force_qaft or None)
    except ArtifactError as exc:
        raise SystemExit(f"export failed: {exc}")
    source = Path(args.source)
    out = args.out or str(
        (source if source.is_dir() else source.parent)
        / f"model-trial{final.trial_index}.bomp")
    save_artifact(artifact, out)
    reporter.emit(f"exported trial #{final.trial_index} to {out}")
    reporter.emit(f"  fake-quant accuracy: {final.accuracy:.3f}")
    if final.deployed_accuracy is not None:
        reporter.emit(f"  integer-engine accuracy: "
                      f"{final.deployed_accuracy:.3f}")
    reporter.emit(f"  container: "
                  f"{exported_size_kb(artifact.container):.2f} kB "
                  f"(analytic {final.size_kb:.2f} kB)")
    reporter.emit(f"run with: repro infer {out}")
    return 0


def cmd_infer(args: argparse.Namespace) -> int:
    reporter = ConsoleReporter()
    from .infer import (ArtifactError, check_parity, deployment_report,
                        format_report, load_artifact_cached)
    try:
        cached = load_artifact_cached(args.artifact)
        artifact = cached.artifact
        model = artifact.rebuild()
    except (ArtifactError, OSError, ValueError) as exc:
        raise SystemExit(f"cannot load artifact: {exc}")
    program = cached.program
    reporter.emit(repr(program))
    reporter.emit(format_report(deployment_report(program)))
    from .infer.plan import plan_arena
    reporter.emit(plan_arena(program.stages).describe())
    x, y = artifact.test_set()
    if args.limit is not None:
        x, y = x[:args.limit], y[:args.limit]
    accuracy = program.accuracy(x, y, batch_size=args.batch_size)
    reporter.emit(f"deployed top-1 accuracy on {x.shape[0]} test images: "
                  f"{accuracy:.3f}")
    if args.parity:
        report = check_parity(model, program, x[:args.batch_size])
        reporter.emit(report.format())
        if not report.ok():
            reporter.emit("PARITY FAILED")
            return 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    reporter = ConsoleReporter()
    from .obs.profreport import flame_svg, load_profile, render_hotspots
    path = Path(args.run_dir)
    view = load_profile(path)
    reporter.emit(f"profile - {view.source}")
    reporter.emit(render_hotspots(view, top_n=args.top))
    if not view.has_profile:
        return 1
    if args.svg_out != "none":
        run_dir = path if path.is_dir() else path.parent
        svg_path = Path(args.svg_out) if args.svg_out else \
            run_dir / "flame.svg"
        flame = flame_svg(view.events)
        if flame is not None:
            svg_path.parent.mkdir(parents=True, exist_ok=True)
            svg_path.write_text(flame)
            reporter.emit(f"flame SVG written to {svg_path}")
    return 0


def _parse_model_args(pairs: List[str]) -> List[tuple]:
    models = []
    for pair in pairs:
        name, sep, path = pair.partition("=")
        if not sep or not name or not path:
            raise SystemExit(f"--model wants NAME=PATH, got {pair!r}")
        models.append((name, path))
    return models


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    reporter = ConsoleReporter()
    from .serve import ServeConfig, ServeDaemon
    from .serve.report import build_report, render_serve_report
    models = _parse_model_args(args.model)
    if args.bench:
        from .serve.bench import (append_bench_record, default_bench_path,
                                  measure_serving)
        record = measure_serving(
            artifact_path=Path(models[0][1]) if models else None,
            n_requests=args.bench_requests, n_clients=args.bench_clients,
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            queue_depth=args.queue_depth)
        out = Path(args.bench_out) if args.bench_out \
            else default_bench_path()
        append_bench_record(out, record)
        reporter.emit(
            f"sequential {record['seq_ips']} img/s, "
            f"{args.bench_clients} clients {record['conc_ips']} img/s "
            f"(x{record['batch_speedup']}, mean batch "
            f"{record['mean_batch']}); p50 {record['p50_ms']} ms, "
            f"p99 {record['p99_ms']} ms")
        reporter.emit(f"bench record appended to {out}")
        return 0

    config = ServeConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, queue_depth=args.queue_depth,
        workers_per_model=args.workers_per_model,
        default_timeout_ms=args.timeout_ms, slo_p99_ms=args.slo_p99_ms,
        run_dir=args.run_dir or "runs/serve")
    daemon = ServeDaemon(config)
    for name, path in models:
        runtime = daemon.load_model(name, path)
        info = runtime.entry.describe()
        reporter.emit(f"loaded {name}: {path} "
                      f"(input {info['input_shape']}, "
                      f"{info['num_classes']} classes)")
    host, port = daemon.start()
    reporter.emit(f"serving on http://{host}:{port} "
                  f"(max_batch={config.max_batch}, "
                  f"max_wait={config.max_wait_ms}ms, "
                  f"queue_depth={config.queue_depth})")
    reporter.emit("SIGTERM/Ctrl-C drains and writes "
                  f"{config.run_dir}/serve_stats.json")

    def _drain(signum, frame):
        daemon.request_shutdown()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    daemon.wait()
    reporter.emit("draining...")
    daemon.shutdown(drain=True)
    reporter.emit(render_serve_report(build_report(config.run_dir)))
    return 0


def cmd_serve_report(args: argparse.Namespace) -> int:
    reporter = ConsoleReporter()
    from .serve.report import (ServeStatsError, build_report,
                               render_serve_report)
    try:
        report = build_report(args.source)
    except ServeStatsError as exc:
        raise SystemExit(str(exc))
    reporter.emit(render_serve_report(report))
    return 0 if report.ok() else 1


COMMANDS = {
    "search": cmd_search,
    "report": cmd_report,
    "inspect": cmd_inspect,
    "space": cmd_space,
    "export": cmd_export,
    "infer": cmd_infer,
    "profile": cmd_profile,
    "serve": cmd_serve,
    "serve-report": cmd_serve_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
