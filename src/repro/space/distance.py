"""Edit distances between candidates, for the GP surrogate kernel.

Following AutoKeras (Jin et al., 2019), the surrogate model measures
similarity between candidates through an edit-distance-like metric.  Here a
genome is embedded as a normalized ordinal vector (each gene's index in its
choice menu, scaled to [0, 1]); the *edit distance* between two genomes is
the weighted L1 distance between embeddings — the total normalized amount
of menu-stepping needed to turn one genome into the other.

Being an L1 metric on a product space, it is a true metric (symmetry,
identity, triangle inequality), and the exponential kernel over it is
positive semi-definite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .genome import MixedPrecisionGenome
from .space import SearchSpace


class GenomeDistance:
    """Weighted edit distance between mixed-precision genomes.

    Args:
        space: the search space providing the ordinal encoding.
        policy_weight: relative weight of quantization-policy coordinates
            against architecture coordinates.  The paper observes that
            quantization adds regularity BO can exploit; a weight < 1 keeps
            architecture changes dominant in the kernel.
    """

    def __init__(self, space: SearchSpace, policy_weight: float = 0.5) -> None:
        if policy_weight < 0:
            raise ValueError("policy_weight must be non-negative")
        self.space = space
        self.policy_weight = policy_weight
        n_arch = 4 * len(space.blocks) + 1
        n_policy = len(space.slot_names)
        weights = np.concatenate([
            np.ones(n_arch), np.full(n_policy, policy_weight)])
        # normalize so the maximum possible distance is 1
        self._weights = weights / weights.sum()

    def encode(self, genome: MixedPrecisionGenome) -> np.ndarray:
        return self.space.encode(genome)

    def distance(self, a: MixedPrecisionGenome,
                 b: MixedPrecisionGenome) -> float:
        return self.distance_from_vectors(self.encode(a), self.encode(b))

    def distance_from_vectors(self, va: np.ndarray, vb: np.ndarray) -> float:
        if va.shape != vb.shape:
            raise ValueError("encoding dimension mismatch")
        return float((self._weights * np.abs(va - vb)).sum())

    def pairwise(self, vectors_a: np.ndarray,
                 vectors_b: Optional[np.ndarray] = None) -> np.ndarray:
        """Distance matrix between two stacks of encodings ``(n, d)``."""
        if vectors_b is None:
            vectors_b = vectors_a
        diff = np.abs(vectors_a[:, None, :] - vectors_b[None, :, :])
        return (diff * self._weights).sum(axis=2)

    def __call__(self, a: MixedPrecisionGenome,
                 b: MixedPrecisionGenome) -> float:
        return self.distance(a, b)
