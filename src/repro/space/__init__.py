"""The BOMP-NAS search space (Table I) and genome machinery."""

from .builder import (build_model, count_macs, describe_model,
                      min_input_size, scaled_width, stem_channels)
from .distance import GenomeDistance
from .genome import ArchGenome, BlockGenes, MixedPrecisionGenome
from .graph import genome_to_graph, graph_stats, model_to_graph, to_dot
from .space import (CIFAR10_WIDTH_CHOICES, CIFAR100_WIDTH_CHOICES,
                    CONV2_FILTER_CHOICES, EXPANSION_CHOICES, KERNEL_CHOICES,
                    MOBILENETV2_BASE_WIDTHS, REPETITION_CHOICES,
                    STRIDED_BLOCKS, BlockSpace, SearchSpace,
                    quantization_slot_names)

__all__ = [
    "SearchSpace", "BlockSpace", "quantization_slot_names",
    "ArchGenome", "BlockGenes", "MixedPrecisionGenome",
    "build_model", "count_macs", "describe_model", "min_input_size",
    "scaled_width", "stem_channels",
    "GenomeDistance",
    "model_to_graph", "genome_to_graph", "graph_stats", "to_dot",
    "MOBILENETV2_BASE_WIDTHS", "CIFAR10_WIDTH_CHOICES",
    "CIFAR100_WIDTH_CHOICES", "KERNEL_CHOICES", "EXPANSION_CHOICES",
    "REPETITION_CHOICES", "CONV2_FILTER_CHOICES", "STRIDED_BLOCKS",
]
