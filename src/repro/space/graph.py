"""Architecture graphs: genome -> networkx DAG, analysis, DOT export.

Gives downstream users a structural view of a candidate: one node per
layer with parameter/MAC annotations, edges following the data flow
(including residual skip edges).  Useful for inspecting what the search
found and for exporting to graphviz.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from ..nn.blocks import ConvBNReLU, InvertedBottleneck
from ..nn.conv import Conv2D, DepthwiseConv2D
from ..nn.layers import Dense, GlobalAvgPool2D
from ..nn.network import Sequential
from .builder import build_model
from .genome import ArchGenome


def model_to_graph(model: Sequential) -> nx.DiGraph:
    """Build a layer-level DAG of a built model.

    Node attributes: ``kind``, ``params``, ``quant_slot`` (when tagged).
    Residual bottlenecks contribute a skip edge bypassing their block.
    """
    graph = nx.DiGraph()
    graph.add_node("input", kind="input", params=0)
    previous = "input"
    for block in model.layers:
        if isinstance(block, InvertedBottleneck):
            entry = previous
            for conv in block.conv_layers():
                name = conv.name
                graph.add_node(name, kind=type(conv).__name__,
                               params=conv.num_parameters(),
                               quant_slot=getattr(conv, "quant_slot", None))
                graph.add_edge(previous, name)
                previous = name
            if block.use_residual:
                graph.add_edge(entry, previous, skip=True)
        elif isinstance(block, ConvBNReLU):
            name = block.conv.name
            graph.add_node(name, kind="Conv2D",
                           params=block.num_parameters(),
                           quant_slot=getattr(block.conv, "quant_slot",
                                              None))
            graph.add_edge(previous, name)
            previous = name
        elif isinstance(block, (Conv2D, DepthwiseConv2D, Dense)):
            graph.add_node(block.name, kind=type(block).__name__,
                           params=block.num_parameters(),
                           quant_slot=getattr(block, "quant_slot", None))
            graph.add_edge(previous, block.name)
            previous = block.name
        elif isinstance(block, GlobalAvgPool2D):
            graph.add_node(block.name, kind="GlobalAvgPool2D", params=0)
            graph.add_edge(previous, block.name)
            previous = block.name
        # activation/flatten layers are structural no-ops in the DAG
    graph.add_node("output", kind="output", params=0)
    graph.add_edge(previous, "output")
    return graph


def genome_to_graph(arch: ArchGenome, num_classes: int = 10) -> nx.DiGraph:
    """Build the DAG of a genome without keeping the model around."""
    return model_to_graph(build_model(arch, num_classes))


def graph_stats(graph: nx.DiGraph) -> Dict[str, float]:
    """Structural summary: depth, width, skip count, parameter totals."""
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("architecture graph must be a DAG")
    depth = nx.dag_longest_path_length(graph)
    skips = sum(1 for _, _, d in graph.edges(data=True) if d.get("skip"))
    params = sum(d.get("params", 0) for _, d in graph.nodes(data=True))
    conv_nodes = [n for n, d in graph.nodes(data=True)
                  if d.get("kind") in ("Conv2D", "DepthwiseConv2D")]
    return {
        "depth": float(depth),
        "n_nodes": float(graph.number_of_nodes()),
        "n_skip_edges": float(skips),
        "total_params": float(params),
        "n_convolutions": float(len(conv_nodes)),
    }


def to_dot(graph: nx.DiGraph) -> str:
    """Graphviz DOT rendering (no pygraphviz dependency needed)."""
    lines = ["digraph architecture {", "  rankdir=TB;",
             '  node [shape=box, fontsize=10];']
    for node, data in graph.nodes(data=True):
        label = node
        if data.get("params"):
            label += f"\\n{data['params']} params"
        if data.get("quant_slot"):
            label += f"\\nslot={data['quant_slot']}"
        lines.append(f'  "{node}" [label="{label}"];')
    for src, dst, data in graph.edges(data=True):
        style = ' [style=dashed, label="skip"]' if data.get("skip") else ""
        lines.append(f'  "{src}" -> "{dst}"{style};')
    lines.append("}")
    return "\n".join(lines)
