"""Build trainable models from architecture genomes.

Implements the CIFAR variant of MobileNetV2 described in Section III: the
stem keeps full resolution and the two resolution reductions happen at the
first repetition of the bottlenecks following positions 4 and 6 (blocks 5
and 7) via strided depthwise convolutions.  When a strided block has zero
repetitions its reduction is deferred to the next present bottleneck.

Every quantizable layer is tagged with its ``quant_slot`` so that
:func:`repro.quant.apply.apply_policy` can map a 23-slot policy onto any
architecture in the space; all repetitions of a block share its slots.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn.blocks import ConvBNReLU, InvertedBottleneck
from ..nn.conv import Conv2D, DepthwiseConv2D
from ..nn.layers import Dense, GlobalAvgPool2D
from ..nn.module import Module
from ..nn.network import Sequential
from .genome import ArchGenome
from .space import MOBILENETV2_BASE_WIDTHS, STRIDED_BLOCKS


def scaled_width(base: int, multiplier: float) -> int:
    """Channel count after applying a width multiplier (at least 1)."""
    if base <= 0:
        raise ValueError("base width must be positive")
    if multiplier <= 0:
        raise ValueError("width multiplier must be positive")
    return max(1, int(round(base * multiplier)))


def stem_channels(arch: ArchGenome) -> int:
    """Stem width, scaled by the first bottleneck's width multiplier.

    MobileNetV2's stem has 32 channels under a *global* multiplier; with
    per-block multipliers we scale the stem by block 1's multiplier (floor
    of 4 channels) so that tiny-width genomes yield proportionally tiny
    stems — necessary for the paper's few-kB models to exist in the space.
    """
    return max(4, int(round(32 * arch.blocks[0].width_multiplier)))


def build_model(arch: ArchGenome, num_classes: int,
                input_channels: int = 3,
                rng: Optional[np.random.Generator] = None,
                name: str = "candidate") -> Sequential:
    """Instantiate a genome as a trainable :class:`Sequential` network."""
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    rng = rng if rng is not None else np.random.default_rng(0)
    layers: List[Module] = []

    stem_ch = stem_channels(arch)
    stem = ConvBNReLU(input_channels, stem_ch, kernel=3, stride=1,
                      rng=rng, name="stem")
    stem.conv.quant_slot = "stem"
    layers.append(stem)

    prev_ch = stem_ch
    pending_strides = 0
    for index, genes in enumerate(arch.blocks, start=1):
        if index in STRIDED_BLOCKS:
            pending_strides += 1
        if genes.repetitions == 0:
            continue
        out_ch = scaled_width(MOBILENETV2_BASE_WIDTHS[index - 1],
                              genes.width_multiplier)
        for rep in range(genes.repetitions):
            stride = 1
            if rep == 0 and pending_strides > 0:
                stride = 2
                pending_strides -= 1
            block = InvertedBottleneck(
                in_channels=prev_ch, out_channels=out_ch,
                kernel=genes.kernel, expansion=genes.expansion,
                stride=stride, rng=rng, name=f"ib{index}_r{rep}")
            _tag_block(block, index)
            layers.append(block)
            prev_ch = out_ch

    head = ConvBNReLU(prev_ch, arch.conv2_filters, kernel=1, stride=1,
                      rng=rng, name="conv2")
    head.conv.quant_slot = "conv2"
    layers.append(head)
    layers.append(GlobalAvgPool2D())
    classifier = Dense(arch.conv2_filters, num_classes, rng=rng,
                       name="classifier")
    classifier.quant_slot = "classifier"
    layers.append(classifier)
    return Sequential(layers, name=name)


def _tag_block(block: InvertedBottleneck, index: int) -> None:
    """Assign quantization slots to a bottleneck's convolutions."""
    if block.expand is not None:
        block.expand.conv.quant_slot = f"ib{index}.expand"
    block.depthwise.quant_slot = f"ib{index}.dw"
    block.project.quant_slot = f"ib{index}.project"


def min_input_size(arch: ArchGenome) -> int:
    """Smallest square input that survives both stride-2 reductions."""
    # two stride-2 stages -> input must be at least 4 so the final feature
    # map is non-empty; SAME padding handles any kernel size.
    return 4


def count_macs(model: Sequential, input_hw: Tuple[int, int],
               input_channels: int = 3) -> int:
    """Exact multiply-accumulate count for one image.

    Walks the network tracking spatial dimensions and queries each
    convolution's analytic ``macs``; dense layers contribute
    ``in_features * out_features``.
    """
    h, w = input_hw
    if h <= 0 or w <= 0:
        raise ValueError("input size must be positive")
    total = 0
    for module in model.modules():
        if isinstance(module, (Conv2D, DepthwiseConv2D)):
            total += module.macs(h, w)
            if module.stride > 1:
                h = -(-h // module.stride)
                w = -(-w // module.stride)
        elif isinstance(module, Dense):
            total += module.macs()
    return total


def describe_model(model: Sequential) -> str:
    """One-line-per-layer description with quantization slots."""
    lines = []
    for module in model.modules():
        slot = getattr(module, "quant_slot", None)
        if slot is not None:
            lines.append(f"{module!r}  slot={slot}")
    return "\n".join(lines)
