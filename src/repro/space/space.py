"""The Table I search space around MobileNetV2.

Encodes every degree of freedom of the paper's search space, its seed
values (bold in Table I), exact cardinality computation, uniform random
sampling, and the mutation/crossover operators used both by the BO
acquisition optimizer and the evolutionary baselines.

Cardinalities (computed exactly by :meth:`SearchSpace.num_architectures`
etc.): 3.96e19 architectures x 1.19e16 policies = 4.72e35 joint candidates.
The paper's abstract-level figure of 4.73e39 for the joint space is
inconsistent with its own factor counts and is treated as a typo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quant.policy import DEFAULT_BITWIDTH_CHOICES, QuantizationPolicy
from .genome import ArchGenome, BlockGenes, MixedPrecisionGenome

#: MobileNetV2 base output channels of the seven inverted bottlenecks.
MOBILENETV2_BASE_WIDTHS = (16, 24, 32, 64, 96, 160, 320)

#: Width-multiplier menus per dataset (Section III).
CIFAR10_WIDTH_CHOICES = (0.01, 0.05, 0.1, 0.2, 0.3)
CIFAR100_WIDTH_CHOICES = (0.25, 0.50, 0.75, 1.00, 1.30)

KERNEL_CHOICES = (2, 3, 4, 5, 6, 7)
EXPANSION_CHOICES = (1, 2, 3, 4, 5, 6)
REPETITION_CHOICES = (0, 1, 2, 3, 4, 5)
CONV2_FILTER_CHOICES = (128, 256, 512, 1024, 1280)

#: Bottlenecks whose first repetition performs the resolution reduction
#: ("after bottlenecks 4 and 6", Section III / Elsken et al.).
STRIDED_BLOCKS = (5, 7)


@dataclass(frozen=True)
class BlockSpace:
    """Choice menus for one inverted bottleneck."""

    name: str
    kernel_choices: Tuple[int, ...]
    width_choices: Tuple[float, ...]
    expansion_choices: Tuple[int, ...]
    repetition_choices: Tuple[int, ...]
    seed: BlockGenes = field(compare=False)

    def num_choices(self) -> int:
        return (len(self.kernel_choices) * len(self.width_choices)
                * len(self.expansion_choices) * len(self.repetition_choices))

    def sample(self, rng: np.random.Generator) -> BlockGenes:
        return BlockGenes(
            kernel=int(rng.choice(self.kernel_choices)),
            width_multiplier=float(rng.choice(self.width_choices)),
            expansion=int(rng.choice(self.expansion_choices)),
            repetitions=int(rng.choice(self.repetition_choices)))

    def validate(self, genes: BlockGenes) -> None:
        if genes.kernel not in self.kernel_choices:
            raise ValueError(f"{self.name}: kernel {genes.kernel} invalid")
        if genes.width_multiplier not in self.width_choices:
            raise ValueError(
                f"{self.name}: width {genes.width_multiplier} invalid")
        if genes.expansion not in self.expansion_choices:
            raise ValueError(
                f"{self.name}: expansion {genes.expansion} invalid")
        if genes.repetitions not in self.repetition_choices:
            raise ValueError(
                f"{self.name}: repetitions {genes.repetitions} invalid")


def _block_spaces(width_choices: Sequence[float]) -> Tuple[BlockSpace, ...]:
    """The seven per-bottleneck menus of Table I."""
    widths = tuple(width_choices)
    seed_width = widths[2]  # the bold (seed) width is the 3rd entry
    spaces: List[BlockSpace] = []
    # Inverted bottleneck 1: e and n are fixed to 1.
    spaces.append(BlockSpace(
        name="ib1", kernel_choices=KERNEL_CHOICES, width_choices=widths,
        expansion_choices=(1,), repetition_choices=(1,),
        seed=BlockGenes(3, seed_width, 1, 1)))
    # Inverted bottlenecks 2-6: fully searchable.
    for i in range(2, 7):
        spaces.append(BlockSpace(
            name=f"ib{i}", kernel_choices=KERNEL_CHOICES,
            width_choices=widths, expansion_choices=EXPANSION_CHOICES,
            repetition_choices=REPETITION_CHOICES,
            seed=BlockGenes(3, seed_width, 6, 1)))
    # Inverted bottleneck 7: repetitions fixed to 1.
    spaces.append(BlockSpace(
        name="ib7", kernel_choices=KERNEL_CHOICES, width_choices=widths,
        expansion_choices=EXPANSION_CHOICES, repetition_choices=(1,),
        seed=BlockGenes(3, seed_width, 6, 1)))
    return tuple(spaces)


def quantization_slot_names() -> List[str]:
    """The 23 quantization slots of the seed template.

    One slot per convolution role: the stem, ib1's depthwise + projection
    (ib1 has no expansion since e=1), expand/depthwise/project for ib2-7,
    the head convolution and the classifier.  Repetitions of a block share
    its slots.
    """
    slots = ["stem", "ib1.dw", "ib1.project"]
    for i in range(2, 8):
        slots.extend([f"ib{i}.expand", f"ib{i}.dw", f"ib{i}.project"])
    slots.extend(["conv2", "classifier"])
    return slots


class SearchSpace:
    """The joint architecture x quantization-policy space of Table I.

    Args:
        dataset: ``"cifar10"`` or ``"cifar100"`` — selects the width
            multiplier menu (the only difference between the two spaces).
        bitwidth_choices: weight bitwidth menu, ``(4..8)`` in the paper.
    """

    def __init__(self, dataset: str = "cifar10",
                 bitwidth_choices: Sequence[int] = DEFAULT_BITWIDTH_CHOICES
                 ) -> None:
        if dataset == "cifar10":
            width_choices = CIFAR10_WIDTH_CHOICES
        elif dataset == "cifar100":
            width_choices = CIFAR100_WIDTH_CHOICES
        else:
            raise ValueError(f"unknown dataset {dataset!r}")
        self.dataset = dataset
        self.width_choices = width_choices
        self.bitwidth_choices = tuple(bitwidth_choices)
        self.blocks = _block_spaces(width_choices)
        self.conv2_filter_choices = CONV2_FILTER_CHOICES
        self.slot_names = quantization_slot_names()

    # -- cardinality -----------------------------------------------------
    def num_architectures(self) -> int:
        total = len(self.conv2_filter_choices)
        for block in self.blocks:
            total *= block.num_choices()
        return total

    def num_policies(self) -> int:
        return len(self.bitwidth_choices) ** len(self.slot_names)

    def num_total(self) -> int:
        return self.num_architectures() * self.num_policies()

    # -- seed -------------------------------------------------------------
    def seed_arch(self) -> ArchGenome:
        """The seed architecture (bold entries of Table I): MobileNetV2."""
        return ArchGenome(
            blocks=tuple(b.seed for b in self.blocks),
            conv2_filters=1280)

    def seed_policy(self, bits: int = 8) -> QuantizationPolicy:
        """Homogeneous policy at ``bits`` (the seed bitwidth is 8)."""
        return QuantizationPolicy.homogeneous(
            self.slot_names, bits, allowed=self.bitwidth_choices)

    def seed_genome(self) -> MixedPrecisionGenome:
        return MixedPrecisionGenome(self.seed_arch(), self.seed_policy())

    # -- sampling ----------------------------------------------------------
    def random_arch(self, rng: np.random.Generator) -> ArchGenome:
        return ArchGenome(
            blocks=tuple(b.sample(rng) for b in self.blocks),
            conv2_filters=int(rng.choice(self.conv2_filter_choices)))

    def random_policy(self, rng: np.random.Generator) -> QuantizationPolicy:
        bits = {slot: int(rng.choice(self.bitwidth_choices))
                for slot in self.slot_names}
        return QuantizationPolicy(bits, allowed=self.bitwidth_choices)

    def random_genome(self, rng: np.random.Generator) -> MixedPrecisionGenome:
        return MixedPrecisionGenome(self.random_arch(rng),
                                    self.random_policy(rng))

    # -- validation ---------------------------------------------------------
    def validate(self, genome: MixedPrecisionGenome) -> None:
        """Raise ``ValueError`` if a genome is outside this space."""
        for block_space, genes in zip(self.blocks, genome.arch.blocks):
            block_space.validate(genes)
        if genome.arch.conv2_filters not in self.conv2_filter_choices:
            raise ValueError(
                f"conv2 filters {genome.arch.conv2_filters} invalid")
        policy = genome.policy.as_dict()
        if set(policy) != set(self.slot_names):
            raise ValueError("policy slots do not match this search space")
        for slot, bits in policy.items():
            if bits not in self.bitwidth_choices:
                raise ValueError(f"slot {slot}: bitwidth {bits} invalid")

    # -- mutation / crossover ------------------------------------------------
    def mutate_arch(self, arch: ArchGenome, rng: np.random.Generator,
                    n_mutations: int = 1) -> ArchGenome:
        """Randomly re-sample ``n_mutations`` architecture genes."""
        if n_mutations < 1:
            raise ValueError("n_mutations must be >= 1")
        blocks = [list(b.as_tuple()) for b in arch.blocks]
        conv2 = arch.conv2_filters
        # mutable gene coordinates: (block_idx, gene_idx) or ("conv2",)
        coords: List[Tuple] = []
        for bi, bs in enumerate(self.blocks):
            menus = (bs.kernel_choices, bs.width_choices,
                     bs.expansion_choices, bs.repetition_choices)
            for gi, menu in enumerate(menus):
                if len(menu) > 1:
                    coords.append((bi, gi))
        coords.append(("conv2",))
        chosen = rng.choice(len(coords), size=min(n_mutations, len(coords)),
                            replace=False)
        for ci in np.atleast_1d(chosen):
            coord = coords[int(ci)]
            if coord[0] == "conv2":
                conv2 = int(rng.choice(self.conv2_filter_choices))
            else:
                bi, gi = coord
                bs = self.blocks[bi]
                menus = (bs.kernel_choices, bs.width_choices,
                         bs.expansion_choices, bs.repetition_choices)
                blocks[bi][gi] = menus[gi][int(rng.integers(len(menus[gi])))]
        new_blocks = tuple(
            BlockGenes(int(b[0]), float(b[1]), int(b[2]), int(b[3]))
            for b in blocks)
        return ArchGenome(blocks=new_blocks, conv2_filters=conv2)

    def mutate_policy(self, policy: QuantizationPolicy,
                      rng: np.random.Generator,
                      n_mutations: int = 1) -> QuantizationPolicy:
        """Randomly re-sample ``n_mutations`` slot bitwidths."""
        if n_mutations < 1:
            raise ValueError("n_mutations must be >= 1")
        bits = policy.as_dict()
        slots = rng.choice(self.slot_names,
                           size=min(n_mutations, len(self.slot_names)),
                           replace=False)
        for slot in np.atleast_1d(slots):
            bits[str(slot)] = int(rng.choice(self.bitwidth_choices))
        return QuantizationPolicy(bits, allowed=self.bitwidth_choices)

    def mutate(self, genome: MixedPrecisionGenome, rng: np.random.Generator,
               n_mutations: int = 1,
               policy_fixed: bool = False) -> MixedPrecisionGenome:
        """Mutate a joint genome; gene picked uniformly over arch + policy.

        With ``policy_fixed`` only architecture genes mutate (used by the
        fixed-precision and post-NAS-quantization search modes).
        """
        arch, policy = genome.arch, genome.policy
        for _ in range(n_mutations):
            n_arch_genes = 4 * len(self.blocks) + 1
            n_policy_genes = 0 if policy_fixed else len(self.slot_names)
            pick = rng.integers(n_arch_genes + n_policy_genes)
            if pick < n_arch_genes:
                arch = self.mutate_arch(arch, rng)
            else:
                policy = self.mutate_policy(policy, rng)
        return MixedPrecisionGenome(arch, policy)

    def crossover(self, a: MixedPrecisionGenome, b: MixedPrecisionGenome,
                  rng: np.random.Generator) -> MixedPrecisionGenome:
        """Uniform crossover over blocks and policy slots."""
        blocks = tuple(
            a.arch.blocks[i] if rng.random() < 0.5 else b.arch.blocks[i]
            for i in range(len(self.blocks)))
        conv2 = (a.arch.conv2_filters if rng.random() < 0.5
                 else b.arch.conv2_filters)
        bits_a, bits_b = a.policy.as_dict(), b.policy.as_dict()
        bits = {slot: bits_a[slot] if rng.random() < 0.5 else bits_b[slot]
                for slot in self.slot_names}
        return MixedPrecisionGenome(
            ArchGenome(blocks=blocks, conv2_filters=conv2),
            QuantizationPolicy(bits, allowed=self.bitwidth_choices))

    # -- vector encoding (for GP kernels) -------------------------------------
    def encoding_dimension(self) -> int:
        return 4 * len(self.blocks) + 1 + len(self.slot_names)

    def encode(self, genome: MixedPrecisionGenome) -> np.ndarray:
        """Normalized ordinal encoding of a genome.

        Each gene becomes its index in the choice menu divided by
        ``len(menu) - 1`` (0 for singleton menus), so every coordinate lies
        in [0, 1] and the L1 distance between encodings is a normalized
        edit distance.  This is the representation the GP kernel sees.
        """
        values: List[float] = []
        for bs, genes in zip(self.blocks, genome.arch.blocks):
            menus = (bs.kernel_choices, bs.width_choices,
                     bs.expansion_choices, bs.repetition_choices)
            gene_values = genes.as_tuple()
            for menu, value in zip(menus, gene_values):
                values.append(_ordinal(menu, value))
        values.append(_ordinal(self.conv2_filter_choices,
                               genome.arch.conv2_filters))
        bits = genome.policy.as_dict()
        for slot in self.slot_names:
            values.append(_ordinal(self.bitwidth_choices, bits[slot]))
        return np.asarray(values, dtype=np.float64)

    def summary(self) -> str:
        """Render the Table I menus with cardinalities."""
        lines = [f"SearchSpace({self.dataset}):"]
        for bs in self.blocks:
            lines.append(
                f"  {bs.name}: k={list(bs.kernel_choices)} "
                f"a={list(bs.width_choices)} e={list(bs.expansion_choices)} "
                f"n={list(bs.repetition_choices)}")
        lines.append(f"  conv2 filters: {list(self.conv2_filter_choices)}")
        lines.append(f"  bitwidths: {list(self.bitwidth_choices)} over "
                     f"{len(self.slot_names)} slots")
        lines.append(f"  architectures: {self.num_architectures():.3e}")
        lines.append(f"  policies:      {self.num_policies():.3e}")
        lines.append(f"  joint:         {self.num_total():.3e}")
        return "\n".join(lines)


def _ordinal(menu: Sequence, value) -> float:
    """Index of ``value`` in ``menu`` normalized to [0, 1]."""
    try:
        index = list(menu).index(value)
    except ValueError:
        raise ValueError(f"value {value!r} not in menu {list(menu)}")
    if len(menu) == 1:
        return 0.0
    return index / (len(menu) - 1)
