"""Genome types for the joint architecture + quantization search space.

An :class:`ArchGenome` fixes the searchable architecture parameters of
Table I (per-bottleneck kernel size, width multiplier, expansion factor and
repetitions, plus the head convolution's filter count).  A
:class:`MixedPrecisionGenome` pairs an architecture with a
:class:`~repro.quant.policy.QuantizationPolicy`.  Genomes are immutable and
hashable so they can key caches and GP training sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..quant.policy import QuantizationPolicy


@dataclass(frozen=True)
class BlockGenes:
    """Searchable parameters of one inverted bottleneck."""

    kernel: int
    width_multiplier: float
    expansion: int
    repetitions: int

    def as_tuple(self) -> Tuple:
        return (self.kernel, self.width_multiplier, self.expansion,
                self.repetitions)


@dataclass(frozen=True)
class ArchGenome:
    """A complete architecture choice from the Table I space.

    ``blocks`` holds the seven inverted bottlenecks in order;
    ``conv2_filters`` is the filter count of the 1x1 head convolution.
    """

    blocks: Tuple[BlockGenes, ...]
    conv2_filters: int

    def __post_init__(self) -> None:
        if len(self.blocks) != 7:
            raise ValueError(
                f"expected 7 bottleneck blocks, got {len(self.blocks)}")
        if self.conv2_filters <= 0:
            raise ValueError("conv2_filters must be positive")

    def as_tuple(self) -> Tuple:
        return tuple(b.as_tuple() for b in self.blocks) + (self.conv2_filters,)

    def active_blocks(self) -> Tuple[int, ...]:
        """1-based indices of bottlenecks with at least one repetition."""
        return tuple(i + 1 for i, b in enumerate(self.blocks)
                     if b.repetitions > 0)

    def describe(self) -> str:
        parts = []
        for i, b in enumerate(self.blocks, start=1):
            parts.append(f"ib{i}(k={b.kernel}, a={b.width_multiplier}, "
                         f"e={b.expansion}, n={b.repetitions})")
        parts.append(f"conv2(f={self.conv2_filters})")
        return " ".join(parts)

    def __hash__(self) -> int:
        return hash(self.as_tuple())


@dataclass(frozen=True)
class MixedPrecisionGenome:
    """Joint (architecture, quantization policy) candidate — one BO point."""

    arch: ArchGenome
    policy: QuantizationPolicy

    def as_key(self) -> Tuple:
        return (self.arch.as_tuple(),
                tuple(sorted(self.policy.as_dict().items())))

    def bit_assignment(self) -> Dict[str, int]:
        return self.policy.as_dict()

    def __hash__(self) -> int:
        return hash(self.as_key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MixedPrecisionGenome):
            return NotImplemented
        return self.as_key() == other.as_key()
