"""Deterministic per-trial seeding.

Every trial draws all of its randomness (weight init, batch shuffling,
QAFT, policy mutations for ``policies_per_trial``) from an rng seeded by
``trial_seed(run_seed, trial_index)``.  Because the seed depends only on
the run seed and the trial's index — not on which worker evaluates it or
in which order trials complete — a parallel search reproduces a serial
one bit for bit.

The namespace constant keeps trial streams disjoint from the other
derived streams in the codebase (final training seeds with
``[config.seed, trial_index]`` directly).
"""

from __future__ import annotations

import numpy as np

#: namespace separating in-search trial streams from other derived streams
TRIAL_SEED_NAMESPACE = 0x7B0539

_UINT64_MASK = (1 << 64) - 1


def trial_seed(run_seed: int, trial_index: int) -> int:
    """A stable 64-bit seed for trial ``trial_index`` of run ``run_seed``."""
    if trial_index < 0:
        raise ValueError("trial_index must be non-negative")
    sequence = np.random.SeedSequence(
        [TRIAL_SEED_NAMESPACE, int(run_seed) & _UINT64_MASK,
         int(trial_index)])
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def trial_rng(run_seed: int, trial_index: int) -> np.random.Generator:
    """The generator driving all randomness of one trial."""
    return np.random.default_rng(trial_seed(run_seed, trial_index))
