"""Process-pool trial evaluation with a picklable worker protocol.

The engine maps :class:`TrialSpec`\\ s (genome + trial index + seed) to
lists of :class:`~repro.nas.trial.TrialResult`\\ s, either in-process
(``workers <= 1``) or on a ``multiprocessing`` pool.  Each worker builds
its evaluation state (dataset, search space, evaluator) exactly once —
from a small regeneration spec when the dataset carries one, so the
training arrays are never pickled per task — and caches it in module
globals for the lifetime of the pool.

Because trials are deterministically seeded (:mod:`repro.parallel.seeding`)
and results are consumed in spec order, the engine's output is identical
regardless of worker count, completion order, or whether the pool could be
created at all: on platforms without working multiprocessing the engine
degrades to serial in-process evaluation with a warning.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..data.datasets import Dataset
from ..obs.trace import TraceRecorder, get_recorder, use_recorder
from ..space.genome import MixedPrecisionGenome

if TYPE_CHECKING:  # pragma: no cover
    from ..nas.config import SearchConfig
    from ..nas.cost import CostModel
    from ..nas.search import BOMPNAS
    from ..nas.trial import TrialResult
    from ..space.space import SearchSpace

#: candidates proposed per BO/evolution ask round.  Deliberately NOT tied
#: to the worker count: the proposal schedule (and therefore the search
#: result) must be identical for any ``workers`` value, so worker count can
#: never leak into experiment cache keys.
DEFAULT_TRIAL_BATCH = 4

#: hard cap on the default worker count (diminishing returns past this for
#: the smoke/medium scales, and it bounds memory: each worker holds one
#: dataset + one model).
MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """Default worker count: available CPUs, capped at 8."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, MAX_DEFAULT_WORKERS))


class TrialEvaluationError(RuntimeError):
    """A worker failed to evaluate a trial; carries the worker traceback."""


@dataclass(frozen=True)
class TrialSpec:
    """Everything a worker needs to evaluate one candidate.

    The spec is deliberately tiny and picklable: the genome, the index the
    trial will occupy in the result list, and the pre-derived trial seed.
    The heavy, run-constant state (config, dataset, space) ships once per
    worker through the pool initializer, never per task.  ``trace`` asks
    the worker to collect span/metric events for this trial; it must never
    affect the results themselves (tracing reads clocks, not RNGs).
    """

    index: int
    genome: MixedPrecisionGenome
    seed: int
    trace: bool = False


@dataclass
class TrialOutcome:
    """What a worker sends back: results (plus trace events), or an error."""

    index: int
    results: Optional[List["TrialResult"]] = None
    error: Optional[str] = None
    events: Optional[List[Dict[str, Any]]] = None


@dataclass
class _WorkerPayload:
    """Run-constant state shipped once per worker via the initializer.

    ``dataset_spec`` (when the dataset carries regeneration provenance)
    takes precedence over ``dataset``: workers rebuild the arrays from the
    spec's seed instead of unpickling them.
    """

    config: "SearchConfig"
    dataset: Optional[Dataset]
    dataset_spec: Optional[Dict[str, Any]]
    cost_model: Optional["CostModel"]
    space: Optional["SearchSpace"]


# -- worker-side globals ----------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def _init_worker(payload: _WorkerPayload) -> None:
    """Pool initializer: stash the payload; build the evaluator lazily."""
    _WORKER_STATE["payload"] = payload
    _WORKER_STATE.pop("evaluator", None)


def _build_evaluator(payload: _WorkerPayload) -> "BOMPNAS":
    from ..nas.search import BOMPNAS
    dataset = payload.dataset
    if payload.dataset_spec is not None:
        from ..data.synthetic import make_synthetic_dataset
        dataset = make_synthetic_dataset(**payload.dataset_spec)
    if dataset is None:
        raise TrialEvaluationError("worker has neither dataset nor spec")
    return BOMPNAS(payload.config, dataset, cost_model=payload.cost_model,
                   space=payload.space)


def _evaluate_spec(evaluator: "BOMPNAS", spec: TrialSpec) -> TrialOutcome:
    """Evaluate one spec, collecting trace events when the spec asks.

    Shared by the worker task and the serial path so both produce the same
    outcome shape: per-trial events are collected in a private recorder
    and shipped back through the outcome, never written directly — the
    parent's recorder merges them in spec order into one stream.
    """
    if not spec.trace:
        results = evaluator.evaluate_candidate(spec.genome, spec.index,
                                               seed=spec.seed)
        return TrialOutcome(index=spec.index, results=results)
    recorder = TraceRecorder()
    with use_recorder(recorder):
        results = evaluator.evaluate_candidate(spec.genome, spec.index,
                                               seed=spec.seed)
    return TrialOutcome(index=spec.index, results=results,
                        events=recorder.events)


def _run_trial(spec: TrialSpec) -> TrialOutcome:
    """Worker task: evaluate one spec with the cached evaluator."""
    try:
        evaluator = _WORKER_STATE.get("evaluator")
        if evaluator is None:
            evaluator = _build_evaluator(_WORKER_STATE["payload"])
            _WORKER_STATE["evaluator"] = evaluator
        return _evaluate_spec(evaluator, spec)
    except Exception:  # noqa: BLE001 — ship the full traceback back
        return TrialOutcome(index=spec.index,
                            error=traceback.format_exc())


def _pick_start_method() -> str:
    """Prefer fork (cheap, copy-on-write dataset) where available."""
    override = os.environ.get("BOMP_MP_START")
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ValueError(
                f"BOMP_MP_START={override!r} unavailable; have {methods}")
        return override
    return "fork" if "fork" in methods else "spawn"


class TrialEngine:
    """Evaluates batches of trial specs, serial or on a process pool.

    Args:
        config: the run's search config (ships to workers).
        dataset: the run's dataset.  If it carries a regeneration ``spec``
            (see :class:`repro.data.datasets.Dataset`), workers rebuild it
            from the seed instead of unpickling the arrays.
        workers: pool size; ``<= 1`` means in-process serial evaluation.
        cost_model / space: optional evaluator collaborators, forwarded.
        evaluator: an existing in-process evaluator to reuse on the serial
            path (avoids rebuilding the search space).

    Use as a context manager; the pool (if any) is torn down on exit.
    """

    def __init__(self, config: "SearchConfig", dataset: Dataset,
                 workers: int = 1,
                 cost_model: Optional["CostModel"] = None,
                 space: Optional["SearchSpace"] = None,
                 evaluator: Optional["BOMPNAS"] = None) -> None:
        self.config = config
        self.dataset = dataset
        self.workers = max(1, int(workers))
        self.cost_model = cost_model
        self.space = space
        self._evaluator = evaluator
        self._pool = None

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "TrialEngine":
        if self.workers > 1:
            self._pool = self._try_start_pool()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    @property
    def parallel(self) -> bool:
        """True while a live process pool backs evaluation."""
        return self._pool is not None

    def _try_start_pool(self):
        payload = _WorkerPayload(
            config=self.config,
            dataset=None if self.dataset.spec is not None else self.dataset,
            dataset_spec=self.dataset.spec,
            cost_model=self.cost_model, space=self.space)
        try:
            context = multiprocessing.get_context(_pick_start_method())
            return context.Pool(self.workers, initializer=_init_worker,
                                initargs=(payload,))
        except Exception as exc:  # noqa: BLE001 — any failure → serial
            warnings.warn(
                f"multiprocessing unavailable ({exc!r}); "
                f"falling back to in-process serial evaluation",
                RuntimeWarning, stacklevel=2)
            return None

    # -- evaluation --------------------------------------------------------
    def _serial_evaluator(self) -> "BOMPNAS":
        if self._evaluator is None:
            from ..nas.search import BOMPNAS
            self._evaluator = BOMPNAS(self.config, self.dataset,
                                      cost_model=self.cost_model,
                                      space=self.space)
        return self._evaluator

    def evaluate(self, specs: List[TrialSpec]) -> List[List["TrialResult"]]:
        """Evaluate specs, returning result lists in spec order.

        Worker failures raise :class:`TrialEvaluationError` with the worker
        traceback; a broken pool (crashed worker, pickling failure) falls
        back to serial evaluation of the same specs, preserving results.
        """
        if not specs:
            return []
        submit_wall = time.time()
        batch_start = time.perf_counter()
        pooled = self._pool is not None
        if self._pool is not None:
            try:
                outcomes = self._pool.map(_run_trial, specs, chunksize=1)
            except Exception as exc:  # noqa: BLE001 — pool died mid-run
                warnings.warn(
                    f"process pool failed ({exc!r}); finishing serially",
                    RuntimeWarning, stacklevel=2)
                self.close()
                pooled = False
                outcomes = self._evaluate_serial(specs)
        else:
            outcomes = self._evaluate_serial(specs)
        batch_wall = time.perf_counter() - batch_start
        batches: List[List["TrialResult"]] = []
        recorder = get_recorder()
        for spec, outcome in zip(specs, outcomes):
            if outcome.error is not None:
                raise TrialEvaluationError(
                    f"trial {spec.index} failed in worker:\n{outcome.error}")
            recorder.ingest(outcome.events)
            batches.append(outcome.results)
        if recorder.enabled:
            self._record_pool_telemetry(outcomes, pooled=pooled,
                                        batch_wall=batch_wall,
                                        submit_wall=submit_wall)
        return batches

    def _record_pool_telemetry(self, outcomes: List[TrialOutcome],
                               pooled: bool, batch_wall: float,
                               submit_wall: float) -> None:
        """Emit per-batch pool health: queue wait, utilisation, skew.

        Task durations come from each outcome's trial span, so this works
        on both the pool and the serial fallback (tagged ``parallel``).
        """
        recorder = get_recorder()
        durations = []
        for outcome in outcomes:
            for event in outcome.events or ():
                if event.get("type") == "span" and \
                        event.get("kind") == "trial":
                    durations.append(float(event["dur_s"]))
                    # queue wait: submit -> worker picked the task up
                    recorder.observe(
                        "pool.queue_wait_s",
                        max(0.0, event["t_wall"] - submit_wall),
                        trial=event.get("trial"))
                    break
        if not durations:
            return
        for duration in durations:
            recorder.observe("pool.task_s", duration)
        workers = self.workers if pooled else 1
        busy = sum(durations)
        recorder.gauge("pool.batch_wall_s", batch_wall,
                       tasks=len(outcomes), workers=workers,
                       parallel=pooled)
        if batch_wall > 0:
            recorder.gauge("pool.utilisation",
                           min(1.0, busy / (workers * batch_wall)))
        mean_task = busy / len(durations)
        if mean_task > 0:
            recorder.gauge("pool.skew", max(durations) / mean_task)

    def _evaluate_serial(self, specs: List[TrialSpec]) -> List[TrialOutcome]:
        evaluator = self._serial_evaluator()
        outcomes = []
        for spec in specs:
            try:
                outcomes.append(_evaluate_spec(evaluator, spec))
            except Exception:  # noqa: BLE001 — symmetric with worker path
                outcomes.append(TrialOutcome(index=spec.index,
                                             error=traceback.format_exc()))
        return outcomes
