"""Fault-tolerant process-pool trial evaluation with a picklable protocol.

The engine maps :class:`TrialSpec`\\ s (genome + trial index + seed) to
lists of :class:`~repro.nas.trial.TrialResult`\\ s, either in-process
(``workers <= 1``) or on a :class:`concurrent.futures.ProcessPoolExecutor`.
Each worker builds its evaluation state (dataset, search space, evaluator)
exactly once — from a small regeneration spec when the dataset carries
one, so the training arrays are never pickled per task — and caches it in
module globals for the lifetime of the pool.

Because trials are deterministically seeded (:mod:`repro.parallel.seeding`)
and results are consumed in spec order, the engine's output is identical
regardless of worker count, completion order, or whether the pool could be
created at all — and, since PR 4, regardless of *worker failures*: a
:class:`RetryPolicy` governs per-trial timeouts, bounded retry with
exponential backoff on worker errors and corrupt outcomes, pool respawn
after crashes (``BrokenProcessPool``), and graceful degradation to serial
in-process evaluation when the pool repeatedly dies.  Every recovery
action is surfaced through :mod:`repro.obs` counters (``pool.retries``,
``pool.timeout_kills``, ``pool.respawns``, ``pool.degraded``) and the
console reporter.

The worker path hosts the deterministic fault-injection hooks of
:mod:`repro.resilience.faults` (``BOMP_FAULTS``), which is how the tier-1
test suite exercises each failure mode on demand.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..data.datasets import Dataset
from ..obs import profile
from ..obs.console import ConsoleReporter
from ..obs.trace import TraceRecorder, get_recorder, use_recorder
from ..resilience.faults import corrupt_outcome_due, inject_trial_fault
from ..space.genome import MixedPrecisionGenome

if TYPE_CHECKING:  # pragma: no cover
    from ..nas.config import SearchConfig
    from ..nas.cost import CostModel
    from ..nas.search import BOMPNAS
    from ..nas.trial import TrialResult
    from ..space.space import SearchSpace

#: candidates proposed per BO/evolution ask round.  Deliberately NOT tied
#: to the worker count: the proposal schedule (and therefore the search
#: result) must be identical for any ``workers`` value, so worker count can
#: never leak into experiment cache keys.
DEFAULT_TRIAL_BATCH = 4

#: hard cap on the default worker count (diminishing returns past this for
#: the smoke/medium scales, and it bounds memory: each worker holds one
#: dataset + one model).
MAX_DEFAULT_WORKERS = 8

#: default per-trial wall-clock budget before the pool is presumed hung.
#: Generous — even paper-scale trials finish well inside an hour — so it
#: only ever fires on a genuinely wedged worker.
DEFAULT_TRIAL_TIMEOUT_S = 3600.0


def default_workers() -> int:
    """Default worker count: available CPUs, capped at 8."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, MAX_DEFAULT_WORKERS))


class TrialEvaluationError(RuntimeError):
    """A worker failed to evaluate a trial; carries the worker traceback."""


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return float(value) if value else default


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine reacts to worker faults.

    Args:
        trial_timeout_s: per-trial wall-clock budget on the pool; a trial
            exceeding it is presumed hung, the pool is killed and respawned,
            and the trial retried.  ``None`` disables timeouts.  The serial
            path never times out (there is no second process to recover in).
        max_retries: bounded per-trial retries of *failed* outcomes (worker
            exceptions, corrupt results).  Exhaustion raises
            :class:`TrialEvaluationError` — a deterministic bug should fail
            the run, not loop forever.
        backoff_s: base of the exponential backoff slept before a retry or
            pool respawn (``backoff_s * 2**(attempt-1)``).
        max_pool_respawns: pool deaths (crash, timeout kill) tolerated over
            the engine's lifetime before it degrades to serial in-process
            evaluation for the remainder of the run.
    """

    trial_timeout_s: Optional[float] = DEFAULT_TRIAL_TIMEOUT_S
    max_retries: int = 2
    backoff_s: float = 0.05
    max_pool_respawns: int = 2

    def __post_init__(self) -> None:
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ValueError("trial_timeout_s must be positive or None")
        if self.max_retries < 0 or self.max_pool_respawns < 0:
            raise ValueError("retry/respawn budgets must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``BOMP_TRIAL_TIMEOUT`` / ``BOMP_MAX_RETRIES`` /
        ``BOMP_RETRY_BACKOFF`` / ``BOMP_MAX_POOL_RESPAWNS`` (<= 0 timeout
        disables it)."""
        timeout: Optional[float] = _env_float("BOMP_TRIAL_TIMEOUT",
                                              DEFAULT_TRIAL_TIMEOUT_S)
        if timeout is not None and timeout <= 0:
            timeout = None
        return cls(
            trial_timeout_s=timeout,
            max_retries=_env_int("BOMP_MAX_RETRIES", cls.max_retries),
            backoff_s=_env_float("BOMP_RETRY_BACKOFF", cls.backoff_s),
            max_pool_respawns=_env_int("BOMP_MAX_POOL_RESPAWNS",
                                       cls.max_pool_respawns))


@dataclass(frozen=True)
class TrialSpec:
    """Everything a worker needs to evaluate one candidate.

    The spec is deliberately tiny and picklable: the genome, the index the
    trial will occupy in the result list, and the pre-derived trial seed.
    The heavy, run-constant state (config, dataset, space) ships once per
    worker through the pool initializer, never per task.  ``trace`` asks
    the worker to collect span/metric events for this trial, and
    ``profile`` additionally activates a per-trial kernel profiler
    (``"time"`` or ``"alloc"``); neither may ever affect the results
    themselves (instrumentation reads clocks, not RNGs).
    """

    index: int
    genome: MixedPrecisionGenome
    seed: int
    trace: bool = False
    profile: Optional[str] = None


@dataclass
class TrialOutcome:
    """What a worker sends back: results (plus trace events), or an error."""

    index: int
    results: Optional[List["TrialResult"]] = None
    error: Optional[str] = None
    events: Optional[List[Dict[str, Any]]] = None


@dataclass
class _WorkerPayload:
    """Run-constant state shipped once per worker via the initializer.

    ``dataset_spec`` (when the dataset carries regeneration provenance)
    takes precedence over ``dataset``: workers rebuild the arrays from the
    spec's seed instead of unpickling them.
    """

    config: "SearchConfig"
    dataset: Optional[Dataset]
    dataset_spec: Optional[Dict[str, Any]]
    cost_model: Optional["CostModel"]
    space: Optional["SearchSpace"]


# -- worker-side globals ----------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def _init_worker(payload: _WorkerPayload) -> None:
    """Pool initializer: stash the payload; build the evaluator lazily."""
    _WORKER_STATE["payload"] = payload
    _WORKER_STATE.pop("evaluator", None)


def _build_evaluator(payload: _WorkerPayload) -> "BOMPNAS":
    from ..nas.search import BOMPNAS
    dataset = payload.dataset
    if payload.dataset_spec is not None:
        from ..data.synthetic import make_synthetic_dataset
        dataset = make_synthetic_dataset(**payload.dataset_spec)
    if dataset is None:
        raise TrialEvaluationError("worker has neither dataset nor spec")
    return BOMPNAS(payload.config, dataset, cost_model=payload.cost_model,
                   space=payload.space)


def _evaluate_spec(evaluator: "BOMPNAS", spec: TrialSpec) -> TrialOutcome:
    """Evaluate one spec, collecting trace events when the spec asks.

    Shared by the worker task and the serial path so both produce the same
    outcome shape: per-trial events are collected in a private recorder
    and shipped back through the outcome, never written directly — the
    parent's recorder merges them in spec order into one stream.  When the
    spec asks for profiling, a per-trial :class:`KernelProfiler` is
    activated around the evaluation (temporarily displacing any run-level
    profiler on the serial path, so kernel time is attributed per trial)
    and flushed into the same event list.
    """
    if not spec.trace and not spec.profile:
        results = evaluator.evaluate_candidate(spec.genome, spec.index,
                                               seed=spec.seed)
        return TrialOutcome(index=spec.index, results=results)
    recorder = TraceRecorder()
    with use_recorder(recorder):
        if spec.profile:
            profiler = profile.KernelProfiler(spec.profile)
            with profile.use_profiler(profiler):
                results = evaluator.evaluate_candidate(
                    spec.genome, spec.index, seed=spec.seed)
            profiler.flush_to(recorder, trial=spec.index)
        else:
            results = evaluator.evaluate_candidate(spec.genome, spec.index,
                                                   seed=spec.seed)
    return TrialOutcome(index=spec.index, results=results,
                        events=recorder.events)


def _run_trial(spec: TrialSpec) -> TrialOutcome:
    """Worker task: evaluate one spec with the cached evaluator.

    Hosts the deterministic fault-injection hooks: an injected ``crash``
    never returns, a ``hang`` sleeps into the engine's timeout, an
    ``error`` ships back as a normal worker-error outcome, and a
    ``corrupt`` fault replaces the real outcome with a structurally
    invalid one the engine must reject.
    """
    try:
        inject_trial_fault(spec.index)
        evaluator = _WORKER_STATE.get("evaluator")
        if evaluator is None:
            evaluator = _build_evaluator(_WORKER_STATE["payload"])
            _WORKER_STATE["evaluator"] = evaluator
        outcome = _evaluate_spec(evaluator, spec)
        if corrupt_outcome_due(spec.index):
            return TrialOutcome(index=spec.index, results=None, error=None)
        return outcome
    except Exception:  # noqa: BLE001 — ship the full traceback back
        return TrialOutcome(index=spec.index,
                            error=traceback.format_exc())


def _outcome_problem(spec: TrialSpec,
                     outcome: Any) -> Optional[str]:
    """Why ``outcome`` is unusable for ``spec`` (``None`` = it is fine).

    Catches worker errors *and* corrupt outcomes: wrong type, mismatched
    index, missing results, non-finite objective values.
    """
    if not isinstance(outcome, TrialOutcome):
        return (f"worker returned {type(outcome).__name__}, "
                "not a TrialOutcome")
    if outcome.error is not None:
        return outcome.error
    if outcome.index != spec.index:
        return (f"corrupt outcome: index {outcome.index} != "
                f"spec index {spec.index}")
    if not outcome.results:
        return "corrupt outcome: carries neither results nor an error"
    for result in outcome.results:
        if not (math.isfinite(result.score)
                and math.isfinite(result.accuracy)):
            return (f"corrupt outcome: non-finite objectives "
                    f"(score={result.score!r}, "
                    f"accuracy={result.accuracy!r})")
    return None


def _pick_start_method() -> str:
    """Prefer fork (cheap, copy-on-write dataset) where available."""
    override = os.environ.get("BOMP_MP_START")
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ValueError(
                f"BOMP_MP_START={override!r} unavailable; have {methods}")
        return override
    return "fork" if "fork" in methods else "spawn"


class TrialEngine:
    """Evaluates batches of trial specs, serial or on a process pool.

    Args:
        config: the run's search config (ships to workers).
        dataset: the run's dataset.  If it carries a regeneration ``spec``
            (see :class:`repro.data.datasets.Dataset`), workers rebuild it
            from the seed instead of unpickling the arrays.
        workers: pool size; ``<= 1`` means in-process serial evaluation.
        cost_model / space: optional evaluator collaborators, forwarded.
        evaluator: an existing in-process evaluator to reuse on the serial
            path (avoids rebuilding the search space).
        retry_policy: fault-handling policy (default: from the environment,
            see :meth:`RetryPolicy.from_env`).
        reporter: console reporter for recovery/diagnostic lines (default:
            a stderr reporter, so library users see pool failures without
            polluting stdout results).

    Use as a context manager; the pool (if any) is torn down on exit.
    """

    def __init__(self, config: "SearchConfig", dataset: Dataset,
                 workers: int = 1,
                 cost_model: Optional["CostModel"] = None,
                 space: Optional["SearchSpace"] = None,
                 evaluator: Optional["BOMPNAS"] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 reporter: Optional[ConsoleReporter] = None) -> None:
        self.config = config
        self.dataset = dataset
        self.workers = max(1, int(workers))
        self.cost_model = cost_model
        self.space = space
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy.from_env())
        self.reporter = (reporter if reporter is not None
                         else ConsoleReporter(stream=sys.stderr))
        self._evaluator = evaluator
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_deaths = 0
        self._degraded = False

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "TrialEngine":
        if self.workers > 1 and not self._degraded:
            self._pool = self._try_start_pool()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        self._kill_pool()

    @property
    def parallel(self) -> bool:
        """True while a live process pool backs evaluation."""
        return self._pool is not None

    @property
    def degraded(self) -> bool:
        """True once repeated pool deaths forced permanent serial mode."""
        return self._degraded

    def _try_start_pool(self) -> Optional[ProcessPoolExecutor]:
        payload = _WorkerPayload(
            config=self.config,
            dataset=None if self.dataset.spec is not None else self.dataset,
            dataset_spec=self.dataset.spec,
            cost_model=self.cost_model, space=self.space)
        try:
            context = multiprocessing.get_context(_pick_start_method())
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=_init_worker, initargs=(payload,))
        except Exception as exc:  # noqa: BLE001 — any failure → serial
            # surface the reason instead of swallowing it: console line,
            # obs counter (tagged with the cause), and the warning existing
            # callers already catch
            reason = f"{type(exc).__name__}: {exc}"
            self.reporter.info(
                f"process pool unavailable ({reason}); falling back to "
                "in-process serial evaluation")
            get_recorder().counter("pool.start_failures", reason=reason)
            warnings.warn(
                f"multiprocessing unavailable ({exc!r}); "
                f"falling back to in-process serial evaluation",
                RuntimeWarning, stacklevel=2)
            return None

    def _kill_pool(self) -> None:
        """Tear the pool down hard (workers may be hung or already dead)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already reaped
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 — executor already broken
            pass
        for process in processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover — SIGTERM-immune
                try:
                    process.kill()
                    process.join(timeout=1)
                except Exception:  # noqa: BLE001
                    pass

    def _pool_failed(self, reason: str) -> None:
        """Kill the pool and either respawn it or degrade to serial."""
        recorder = get_recorder()
        self._kill_pool()
        self._pool_deaths += 1
        if self._pool_deaths > self.retry_policy.max_pool_respawns:
            self._degraded = True
            recorder.counter("pool.degraded")
            message = (f"process pool died {self._pool_deaths} times "
                       f"(last: {reason}); degrading to in-process serial "
                       "evaluation for the rest of the run")
            self.reporter.info(message)
            warnings.warn(message, RuntimeWarning, stacklevel=3)
            return
        recorder.counter("pool.respawns")
        self.reporter.info(
            f"process pool failure ({reason}); respawning "
            f"(death {self._pool_deaths}/"
            f"{self.retry_policy.max_pool_respawns} tolerated)")
        time.sleep(self.retry_policy.backoff_s
                   * (2 ** (self._pool_deaths - 1)))
        self._pool = self._try_start_pool()

    # -- evaluation --------------------------------------------------------
    def _serial_evaluator(self) -> "BOMPNAS":
        if self._evaluator is None:
            from ..nas.search import BOMPNAS
            self._evaluator = BOMPNAS(self.config, self.dataset,
                                      cost_model=self.cost_model,
                                      space=self.space)
        return self._evaluator

    def evaluate(self, specs: List[TrialSpec]) -> List[List["TrialResult"]]:
        """Evaluate specs, returning result lists in spec order.

        Worker faults are handled per :attr:`retry_policy`: failed or
        corrupt outcomes are retried with backoff (exhaustion raises
        :class:`TrialEvaluationError` with the worker traceback), hung
        trials are timed out and the pool respawned, and a repeatedly
        dying pool degrades to serial evaluation of the remaining specs —
        results are bit-identical in every case because trials are
        deterministically seeded.
        """
        if not specs:
            return []
        submit_wall = time.time()
        batch_start = time.perf_counter()
        outcomes_by_index: Dict[int, TrialOutcome] = {}
        if self._pool is not None:
            self._evaluate_pooled(specs, outcomes_by_index)
        remaining = [s for s in specs if s.index not in outcomes_by_index]
        if remaining:
            for outcome in self._evaluate_serial(remaining):
                outcomes_by_index[outcome.index] = outcome
        outcomes = [outcomes_by_index[spec.index] for spec in specs]
        batch_wall = time.perf_counter() - batch_start
        batches: List[List["TrialResult"]] = []
        recorder = get_recorder()
        for spec, outcome in zip(specs, outcomes):
            if outcome.error is not None:
                raise TrialEvaluationError(
                    f"trial {spec.index} failed in worker:\n{outcome.error}")
            recorder.ingest(outcome.events)
            batches.append(outcome.results)
        if recorder.enabled:
            self._record_pool_telemetry(outcomes,
                                        pooled=self._pool is not None,
                                        batch_wall=batch_wall,
                                        submit_wall=submit_wall)
        return batches

    def _evaluate_pooled(self, specs: List[TrialSpec],
                         out: Dict[int, TrialOutcome]) -> None:
        """Run specs on the pool, applying the retry/timeout policy.

        Fills ``out`` with every spec the pool managed to evaluate; specs
        still missing afterwards (pool degraded away) are the caller's to
        finish serially.
        """
        policy = self.retry_policy
        recorder = get_recorder()
        attempts = {spec.index: 0 for spec in specs}
        pending = list(specs)
        while pending and self._pool is not None:
            try:
                futures = [(spec, self._pool.submit(_run_trial, spec))
                           for spec in pending]
            except Exception as exc:  # noqa: BLE001 — broken at submit
                self._pool_failed(f"submit failed ({exc!r})")
                continue
            pool_death: Optional[str] = None
            unresolved: List[Tuple[TrialSpec, Any]] = []
            for position, (spec, future) in enumerate(futures):
                try:
                    outcome = future.result(timeout=policy.trial_timeout_s)
                except FuturesTimeout:
                    recorder.counter("pool.timeout_kills", trial=spec.index)
                    pool_death = (f"trial {spec.index} produced no result "
                                  f"within {policy.trial_timeout_s:.0f}s "
                                  "(presumed hung)")
                    unresolved = futures[position:]
                    break
                except Exception as exc:  # noqa: BLE001 — pool died
                    recorder.counter("pool.crashes", trial=spec.index)
                    pool_death = (f"worker crashed evaluating trial "
                                  f"{spec.index} ({type(exc).__name__})")
                    unresolved = futures[position:]
                    break
                problem = _outcome_problem(spec, outcome)
                if problem is None:
                    out[spec.index] = outcome
                    continue
                attempts[spec.index] += 1
                kind = ("error" if isinstance(outcome, TrialOutcome)
                        and outcome.error is not None else "corrupt")
                recorder.counter("pool.retries", trial=spec.index,
                                 reason=kind)
                if attempts[spec.index] > policy.max_retries:
                    raise TrialEvaluationError(
                        f"trial {spec.index} failed after "
                        f"{attempts[spec.index]} attempts "
                        f"({policy.max_retries} retries):\n{problem}")
                self.reporter.info(
                    f"trial {spec.index}: {kind} outcome; retrying "
                    f"({attempts[spec.index]}/{policy.max_retries})")
                time.sleep(policy.backoff_s
                           * (2 ** (attempts[spec.index] - 1)))
            if pool_death is not None:
                # harvest whatever finished before the pool went down —
                # deterministic seeding makes completed results reusable
                for spec, future in unresolved:
                    if spec.index in out:
                        continue
                    if future.done() and not future.cancelled() \
                            and future.exception() is None:
                        outcome = future.result()
                        if _outcome_problem(spec, outcome) is None:
                            out[spec.index] = outcome
                self._pool_failed(pool_death)
            pending = [s for s in pending if s.index not in out]

    def _record_pool_telemetry(self, outcomes: List[TrialOutcome],
                               pooled: bool, batch_wall: float,
                               submit_wall: float) -> None:
        """Emit per-batch pool health: queue wait, utilisation, skew.

        Task durations come from each outcome's trial span, so this works
        on both the pool and the serial fallback (tagged ``parallel``).
        """
        recorder = get_recorder()
        durations = []
        for outcome in outcomes:
            for event in outcome.events or ():
                if event.get("type") == "span" and \
                        event.get("kind") == "trial":
                    durations.append(float(event["dur_s"]))
                    # queue wait: submit -> worker picked the task up
                    recorder.observe(
                        "pool.queue_wait_s",
                        max(0.0, event["t_wall"] - submit_wall),
                        trial=event.get("trial"))
                    break
        if not durations:
            return
        for duration in durations:
            recorder.observe("pool.task_s", duration)
        workers = self.workers if pooled else 1
        busy = sum(durations)
        recorder.gauge("pool.batch_wall_s", batch_wall,
                       tasks=len(outcomes), workers=workers,
                       parallel=pooled)
        if batch_wall > 0:
            recorder.gauge("pool.utilisation",
                           min(1.0, busy / (workers * batch_wall)))
        mean_task = busy / len(durations)
        if mean_task > 0:
            recorder.gauge("pool.skew", max(durations) / mean_task)

    def _evaluate_serial(self, specs: List[TrialSpec]) -> List[TrialOutcome]:
        evaluator = self._serial_evaluator()
        outcomes = []
        for spec in specs:
            try:
                outcomes.append(_evaluate_spec(evaluator, spec))
            except Exception:  # noqa: BLE001 — symmetric with worker path
                outcomes.append(TrialOutcome(index=spec.index,
                                             error=traceback.format_exc()))
        return outcomes
