"""Serial-vs-parallel wall-clock measurement and the bench trajectory log.

``measure_speedup`` times the same search twice — once with ``workers=1``,
once with a worker pool — verifies the results are bit-identical, and
returns a record in the stable ``BENCH_parallel.json`` schema.
``append_bench_record`` appends records to that file so the perf
trajectory is measurable across PRs.

Schema (version 2)::

    {"schema": 2,
     "runs": [{"timestamp": <iso8601>, "scale": ..., "dataset": ...,
               "mode": ..., "seed": ..., "trials": ..., "workers": ...,
               "batch_size": ..., "cpu_count": ...,
               "serial_s": ..., "parallel_s": ..., "speedup": ...,
               "identical": ...,
               "host": {"platform": ..., "python": ..., "numpy": ...,
                        "cpus": ..., "cpu": ...},
               "host_limited": ...}]}

Version 2 appends the ``host`` fingerprint (shared with ``BENCH_infer``,
see :mod:`repro.obs.host`) so the bench gate only compares runs of the
same machine, plus ``host_limited`` — true when the run was measured
with a single CPU, where ``speedup`` reflects scheduling overhead rather
than parallelism and must not be gated on.  Fields are only ever
appended, never renamed; records migrated from v1 carry ``host: null``
(the fingerprint was never captured) and a ``host_limited`` derived from
their recorded ``cpu_count``.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional

BENCH_SCHEMA_VERSION = 2

#: record fields, in stable order (new fields are appended, never renamed)
RECORD_FIELDS = (
    "timestamp", "scale", "dataset", "mode", "seed", "trials", "workers",
    "batch_size", "cpu_count", "serial_s", "parallel_s", "speedup",
    "identical", "host", "host_limited",
)

#: fields added after schema 1 — migrated records get them backfilled
V2_FIELDS = ("host", "host_limited")


def default_bench_path() -> Path:
    """``BENCH_parallel.json`` at the repository root (cwd fallback)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "BENCH_parallel.json"
    return Path.cwd() / "BENCH_parallel.json"


def migrate_record(run: Dict[str, Any]) -> Dict[str, Any]:
    """Backfill the v2 fields of one v1 record, in place.

    ``host`` was never captured, so it becomes ``null``; ``host_limited``
    is derivable from the recorded ``cpu_count`` (a single-CPU host
    cannot have measured real parallel speedup).
    """
    run.setdefault("host", None)
    if "host_limited" not in run:
        run["host_limited"] = run.get("cpu_count") == 1
    return run


def append_bench_record(path: Path, record: Dict[str, Any]) -> None:
    """Append one run record, creating or migrating the file as needed.

    A version-1 file is migrated in place: the schema stamp is bumped and
    every pre-existing run gains the v2 fields (readers must be able to
    rely on field presence).
    """
    path = Path(path)
    payload: Dict[str, Any] = {"schema": BENCH_SCHEMA_VERSION, "runs": []}
    if path.exists():
        existing = json.loads(path.read_text())
        if isinstance(existing, dict) and isinstance(
                existing.get("runs"), list):
            payload["runs"] = existing["runs"]
            for run in payload["runs"]:
                if isinstance(run, dict):
                    migrate_record(run)
    ordered = {key: record.get(key) for key in RECORD_FIELDS}
    for key in record:
        if key not in ordered:
            ordered[key] = record[key]
    payload["runs"].append(ordered)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _results_identical(a, b) -> bool:
    if len(a.trials) != len(b.trials):
        return False
    return all(
        x.genome == y.genome and x.score == y.score
        and x.accuracy == y.accuracy and x.size_bits == y.size_bits
        for x, y in zip(a.trials, b.trials))


def measure_speedup(scale: Optional[str] = None, dataset: str = "cifar10",
                    mode: str = "mp_qaft", seed: int = 7,
                    workers: Optional[int] = None,
                    batch_size: Optional[int] = None,
                    measure_traced: bool = False) -> Dict[str, Any]:
    """Time a serial and a parallel search of the same config.

    Returns a ``BENCH_parallel.json`` record.  Final training is skipped —
    the trial loop is the parallelized hot path being measured.  With
    ``measure_traced``, a third serial run with ``--trace`` enabled is
    timed and appended as ``traced_serial_s`` / ``trace_overhead`` (the
    traced-over-untraced wall-clock ratio minus one), and the record's
    ``identical`` also requires the traced results to match bit-for-bit.
    """
    from ..bo.scalarization import ScalarizationConfig
    from ..data.synthetic import load_dataset
    from ..experiments.runner import REF_SIZE
    from ..nas.config import SearchConfig, get_mode, get_scale
    from ..nas.search import BOMPNAS
    from .engine import DEFAULT_TRIAL_BATCH, default_workers

    scale_preset = get_scale(scale)
    workers = workers if workers is not None else default_workers()
    config = SearchConfig(
        dataset=dataset, mode=get_mode(mode), scale=scale_preset,
        scalarization=ScalarizationConfig(ref_accuracy=0.8,
                                          ref_model_size=REF_SIZE[dataset]),
        seed=seed)
    data = load_dataset(dataset, n_train=scale_preset.n_train,
                        n_test=scale_preset.n_test,
                        image_size=scale_preset.image_size, seed=seed)

    start = time.perf_counter()
    serial = BOMPNAS(config, data).run(final_training=False, workers=1,
                                       batch_size=batch_size)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = BOMPNAS(config, data).run(final_training=False,
                                         workers=workers,
                                         batch_size=batch_size)
    parallel_s = time.perf_counter() - start

    import os
    try:
        cpu_count = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        cpu_count = os.cpu_count() or 1
    identical = _results_identical(serial, parallel)
    from ..obs.host import host_metadata
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "scale": scale_preset.name, "dataset": dataset, "mode": mode,
        "seed": seed, "trials": len(serial.trials), "workers": workers,
        "batch_size": batch_size or DEFAULT_TRIAL_BATCH,
        "cpu_count": cpu_count,
        "serial_s": round(serial_s, 3), "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "identical": identical,
        "host": host_metadata(),
        "host_limited": cpu_count == 1,
    }
    if measure_traced:
        import tempfile
        from ..obs.trace import RunTracer
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            with RunTracer(Path(tmp) / "run") as tracer:
                traced = BOMPNAS(config, data).run(
                    final_training=False, workers=1, batch_size=batch_size,
                    tracer=tracer)
            traced_s = time.perf_counter() - start
        record["traced_serial_s"] = round(traced_s, 3)
        record["trace_overhead"] = (
            round(traced_s / serial_s - 1.0, 4) if serial_s else None)
        record["identical"] = identical and _results_identical(serial,
                                                               traced)
    return record
