"""Parallel trial evaluation: batched BO ask + process-pool candidates.

The BOMP-NAS loop is embarrassingly parallel at the trial level: early
training, quantization, QAFT and evaluation of one candidate never read
another candidate's state.  This package provides the machinery to exploit
that:

- :mod:`repro.parallel.seeding` — deterministic per-trial seeding, so a
  trial's outcome depends only on ``(run seed, trial index, genome)`` and
  parallel runs are bit-identical to serial ones regardless of completion
  order or worker count;
- :mod:`repro.parallel.engine` — a picklable :class:`TrialSpec` /
  :class:`TrialOutcome` worker protocol and the :class:`TrialEngine`
  process pool (with graceful in-process degradation);
- :mod:`repro.parallel.bench` — serial-vs-parallel wall-clock measurement
  with a stable ``BENCH_parallel.json`` record schema.

Candidate *proposal* stays in the parent process: the Bayesian optimizer's
``ask_batch(q)`` (constant-liar fantasies) and the evolutionary
``ask_batch`` propose q candidates up front, the engine evaluates them in
parallel, and results are told back in proposal order.
"""

from .bench import append_bench_record, default_bench_path, measure_speedup
from .engine import (DEFAULT_TRIAL_BATCH, RetryPolicy, TrialEngine,
                     TrialEvaluationError, TrialOutcome, TrialSpec,
                     default_workers)
from .seeding import trial_rng, trial_seed

__all__ = [
    "TrialEngine", "TrialSpec", "TrialOutcome", "TrialEvaluationError",
    "RetryPolicy", "DEFAULT_TRIAL_BATCH", "default_workers",
    "trial_seed", "trial_rng",
    "measure_speedup", "append_bench_record", "default_bench_path",
]
