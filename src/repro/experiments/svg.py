"""Minimal SVG scatter-plot writer for the paper's figures.

No plotting library is available offline, so figures are rendered to
standalone SVG files directly: log-x scatter of (model size, accuracy)
series with a legend, optional connecting lines for Pareto fronts, and
dotted equal-score contours — the visual grammar of Figs. 2/4/5/6/7/8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

PALETTE = ("#4361ee", "#e63946", "#2a9d8f", "#f4a261", "#9d4edd",
           "#264653", "#ff70a6")


@dataclass
class Series:
    """One named point set."""

    name: str
    points: List[Tuple[float, float]]          # (x=size_kb, y=accuracy)
    connect: bool = False                      # draw a line through points
    marker: str = "circle"                     # circle | square | diamond
    dashed: bool = False


@dataclass
class SvgScatter:
    """Builds an SVG scatter plot of (size, accuracy) series."""

    title: str = ""
    x_label: str = "model size [kB]"
    y_label: str = "accuracy"
    width: int = 640
    height: int = 420
    log_x: bool = True
    series: List[Series] = field(default_factory=list)

    MARGIN_LEFT = 64
    MARGIN_RIGHT = 16
    MARGIN_TOP = 36
    MARGIN_BOTTOM = 48

    def add(self, name: str, points: Sequence[Tuple[float, float]],
            connect: bool = False, marker: str = "circle",
            dashed: bool = False) -> None:
        if marker not in ("circle", "square", "diamond"):
            raise ValueError(f"unknown marker {marker!r}")
        self.series.append(Series(name, [(float(x), float(y))
                                         for x, y in points],
                                  connect=connect, marker=marker,
                                  dashed=dashed))

    # -- coordinate transforms ---------------------------------------------
    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [p[0] for s in self.series for p in s.points]
        ys = [p[1] for s in self.series for p in s.points]
        if not xs:
            raise ValueError("no points to plot")
        if self.log_x:
            if min(xs) <= 0:
                raise ValueError("log x axis requires positive sizes")
            xs = [math.log10(x) for x in xs]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_pad = (x_hi - x_lo) * 0.05 or 0.5
        y_pad = (y_hi - y_lo) * 0.05 or 0.05
        return x_lo - x_pad, x_hi + x_pad, y_lo - y_pad, y_hi + y_pad

    def _to_px(self, x: float, y: float,
               bounds: Tuple[float, float, float, float]
               ) -> Tuple[float, float]:
        x_lo, x_hi, y_lo, y_hi = bounds
        x_val = math.log10(x) if self.log_x else x
        plot_w = self.width - self.MARGIN_LEFT - self.MARGIN_RIGHT
        plot_h = self.height - self.MARGIN_TOP - self.MARGIN_BOTTOM
        px = self.MARGIN_LEFT + (x_val - x_lo) / (x_hi - x_lo) * plot_w
        py = self.MARGIN_TOP + (y_hi - y) / (y_hi - y_lo) * plot_h
        return px, py

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        bounds = self._bounds()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>',
        ]
        parts.extend(self._axes(bounds))
        for index, series in enumerate(self.series):
            parts.extend(self._series_svg(series, PALETTE[index %
                                                          len(PALETTE)],
                                          bounds))
        parts.extend(self._legend())
        if self.title:
            parts.append(
                f'<text x="{self.width / 2}" y="18" text-anchor="middle" '
                f'font-size="13" font-weight="bold">'
                f'{_escape(self.title)}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def _axes(self, bounds) -> List[str]:
        x_lo, x_hi, y_lo, y_hi = bounds
        left, top = self.MARGIN_LEFT, self.MARGIN_TOP
        right = self.width - self.MARGIN_RIGHT
        bottom = self.height - self.MARGIN_BOTTOM
        parts = [
            f'<line x1="{left}" y1="{bottom}" x2="{right}" y2="{bottom}" '
            f'stroke="#333"/>',
            f'<line x1="{left}" y1="{top}" x2="{left}" y2="{bottom}" '
            f'stroke="#333"/>',
            f'<text x="{(left + right) / 2}" y="{self.height - 10}" '
            f'text-anchor="middle">{_escape(self.x_label)}</text>',
            f'<text x="14" y="{(top + bottom) / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {(top + bottom) / 2})">'
            f'{_escape(self.y_label)}</text>',
        ]
        # x ticks: decades when log, else 5 linear ticks
        if self.log_x:
            for decade in range(math.floor(x_lo), math.ceil(x_hi) + 1):
                if not x_lo <= decade <= x_hi:
                    continue
                px, _ = self._to_px(10 ** decade, y_lo, bounds)
                parts.append(f'<line x1="{px:.1f}" y1="{bottom}" '
                             f'x2="{px:.1f}" y2="{top}" stroke="#eee"/>')
                parts.append(f'<text x="{px:.1f}" y="{bottom + 16}" '
                             f'text-anchor="middle">'
                             f'{10 ** decade:g}</text>')
        for i in range(6):
            y = y_lo + i * (y_hi - y_lo) / 5
            _, py = self._to_px(10 ** x_lo if self.log_x else x_lo, y,
                                bounds)
            parts.append(f'<line x1="{left}" y1="{py:.1f}" x2="{right}" '
                         f'y2="{py:.1f}" stroke="#eee"/>')
            parts.append(f'<text x="{left - 6}" y="{py + 4:.1f}" '
                         f'text-anchor="end">{y:.2f}</text>')
        return parts

    def _series_svg(self, series: Series, color: str, bounds) -> List[str]:
        parts = []
        pixels = [self._to_px(x, y, bounds) for x, y in series.points]
        if series.connect and len(pixels) > 1:
            path = " ".join(f"{'M' if i == 0 else 'L'}{px:.1f},{py:.1f}"
                            for i, (px, py) in enumerate(pixels))
            dash = ' stroke-dasharray="5,4"' if series.dashed else ""
            parts.append(f'<path d="{path}" fill="none" stroke="{color}" '
                         f'stroke-width="1.5"{dash}/>')
        for px, py in pixels:
            parts.append(_marker(series.marker, px, py, color))
        return parts

    def _legend(self) -> List[str]:
        parts = []
        x = self.MARGIN_LEFT + 10
        y = self.MARGIN_TOP + 8
        for index, series in enumerate(self.series):
            color = PALETTE[index % len(PALETTE)]
            parts.append(_marker(series.marker, x, y, color))
            parts.append(f'<text x="{x + 10}" y="{y + 4}">'
                         f'{_escape(series.name)}</text>')
            y += 16
        return parts


def _marker(kind: str, px: float, py: float, color: str) -> str:
    if kind == "circle":
        return (f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3.5" '
                f'fill="{color}" fill-opacity="0.8"/>')
    if kind == "square":
        return (f'<rect x="{px - 3:.1f}" y="{py - 3:.1f}" width="6" '
                f'height="6" fill="{color}" fill-opacity="0.8"/>')
    return (f'<path d="M{px:.1f},{py - 4:.1f} L{px + 4:.1f},{py:.1f} '
            f'L{px:.1f},{py + 4:.1f} L{px - 4:.1f},{py:.1f} Z" '
            f'fill="{color}" fill-opacity="0.8"/>')


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def figure_to_svg(data: Dict, title: str,
                  path: Optional[str] = None) -> str:
    """Render a ``figN`` data dict (from :mod:`repro.experiments.figures`)
    to SVG; writes to ``path`` when given and returns the markup."""
    plot = SvgScatter(title=title)
    if "fronts" in data:  # comparison figures (5/8)
        for name, front in data["fronts"].items():
            if front:
                plot.add(name, [(size, acc) for acc, size in front],
                         connect=True)
    else:  # search scatter figures (2/4/6/7)
        if data.get("early_candidates"):
            plot.add("early candidates", data["early_candidates"])
        if data.get("late_candidates"):
            plot.add("late candidates", data["late_candidates"],
                     marker="square")
        if data.get("final_models"):
            plot.add("final Pareto models", data["final_models"],
                     connect=True, marker="diamond")
        if data.get("seed_point"):
            accuracy, size = data["seed_point"]
            plot.add("seed (8-bit MobileNetV2)", [(size, accuracy)],
                     marker="diamond")
        contour = [(size, acc) for size, acc in
                   data.get("equal_score_contour", [])
                   if 0.0 <= acc <= 1.0]
        if len(contour) > 1:
            plot.add("equal-score contour", contour, connect=True,
                     dashed=True)
    markup = plot.render()
    if path is not None:
        with open(path, "w") as handle:
            handle.write(markup)
    return markup
