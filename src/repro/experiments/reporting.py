"""Plain-text rendering of tables and scatter plots.

The benchmark harness has no display, so figures are rendered as ASCII
scatter plots and tables as aligned text — enough to see who wins, by what
factor and where the crossovers fall, which is the reproduction target.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Align columns of a list-of-rows table."""
    if not headers:
        raise ValueError("need at least one column")
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def ascii_scatter(series: Dict[str, List[Tuple[float, float]]],
                  width: int = 68, height: int = 18,
                  x_label: str = "model size [kB] (log)",
                  y_label: str = "accuracy",
                  log_x: bool = True,
                  title: Optional[str] = None) -> str:
    """Scatter plot of named point series; each series gets a marker.

    Coordinates are ``(x, y)`` pairs; with ``log_x`` the x axis is log10
    (the convention of the paper's figures).
    """
    markers = "ox+*#@%&"
    points = [(name, p) for name, pts in series.items() for p in pts]
    if not points:
        raise ValueError("no points to plot")
    xs = [p[1][0] for p in points]
    ys = [p[1][1] for p in points]
    if log_x:
        if min(xs) <= 0:
            raise ValueError("log x axis requires positive x values")
        xs = [math.log10(x) for x in xs]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, (x, y)) in enumerate(points):
        marker = markers[list(series).index(name) % len(markers)]
        x_val = math.log10(x) if log_x else x
        col = int((x_val - x_min) / x_span * (width - 1))
        row = int((y_max - y) / y_span * (height - 1))
        grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_max - i / (height - 1) * y_span if height > 1 else y_max
        lines.append(f"{y_val:7.3f} |" + "".join(row))
    x_lo = 10 ** x_min if log_x else x_min
    x_hi = 10 ** x_max if log_x else x_max
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"{x_lo:<10.3g}{x_label:^{max(width - 20, 0)}}"
                 f"{x_hi:>10.3g}")
    legend = "  ".join(f"{markers[i % len(markers)]}={name}"
                       for i, name in enumerate(series))
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def format_front(front: Sequence[Tuple[float, float]],
                 label: str) -> str:
    """One-line rendering of a Pareto front for log output."""
    points = ", ".join(f"({acc:.3f}, {size:.2f}kB)" for acc, size in front)
    return f"{label}: [{points}]"


def bitwidth_histogram(bit_assignments: Sequence[Dict[str, int]],
                       bit_choices: Sequence[int]) -> str:
    """Render Fig. 3-style per-layer bitwidth distributions.

    Each row is a layer slot; columns count how many Pareto models chose
    each bitwidth for that slot.
    """
    if not bit_assignments:
        raise ValueError("need at least one bit assignment")
    slots = list(bit_assignments[0])
    headers = ["slot"] + [f"{b}b" for b in bit_choices]
    rows = []
    for slot in slots:
        counts = {b: 0 for b in bit_choices}
        for assignment in bit_assignments:
            counts[assignment[slot]] += 1
        rows.append([slot] + [counts[b] for b in bit_choices])
    return format_table(headers, rows,
                        title="bitwidth distribution per layer slot")
