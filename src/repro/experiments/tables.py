"""Generators for every table of the paper.

Same convention as :mod:`repro.experiments.figures`: each function returns
``(data, text)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..baselines.reference import (TABLE2_BOMP_PAPER, TABLE3_BOMP_PAPER,
                                   TABLE3_REFERENCES, TABLE4_PAPER,
                                   SotaEntry, table2_rows)
from ..nas.cost import CostModel
from ..nas.results import SearchResult
from ..space.space import SearchSpace
from .reporting import format_table
from .runner import ExperimentContext


def table1() -> Tuple[Dict, str]:
    """Table I: the search space menus and cardinalities."""
    data = {}
    lines = []
    for dataset in ("cifar10", "cifar100"):
        space = SearchSpace(dataset)
        data[dataset] = {
            "num_architectures": space.num_architectures(),
            "num_policies": space.num_policies(),
            "num_total": space.num_total(),
            "n_slots": len(space.slot_names),
        }
        lines.append(space.summary())
        lines.append("")
    data["paper_claims"] = {
        "num_architectures": 3.96e19,
        "num_policies": 1.19e16,
        "num_total_as_printed": 4.73e39,
        "num_total_consistent": 3.96e19 * 1.19e16,
    }
    lines.append("paper claims 3.96e19 archs x 1.19e16 policies; its joint "
                 "figure 4.73e39 is a typo for 4.73e35 (the product).")
    return data, "\n".join(lines)


def _best_under(result: SearchResult, size_kb: float
                ) -> Optional[Tuple[float, float]]:
    """Best final (accuracy, size) at or under a size budget (with slack).

    The paper compares "the best performing networks that are smaller than
    or similar size as the respective SotA network"; "similar" is taken as
    up to 15% above the reference size.
    """
    eligible = [(m.accuracy, m.size_kb) for m in result.final_models
                if m.size_kb <= size_kb * 1.15]
    if not eligible:
        return None
    return max(eligible)


def table2(ctx: ExperimentContext,
           include_micronas: bool = False) -> Tuple[Dict, str]:
    """Table II: Pareto models of a single search vs SotA.

    Literature rows are constants from the paper; BOMP-NAS and JASQ (repr.)
    rows are measured from this reproduction's searches.  Absolute values
    live on the synthetic surrogate's scale — the reproduced claim is the
    head-to-head on the shared search space: BOMP-NAS beats the JASQ
    reproduction at comparable model size.  ``include_micronas`` adds a
    measured μNAS-reproduction row (an extra full search).
    """
    rows: List[List] = []
    data: Dict = {"ours": {}, "literature": [], "paper_bomp": []}

    for dataset in ("cifar10", "cifar100"):
        result = ctx.run_search(dataset, "mp_qaft")
        for model in sorted(result.final_models, key=lambda m: m.size_kb):
            rows.append([dataset, "BOMP-NAS (ours, surrogate)",
                         model.accuracy * 100, model.size_kb])
        data["ours"][dataset] = [(m.accuracy, m.size_kb)
                                 for m in result.final_models]

    jasq = ctx.run_jasq("cifar10")
    for model in sorted(jasq.final_models, key=lambda m: m.size_kb):
        rows.append(["cifar10", "JASQ repr. (ours, surrogate)",
                     model.accuracy * 100, model.size_kb])
    data["ours"]["jasq_cifar10"] = [(m.accuracy, m.size_kb)
                                    for m in jasq.final_models]

    if include_micronas:
        micronas = ctx.run_micronas("cifar10")
        for model in sorted(micronas.final_models,
                            key=lambda m: m.size_kb):
            rows.append(["cifar10", "muNAS repr. (ours, surrogate)",
                         model.accuracy * 100, model.size_kb])
        data["ours"]["micronas_cifar10"] = [(m.accuracy, m.size_kb)
                                            for m in micronas.final_models]

    for entry in table2_rows():
        rows.append([entry.dataset, f"{entry.method} (paper)",
                     entry.accuracy_percent, entry.model_size_kb])
        data["literature"].append(entry)
    for entry in TABLE2_BOMP_PAPER:
        rows.append([entry.dataset, "BOMP-NAS (paper)",
                     entry.accuracy_percent, entry.model_size_kb])
        data["paper_bomp"].append(entry)

    # the reproducible head-to-head: our BOMP vs our JASQ on the same
    # search space, data, trial budget and objective.  Both engines
    # maximize the Eq. (1) score, so the best achieved score is the
    # like-for-like engine comparison; the accuracy-at-matched-size view
    # is also recorded but is hole-prone when the small final fronts of a
    # reduced-scale run don't overlap in size.
    bomp_result = ctx.run_search("cifar10", "mp_qaft")
    head_to_head = {
        "bomp_best_score": bomp_result.best_trial().score,
        "jasq_best_score": jasq.best_trial().score,
    }
    if jasq.final_models:
        budget = min(m.size_kb for m in jasq.final_models) * 1.5
        head_to_head.update({
            "budget_kb": budget,
            "bomp_best": _best_under(bomp_result, budget),
            "jasq_best": _best_under(jasq, budget),
        })
    data["head_to_head"] = head_to_head

    text = format_table(
        ["dataset", "method", "acc [%]", "size [kB]"], rows,
        title="Table II — Pareto-optimal models vs SotA")
    text += (f"\nhead-to-head best Eq.(1) score: BOMP "
             f"{head_to_head['bomp_best_score']:.3f} vs JASQ "
             f"{head_to_head['jasq_best_score']:.3f}")
    if head_to_head.get("bomp_best") and head_to_head.get("jasq_best"):
        text += (f"\nhead-to-head at <= {head_to_head['budget_kb']:.1f} kB: "
                 f"BOMP {head_to_head['bomp_best'][0]:.3f} vs "
                 f"JASQ {head_to_head['jasq_best'][0]:.3f}")
    return data, text


def _normalized_scenario_cost(ctx: ExperimentContext,
                              result: SearchResult) -> float:
    """Measured search cost extrapolated to the paper's protocol scale."""
    cost_model = CostModel()
    scale = result.config.scale  # the run's own (possibly lightened) scale
    return cost_model.normalize_to_paper_protocol(
        result.search_gpu_hours(), trials=scale.trials,
        early_epochs=scale.early_epochs, n_train=scale.n_train,
        image_size=scale.image_size)


def table3(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Table III: search cost per deployment scenario across methods."""
    rows: List[List] = []
    data: Dict = {"ours": {}, "literature": TABLE3_REFERENCES,
                  "paper_bomp": TABLE3_BOMP_PAPER}
    for entry in TABLE3_REFERENCES:
        rows.append([entry.method + " (paper)", entry.dataset,
                     f"{entry.fixed_hours:g} + {entry.per_scenario_hours:g}N"])
    for entry in TABLE3_BOMP_PAPER:
        rows.append(["BOMP-NAS (paper)", entry.dataset,
                     f"{entry.per_scenario_hours:g}N"])
    for dataset in ("cifar10", "cifar100"):
        result = ctx.run_search(dataset, "mp_qaft")
        hours = _normalized_scenario_cost(ctx, result)
        data["ours"][("bomp", dataset)] = hours
        rows.append(["BOMP-NAS (ours, simulated)", dataset,
                     f"{hours:.1f}N"])
    jasq = ctx.run_jasq("cifar10")
    jasq_hours = _normalized_scenario_cost(ctx, jasq)
    data["ours"][("jasq", "cifar10")] = jasq_hours
    rows.append(["JASQ repr. (ours, simulated)", "cifar10",
                 f"{jasq_hours:.1f}N"])
    text = format_table(["method", "dataset", "GPU-hours"], rows,
                        title="Table III — search cost per scenario")
    return data, text


def table4(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Table IV: search cost of the BOMP-NAS ablation variants."""
    modes = ("fixed8_ptq", "mp_ptq", "mp_qaft", "fixed4_qaft")
    rows: List[List] = []
    data: Dict = {"ours": {}, "paper": TABLE4_PAPER}
    for mode in modes:
        for dataset in ("cifar10", "cifar100"):
            result = ctx.run_search(dataset, mode, final_training=False)
            hours = _normalized_scenario_cost(ctx, result)
            data["ours"][(mode, dataset)] = hours
            paper_hours = TABLE4_PAPER[(mode, dataset)]
            rows.append([mode, dataset, f"{hours:.1f}N",
                         f"{paper_hours:g}N"])
    text = format_table(
        ["method", "dataset", "ours (simulated)", "paper"], rows,
        title="Table IV — ablation search costs per scenario")
    return data, text
