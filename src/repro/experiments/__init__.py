"""Experiment orchestration: shared runner, figure and table generators."""

from .figures import (fig2, fig3, fig4, fig5, fig6, fig7, fig8,
                      ptq_post_qaft_front, ptq_post_qaft_result, seed_point)
from .reporting import (ascii_scatter, bitwidth_histogram, format_front,
                        format_table)
from .runner import REF_SIZE, ExperimentContext, default_cache_dir
from .svg import SvgScatter, figure_to_svg
from .tables import table1, table2, table3, table4

__all__ = [
    "ExperimentContext", "default_cache_dir", "REF_SIZE",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "seed_point", "ptq_post_qaft_front",
    "table1", "table2", "table3", "table4",
    "format_table", "ascii_scatter", "format_front", "bitwidth_histogram",
    "SvgScatter", "figure_to_svg",
]
