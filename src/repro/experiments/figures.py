"""Generators for every figure of the paper's evaluation section.

Each ``figN`` function consumes an :class:`ExperimentContext`, runs (or
fetches) the searches that figure is a view of, and returns a
``(data, text)`` pair: ``data`` is a plain dict of the series the paper
plots, ``text`` is an ASCII rendering.  Benchmarks assert the paper's
qualitative claims on ``data`` and print ``text``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..bo.pareto import best_accuracy_under, hypervolume, pareto_front
from ..bo.scalarization import equal_score_accuracy, scalarize
from ..nas.final_training import train_final_models
from ..nas.results import SearchResult
from ..nas.search import BOMPNAS
from ..quant.size import bitwidth_by_layer, model_size_bits
from ..space.builder import build_model
from ..space.genome import MixedPrecisionGenome
from ..space.space import SearchSpace
from .reporting import ascii_scatter, bitwidth_histogram, format_front
from .runner import ExperimentContext


def seed_point(ctx: ExperimentContext, dataset: str) -> Tuple[float, float]:
    """(accuracy, size_kB) of the seed MobileNetV2 at homogeneous 8-bit.

    The seed is early-trained with the search protocol and PTQ'd to 8 bits,
    exactly how the paper's figures anchor their seed marker.
    """
    def build() -> SearchResult:
        config = ctx.config(dataset, "fixed8_ptq")
        evaluator = BOMPNAS(config, ctx.dataset(dataset))
        seed_genome = MixedPrecisionGenome(
            evaluator.space.seed_arch(), evaluator.space.seed_policy(8))
        trial = evaluator.evaluate_candidate(seed_genome, index=0)[0]
        return SearchResult(config=config, trials=[trial])

    trial = ctx.cached_result(f"seed_point::{dataset}", build).trials[0]
    return trial.accuracy, trial.size_kb


def _scatter_data(result: SearchResult) -> Dict:
    """Candidate series split into early/late halves (the color-by-time
    encoding of the paper's scatter figures)."""
    n = len(result.trials)
    half = n // 2
    return {
        "early_candidates": [(t.size_kb, t.accuracy)
                             for t in result.trials[:half]],
        "late_candidates": [(t.size_kb, t.accuracy)
                            for t in result.trials[half:]],
        "candidate_front": result.candidate_front(),
        "final_models": [(m.size_kb, m.accuracy)
                         for m in result.final_models],
        "final_front": result.final_front(),
        "scores": [t.score for t in result.trials],
        "sizes": [t.size_kb for t in result.trials],
        "accuracies": [t.accuracy for t in result.trials],
    }


def _render_search_scatter(data: Dict, seed: Tuple[float, float],
                           title: str) -> str:
    series = {
        "early": data["early_candidates"],
        "late": data["late_candidates"],
        "final": data["final_models"],
        "seed": [(seed[1], seed[0])],
    }
    series = {k: v for k, v in series.items() if v}
    return ascii_scatter(series, title=title)


def _search_figure(ctx: ExperimentContext, dataset: str, mode: str,
                   title: str) -> Tuple[Dict, str]:
    """Shared machinery of Figs. 2/4/6/7: one search mode's scatter."""
    result = ctx.run_search(dataset, mode)
    seed = seed_point(ctx, dataset)
    data = _scatter_data(result)
    data["seed_point"] = seed
    data["ref_accuracy"] = ctx.config(dataset, mode).scalarization.ref_accuracy
    data["ref_model_size"] = ctx.config(
        dataset, mode).scalarization.ref_model_size
    # equal-score contour through the seed point (one of the dotted lines)
    seed_score = scalarize(seed[0], seed[1] * 8 * 1024,
                           ctx.config(dataset, mode).scalarization)
    contour_sizes = np.geomspace(max(min(data["sizes"]), 0.5),
                                 max(data["sizes"]), 8)
    contour = equal_score_accuracy(seed_score, contour_sizes * 8 * 1024,
                                   ctx.config(dataset, mode).scalarization)
    data["equal_score_contour"] = list(zip(contour_sizes.tolist(),
                                           contour.tolist()))
    text = "\n".join([
        _render_search_scatter(data, seed, title),
        format_front(data["final_front"], "final Pareto front"),
        f"seed point: acc={seed[0]:.3f}, size={seed[1]:.2f} kB",
    ])
    return data, text


def fig2(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Fig. 2: MP QAFT-aware NAS on CIFAR-10."""
    return _search_figure(ctx, "cifar10", "mp_qaft",
                          "Fig. 2 — QAFT-aware NAS (CIFAR-10)")


def fig3(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Fig. 3: per-layer bitwidths of the final Pareto models."""
    result = ctx.run_search("cifar10", "mp_qaft")
    models = result.final_models or result.pareto_trials()
    assignments: List[Dict[str, int]] = []
    for entry in models:
        genome = entry.genome
        model = build_model(genome.arch,
                            ctx.dataset("cifar10").num_classes)
        assignments.append(bitwidth_by_layer(model, genome.policy))
    bit_choices = list(range(4, 9))
    # histogram over slots shared by all models (slot sets differ when
    # blocks are absent, so render per-model assignments too)
    data = {
        "assignments": assignments,
        "bit_choices": bit_choices,
        "min_bits_per_model": [min(a.values()) for a in assignments],
        "mean_bits_per_model": [float(np.mean(list(a.values())))
                                for a in assignments],
    }
    per_slot = [{slot: bits for slot, bits in a.items()}
                for a in assignments]
    common_slots = set(per_slot[0])
    for a in per_slot[1:]:
        common_slots &= set(a)
    common = [{slot: a[slot] for slot in sorted(common_slots)}
              for a in per_slot]
    text = bitwidth_histogram(common, bit_choices) if common_slots else ""
    lines = [text, "", "per-model bitwidth summary:"]
    for i, a in enumerate(assignments):
        lines.append(f"  model {i}: min={min(a.values())} "
                     f"mean={np.mean(list(a.values())):.2f} "
                     f"max={max(a.values())}")
    return data, "\n".join(lines)


def fig4(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Fig. 4: MP QAFT-aware NAS on CIFAR-100 (ref_model_size = 6)."""
    return _search_figure(ctx, "cifar100", "mp_qaft",
                          "Fig. 4 — QAFT-aware NAS (CIFAR-100)")


def ptq_post_qaft_result(ctx: ExperimentContext, dataset: str
                         ) -> SearchResult:
    """PTQ-searched Pareto models re-finalized *with* QAFT.

    This is Fig. 5's middle curve, "MP PTQ-NAS (QAFT)": the architectures
    come from the PTQ-aware search, QAFT is only applied afterwards.
    Final training is rng-paired with the plain-PTQ finals (same seed and
    trial indices), so per-trial accuracy differences isolate the QAFT
    treatment.
    """
    def build() -> SearchResult:
        ptq_result = ctx.run_search(dataset, "mp_ptq")
        config = ctx.config(dataset, "mp_ptq")
        evaluator = BOMPNAS(config, ctx.dataset(dataset))
        finals = train_final_models(evaluator, ptq_result.pareto_trials(),
                                    force_qaft=True)
        return SearchResult(config=config,
                            trials=list(ptq_result.pareto_trials()),
                            final_models=finals)

    return ctx.cached_result(f"ptq_post_qaft::{dataset}", build)


def ptq_post_qaft_front(ctx: ExperimentContext, dataset: str
                        ) -> List[Tuple[float, float]]:
    """Front view of :func:`ptq_post_qaft_result`."""
    return ptq_post_qaft_result(ctx, dataset).final_front()


def fig5(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Fig. 5: MP PTQ-NAS vs MP PTQ-NAS (QAFT) vs MP QAFT-NAS fronts.

    Besides the three fronts, the data includes the *paired* comparison on
    the PTQ-searched architectures: each Pareto model finalized twice from
    identical full-precision training, once with plain PTQ and once with
    post-hoc QAFT.  The per-pair accuracy delta is the treatment effect
    Fig. 5's middle curve visualizes, free of cross-search noise.
    """
    ptq = ctx.run_search("cifar10", "mp_ptq")
    qaft = ctx.run_search("cifar10", "mp_qaft")
    post = ptq_post_qaft_result(ctx, "cifar10")
    fronts = {
        "MP PTQ-NAS": ptq.final_front(),
        "MP PTQ-NAS (QAFT)": post.final_front(),
        "MP QAFT-NAS": qaft.final_front(),
    }
    ptq_by_trial = {m.trial_index: m for m in ptq.final_models}
    pairs = []
    for model in post.final_models:
        partner = ptq_by_trial.get(model.trial_index)
        if partner is not None:
            pairs.append({
                "trial_index": model.trial_index,
                "size_kb": model.size_kb,
                "min_bits": model.genome.policy.min_bits(),
                "ptq_accuracy": partner.accuracy,
                "qaft_accuracy": model.accuracy,
                "delta": model.accuracy - partner.accuracy,
            })
    data = {
        "fronts": fronts,
        "hypervolumes": _shared_hypervolumes(fronts),
        "paired": pairs,
    }
    series = {name: [(size, acc) for acc, size in front]
              for name, front in fronts.items() if front}
    lines = [ascii_scatter(series,
                           title="Fig. 5 — Pareto fronts (CIFAR-10, MP)")]
    for name, front in fronts.items():
        lines.append(format_front(front, name))
    for pair in pairs:
        lines.append(
            f"paired trial {pair['trial_index']}: PTQ "
            f"{pair['ptq_accuracy']:.3f} -> +QAFT "
            f"{pair['qaft_accuracy']:.3f} (min {pair['min_bits']} bits, "
            f"{pair['size_kb']:.1f} kB)")
    return data, "\n".join(lines)


def fig6(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Fig. 6: MP PTQ-aware NAS scatter (search avoids tiny models).

    Besides the scatter, the data carries each candidate's *quantization
    gap* — its full-precision accuracy minus its deployed accuracy — for
    both the PTQ-aware and the QAFT-aware search.  The gap is a
    within-candidate measure: in the PTQ search low-bit candidates keep
    their full PTQ damage, while in the QAFT search the in-loop fine-tuning
    epoch recovers it, which is exactly why the PTQ search drifts toward
    larger/higher-bit models in the paper.
    """
    data, text = _search_figure(ctx, "cifar10", "mp_ptq",
                                "Fig. 6 — MP PTQ-aware NAS (CIFAR-10)")
    ptq = ctx.run_search("cifar10", "mp_ptq")
    qaft = ctx.run_search("cifar10", "mp_qaft")
    data["mean_sampled_size"] = float(np.mean(data["sizes"]))
    data["qaft_mean_sampled_size"] = float(
        np.mean([t.size_kb for t in qaft.trials]))

    def gaps(result):
        return [{"min_bits": t.genome.policy.min_bits(),
                 "gap": t.fp_accuracy - t.accuracy,
                 "size_kb": t.size_kb}
                for t in result.trials]

    data["ptq_gaps"] = gaps(ptq)
    data["qaft_gaps"] = gaps(qaft)
    low_ptq = [g["gap"] for g in data["ptq_gaps"] if g["min_bits"] <= 5]
    low_qaft = [g["gap"] for g in data["qaft_gaps"] if g["min_bits"] <= 5]
    data["mean_low_bit_gap_ptq"] = (float(np.mean(low_ptq))
                                    if low_ptq else 0.0)
    data["mean_low_bit_gap_qaft"] = (float(np.mean(low_qaft))
                                     if low_qaft else 0.0)
    text += (f"\nmean sampled size: PTQ search "
             f"{data['mean_sampled_size']:.2f} kB vs QAFT search "
             f"{data['qaft_mean_sampled_size']:.2f} kB"
             f"\nmean low-bit quantization gap (fp acc - deployed acc): "
             f"PTQ {data['mean_low_bit_gap_ptq']:+.3f} vs QAFT "
             f"{data['mean_low_bit_gap_qaft']:+.3f}")
    return data, text


def fig7(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Fig. 7: fixed 4-bit QAFT-aware NAS scatter."""
    data, text = _search_figure(ctx, "cifar10", "fixed4_qaft",
                                "Fig. 7 — 4-bit QAFT-aware NAS (CIFAR-10)")
    # what each sampled architecture would weigh at homogeneous 8-bit —
    # the mechanical size advantage 4-bit quantization buys
    result = ctx.run_search("cifar10", "fixed4_qaft")
    search_space = SearchSpace("cifar10")
    eight_bit = search_space.seed_policy(8)
    sizes_at_8bit = []
    for trial in result.trials:
        model = build_model(trial.genome.arch,
                            ctx.dataset("cifar10").num_classes)
        sizes_at_8bit.append(model_size_bits(model, eight_bit) / (8 * 1024))
    data["sizes_at_8bit"] = sizes_at_8bit
    return data, text


def fig8(ctx: ExperimentContext) -> Tuple[Dict, str]:
    """Fig. 8: Pareto fronts of every ablation variant."""
    fronts = {
        "8-bit PTQ-NAS": ctx.run_search("cifar10",
                                        "fixed8_ptq").final_front(),
        "MP PTQ-NAS": ctx.run_search("cifar10", "mp_ptq").final_front(),
        "MP PTQ-NAS (QAFT)": ptq_post_qaft_front(ctx, "cifar10"),
        "4-bit QAFT-NAS": ctx.run_search("cifar10",
                                         "fixed4_qaft").final_front(),
        "MP QAFT-NAS": ctx.run_search("cifar10", "mp_qaft").final_front(),
    }
    small_budget = _small_size_budget(fronts)
    data = {
        "fronts": fronts,
        "hypervolumes": _shared_hypervolumes(fronts),
        "small_budget_kb": small_budget,
        "best_acc_under_budget": {
            name: best_accuracy_under(front, small_budget)
            for name, front in fronts.items()},
        "smallest_size": {
            name: (min(size for _, size in front) if front else float("inf"))
            for name, front in fronts.items()},
    }
    series = {name: [(size, acc) for acc, size in front]
              for name, front in fronts.items() if front}
    lines = [ascii_scatter(series, title="Fig. 8 — ablation Pareto fronts")]
    for name, front in fronts.items():
        lines.append(format_front(front, name))
    return data, "\n".join(lines)


def _shared_hypervolumes(fronts: Dict[str, List[Tuple[float, float]]]
                         ) -> Dict[str, float]:
    """Hypervolumes against a reference point shared by all fronts.

    Without a shared reference, a front consisting of a single small model
    would get zero volume and comparisons across fronts would be
    meaningless.
    """
    sizes = [size for front in fronts.values() for _, size in front]
    ref_size = max(sizes) * 1.05 if sizes else 1.0
    return {name: hypervolume(front, ref_accuracy=0.0, ref_size=ref_size)
            for name, front in fronts.items()}


def _small_size_budget(fronts: Dict[str, List[Tuple[float, float]]]
                       ) -> float:
    """A size budget at the small end where every front has a model."""
    smallest = [min(size for _, size in front)
                for front in fronts.values() if front]
    if not smallest:
        return 10.0
    return max(smallest) * 1.25
