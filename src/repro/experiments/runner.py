"""Shared experiment orchestration with on-disk result caching.

Several figures and tables are views over the *same* search runs (Fig. 2
and Fig. 3 share the CIFAR-10 MP QAFT search; Figs. 5/6/8 and Table IV
share the ablation runs).  The :class:`ExperimentContext` memoizes search
results per configuration, in memory and as JSON under a cache directory,
so each search runs exactly once per scale/seed no matter how many
benchmarks consume it.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from pathlib import Path
from typing import Dict, Optional

from ..baselines.jasq import JASQSearch
from ..baselines.micronas import MicroNASSearch
from ..bo.scalarization import ScalarizationConfig
from ..data.datasets import Dataset
from ..data.synthetic import synthetic_cifar10, synthetic_cifar100
from ..nas.config import ScalePreset, SearchConfig, get_mode, get_scale
from ..nas.results import SearchResult
from ..nas.search import BOMPNAS
from ..obs.trace import RunTracer
from ..resilience.checkpoint import CheckpointError

#: paper reference values for the two datasets' scalarization configs
REF_SIZE = {"cifar10": 8.0, "cifar100": 6.0}

#: CIFAR-100-space candidates are ~10x the compute of CIFAR-10 ones (width
#: multipliers up to 1.3 on the full base widths), so reduced-scale runs
#: use a lighter protocol there; ``paper`` scale is never overridden.
CIFAR100_TRIAL_FRACTION = 0.45
CIFAR100_MAX_EARLY_EPOCHS = 3
CIFAR100_MAX_FINAL_EPOCHS = 4


def default_cache_dir() -> Path:
    return Path(os.environ.get("BOMP_CACHE_DIR", ".bomp_cache"))


class ExperimentContext:
    """Datasets + memoized search runs for the benchmark harness."""

    def __init__(self, scale_name: Optional[str] = None, seed: int = 7,
                 cache_dir: Optional[Path] = None,
                 use_disk_cache: bool = True,
                 workers: Optional[int] = None,
                 trace_dir: Optional[Path] = None,
                 checkpoint_dir: Optional[Path] = None) -> None:
        self.scale: ScalePreset = get_scale(scale_name)
        self.seed = seed
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_disk_cache = use_disk_cache
        # Worker count never enters cache keys: per-trial seeding makes
        # results bit-identical for any value, so parallelism is purely an
        # execution detail.  Tracing is an execution detail for the same
        # reason: event logs are a side product, never a cache input.
        if workers is None:
            workers = int(os.environ.get("BOMP_WORKERS", "1"))
        self.workers = max(1, workers)
        if trace_dir is None:
            env_dir = os.environ.get("BOMP_TRACE_DIR")
            trace_dir = Path(env_dir) if env_dir else None
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        # Checkpointing, like tracing, is an execution detail: it never
        # enters cache keys, and a resumed search is bit-identical to an
        # uninterrupted one, so cached results stay valid either way.
        if checkpoint_dir is None:
            env_dir = os.environ.get("BOMP_CHECKPOINT_DIR")
            checkpoint_dir = Path(env_dir) if env_dir else None
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self._datasets: Dict[str, Dataset] = {}
        self._results: Dict[str, SearchResult] = {}

    # -- datasets ----------------------------------------------------------
    def dataset(self, name: str) -> Dataset:
        if name not in self._datasets:
            loader = {"cifar10": synthetic_cifar10,
                      "cifar100": synthetic_cifar100}[name]
            self._datasets[name] = loader(
                n_train=self.scale.n_train, n_test=self.scale.n_test,
                image_size=self.scale.image_size, seed=self.seed)
        return self._datasets[name]

    def config(self, dataset: str, mode: str, **overrides) -> SearchConfig:
        """A search config at this context's scale with paper references."""
        scalarization = ScalarizationConfig(
            ref_accuracy=0.8, ref_model_size=REF_SIZE[dataset])
        scale = self._dataset_scale(dataset)
        return SearchConfig(
            dataset=dataset, mode=get_mode(mode), scale=scale,
            scalarization=scalarization, seed=self.seed, **overrides)

    def _dataset_scale(self, dataset: str) -> ScalePreset:
        if dataset != "cifar100" or self.scale.name == "paper":
            return self.scale
        from dataclasses import replace
        return replace(
            self.scale, name=f"{self.scale.name}-c100",
            trials=max(6, int(self.scale.trials * CIFAR100_TRIAL_FRACTION)),
            early_epochs=min(self.scale.early_epochs,
                             CIFAR100_MAX_EARLY_EPOCHS),
            final_epochs=min(self.scale.final_epochs,
                             CIFAR100_MAX_FINAL_EPOCHS))

    # -- cached runs ----------------------------------------------------------
    def _cache_key(self, kind: str, config: SearchConfig, extra: str = ""
                   ) -> str:
        payload = "|".join([
            kind, config.describe(), str(config.seed),
            str(config.policies_per_trial), config.kernel,
            config.acquisition, config.observer, extra])
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _load_cached(self, key: str) -> Optional[SearchResult]:
        if key in self._results:
            return self._results[key]
        if self.use_disk_cache:
            path = self.cache_dir / f"{key}.json"
            if path.exists():
                result = SearchResult.load(str(path))
                self._results[key] = result
                return result
        return None

    def _store(self, key: str, result: SearchResult) -> None:
        self._results[key] = result
        if self.use_disk_cache:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            result.save(str(self.cache_dir / f"{key}.json"))

    def cached_result(self, key: str, builder) -> SearchResult:
        """Memoize an arbitrary derived :class:`SearchResult` by key.

        Used for derived artifacts that are not plain searches (the seed
        evaluation point, PTQ-searched models re-finalized with QAFT) so
        they survive across processes like search results do.
        """
        digest = hashlib.sha256(
            f"{key}|{self.scale.name}|{self.seed}".encode()).hexdigest()[:16]
        cached = self._load_cached(digest)
        if cached is not None:
            return cached
        result = builder()
        self._store(digest, result)
        return result

    def run_search(self, dataset: str, mode: str,
                   final_training: bool = True,
                   **overrides) -> SearchResult:
        """Run (or fetch) a BOMP-NAS search in the given mode."""
        config = self.config(dataset, mode, **overrides)
        key = self._cache_key("bomp", config,
                              extra=f"final={final_training}")
        cached = self._load_cached(key)
        if cached is not None:
            if final_training and not cached.final_models:
                # a cached search whose finals were stripped/never run:
                # backfill final training (deterministic per trial)
                from ..nas.final_training import train_final_models
                evaluator = BOMPNAS(config, self.dataset(dataset))
                cached.final_models = train_final_models(
                    evaluator, cached.pareto_trials())
                self._store(key, cached)
            return cached
        if not final_training:
            # a finally-trained run of the same search supersedes this one
            richer = self._load_cached(
                self._cache_key("bomp", config, extra="final=True"))
            if richer is not None:
                return richer
        tracer = self._make_tracer("bomp", config)
        run_dir = self._checkpoint_run_dir("bomp", config)
        resume_from = None
        if run_dir is not None:
            from ..resilience.checkpoint import has_checkpoint
            if has_checkpoint(run_dir):
                resume_from = run_dir
        try:
            try:
                result = BOMPNAS(config, self.dataset(dataset)).run(
                    final_training=final_training, workers=self.workers,
                    tracer=tracer, checkpoint_dir=run_dir,
                    resume_from=resume_from)
            except CheckpointError as error:
                if resume_from is None:
                    raise
                # stale/incompatible checkpoint (e.g. the scale changed
                # between invocations): fall back to a fresh run
                warnings.warn(f"ignoring checkpoint at {resume_from}: "
                              f"{error}", RuntimeWarning)
                result = BOMPNAS(config, self.dataset(dataset)).run(
                    final_training=final_training, workers=self.workers,
                    tracer=tracer, checkpoint_dir=run_dir)
        finally:
            if tracer is not None:
                tracer.close()
        self._store(key, result)
        return result

    def _checkpoint_run_dir(self, kind: str,
                            config: SearchConfig) -> Optional[Path]:
        """Per-search checkpoint directory under ``checkpoint_dir``."""
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / (
            f"{kind}-{config.mode.name}-{config.dataset}-"
            f"{config.scale.name}-seed{config.seed}")

    def _make_tracer(self, kind: str,
                     config: SearchConfig) -> Optional[RunTracer]:
        """A per-search run tracer under ``trace_dir``, if tracing is on."""
        if self.trace_dir is None:
            return None
        run_dir = self.trace_dir / (
            f"{kind}-{config.mode.name}-{config.dataset}-"
            f"{config.scale.name}-seed{config.seed}")
        return RunTracer(run_dir)

    def run_jasq(self, dataset: str, final_training: bool = True
                 ) -> SearchResult:
        """Run (or fetch) the JASQ evolutionary baseline."""
        config = self.config(dataset, "mp_ptq")
        key = self._cache_key("jasq", config,
                              extra=f"final={final_training}")
        cached = self._load_cached(key)
        if cached is not None:
            return cached
        result = JASQSearch(config, self.dataset(dataset)).run(
            final_training=final_training, workers=self.workers)
        self._store(key, result)
        return result

    def run_micronas(self, dataset: str, size_budget_kb: float = 16.0,
                     final_training: bool = True) -> SearchResult:
        """Run (or fetch) the muNAS-like constrained baseline."""
        config = self.config(dataset, "fixed8_ptq")
        key = self._cache_key("micronas", config,
                              extra=f"budget={size_budget_kb}"
                                    f"|final={final_training}")
        cached = self._load_cached(key)
        if cached is not None:
            return cached
        result = MicroNASSearch(config, self.dataset(dataset),
                                size_budget_kb=size_budget_kb).run(
            final_training=final_training, workers=self.workers)
        self._store(key, result)
        return result
