"""Dataset container and batch augmentation.

A :class:`Dataset` bundles train/test splits with metadata.  The
``shift_flip_augment`` function is the standard CIFAR augmentation (random
shift + horizontal flip) in batch form, pluggable into
:class:`repro.nn.trainer.Trainer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np


@dataclass
class Dataset:
    """An image-classification dataset with train and test splits.

    ``spec``, when present, is the keyword payload that regenerates this
    exact dataset via ``make_synthetic_dataset(**spec)``.  Parallel trial
    workers use it to rebuild the arrays from the seed instead of
    unpickling them; derived datasets (subsamples) carry no spec.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    spec: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.x_train.ndim != 4 or self.x_test.ndim != 4:
            raise ValueError("images must be NHWC")
        if self.x_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("train images/labels length mismatch")
        if self.x_test.shape[0] != self.y_test.shape[0]:
            raise ValueError("test images/labels length mismatch")
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        for labels in (self.y_train, self.y_test):
            if labels.size and (labels.min() < 0
                                or labels.max() >= self.num_classes):
                raise ValueError("labels out of range")

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.x_train.shape[1:]

    @property
    def n_train(self) -> int:
        return self.x_train.shape[0]

    @property
    def n_test(self) -> int:
        return self.x_test.shape[0]

    def subsample(self, n_train: int, n_test: int,
                  rng: np.random.Generator) -> "Dataset":
        """A smaller dataset with stratification-free random subsets."""
        if n_train > self.n_train or n_test > self.n_test:
            raise ValueError("cannot subsample beyond available data")
        train_idx = rng.choice(self.n_train, n_train, replace=False)
        test_idx = rng.choice(self.n_test, n_test, replace=False)
        return Dataset(
            name=f"{self.name}[{n_train}/{n_test}]",
            x_train=self.x_train[train_idx], y_train=self.y_train[train_idx],
            x_test=self.x_test[test_idx], y_test=self.y_test[test_idx],
            num_classes=self.num_classes)

    def batches(self, batch_size: int, rng: np.random.Generator
                ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches over the training split."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = rng.permutation(self.n_train)
        for start in range(0, self.n_train, batch_size):
            idx = order[start:start + batch_size]
            yield self.x_train[idx], self.y_train[idx]


def shift_flip_augment(max_shift: int = 2, flip: bool = True):
    """Batch augmentation: random shift (edge padded) + horizontal flip.

    Returns a callable ``(x_batch, rng) -> x_batch`` for the trainer.
    """
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")

    def augment(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = x.copy()
        n = x.shape[0]
        if max_shift > 0:
            shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
            for i in range(n):
                dy, dx = int(shifts[i, 0]), int(shifts[i, 1])
                if dy or dx:
                    out[i] = np.roll(out[i], (dy, dx), axis=(0, 1))
        if flip:
            flip_mask = rng.random(n) < 0.5
            out[flip_mask] = out[flip_mask, :, ::-1, :]
        return out

    return augment
