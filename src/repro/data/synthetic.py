"""Synthetic CIFAR-10/100 surrogates.

Real CIFAR cannot be downloaded in this environment, so the reproduction
trains on a synthetic image-classification task engineered to preserve the
properties the NAS loop depends on:

- images are spatially structured (low-frequency class prototypes), so
  convolutions and downsampling genuinely help;
- classes have multi-modal intra-class variation plus pixel noise, so the
  task is *not* saturated — accuracy rises with model capacity and training
  time, and falls when quantization noise corrupts the weights;
- a small label-noise floor bounds achievable accuracy below 100%.

Class prototypes are low-pass Gaussian random fields; a sample is a random
mode of its class, plus fresh high-frequency noise, a random sub-pixel
contrast jitter and a random shift/flip.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .datasets import Dataset


def _random_field(rng: np.random.Generator, image_size: int,
                  channels: int, coarse: int) -> np.ndarray:
    """Smooth random field: white noise on a coarse grid, upsampled."""
    coarse_noise = rng.normal(size=(coarse, coarse, channels))
    zoom_factor = image_size / coarse
    field = ndimage.zoom(coarse_noise, (zoom_factor, zoom_factor, 1),
                         order=1)
    field = field[:image_size, :image_size, :]
    return field.astype(np.float32)


def make_synthetic_dataset(name: str, num_classes: int,
                           n_train: int, n_test: int,
                           image_size: int = 16,
                           channels: int = 3,
                           n_modes: int = 3,
                           noise_sigma: float = 0.9,
                           label_noise: float = 0.02,
                           coarse_grid: int = 4,
                           seed: int = 0) -> Dataset:
    """Generate a synthetic class-conditional image dataset.

    Args:
        num_classes: 10 for the CIFAR-10 surrogate, 100 for CIFAR-100.
        n_modes: prototypes per class (intra-class diversity).
        noise_sigma: per-pixel noise std relative to unit-variance
            prototypes; larger = harder task.
        label_noise: fraction of labels replaced uniformly at random,
            bounding the Bayes accuracy below 1.
        coarse_grid: resolution of the prototype's underlying noise grid;
            smaller = smoother, more learnable prototypes.
    """
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    if n_train <= 0 or n_test <= 0:
        raise ValueError("split sizes must be positive")
    if image_size < 4:
        raise ValueError("image_size must be >= 4 (two stride-2 stages)")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError("label_noise must be in [0, 1)")
    if noise_sigma < 0:
        raise ValueError("noise_sigma must be non-negative")
    rng = np.random.default_rng(seed)
    prototypes = np.stack([
        np.stack([_random_field(rng, image_size, channels, coarse_grid)
                  for _ in range(n_modes)])
        for _ in range(num_classes)])  # (classes, modes, H, W, C)
    # normalize prototypes to unit variance so noise_sigma is relative
    prototypes /= prototypes.std() + 1e-8

    def sample_split(n: int) -> tuple:
        labels = rng.integers(0, num_classes, size=n)
        modes = rng.integers(0, n_modes, size=n)
        images = prototypes[labels, modes].copy()
        images += rng.normal(0.0, noise_sigma,
                             size=images.shape).astype(np.float32)
        # random contrast jitter
        contrast = rng.uniform(0.8, 1.2, size=(n, 1, 1, 1)).astype(np.float32)
        images *= contrast
        # random shift up to 1/8 of the image, and horizontal flip
        max_shift = max(1, image_size // 8)
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
        flips = rng.random(n) < 0.5
        for i in range(n):
            dy, dx = int(shifts[i, 0]), int(shifts[i, 1])
            if dy or dx:
                images[i] = np.roll(images[i], (dy, dx), axis=(0, 1))
            if flips[i]:
                images[i] = images[i][:, ::-1, :]
        if label_noise > 0:
            corrupt = rng.random(n) < label_noise
            labels[corrupt] = rng.integers(0, num_classes,
                                           size=int(corrupt.sum()))
        return images.astype(np.float32), labels.astype(np.int64)

    x_train, y_train = sample_split(n_train)
    x_test, y_test = sample_split(n_test)
    # full regeneration recipe, so parallel workers can rebuild the arrays
    # from the seed instead of receiving them pickled per task
    spec = dict(name=name, num_classes=num_classes, n_train=n_train,
                n_test=n_test, image_size=image_size, channels=channels,
                n_modes=n_modes, noise_sigma=noise_sigma,
                label_noise=label_noise, coarse_grid=coarse_grid, seed=seed)
    return Dataset(name=name, x_train=x_train, y_train=y_train,
                   x_test=x_test, y_test=y_test, num_classes=num_classes,
                   spec=spec)


def synthetic_cifar10(n_train: int = 2000, n_test: int = 500,
                      image_size: int = 16, seed: int = 0) -> Dataset:
    """The CIFAR-10 surrogate used throughout the experiments."""
    return make_synthetic_dataset(
        "synthetic-cifar10", num_classes=10, n_train=n_train, n_test=n_test,
        image_size=image_size, n_modes=3, noise_sigma=0.9,
        label_noise=0.02, seed=seed)


def synthetic_cifar100(n_train: int = 3000, n_test: int = 600,
                       image_size: int = 16, seed: int = 0) -> Dataset:
    """The CIFAR-100 surrogate: 100 classes, fewer samples per class."""
    return make_synthetic_dataset(
        "synthetic-cifar100", num_classes=100, n_train=n_train,
        n_test=n_test, image_size=image_size, n_modes=2, noise_sigma=0.8,
        label_noise=0.02, seed=seed)


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a surrogate dataset by paper name (``cifar10``/``cifar100``)."""
    loaders = {"cifar10": synthetic_cifar10, "cifar100": synthetic_cifar100}
    if name not in loaders:
        raise ValueError(f"unknown dataset {name!r}; choices: "
                         f"{sorted(loaders)}")
    return loaders[name](**kwargs)
