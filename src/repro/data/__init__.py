"""Data substrate: dataset container and synthetic CIFAR surrogates."""

from .datasets import Dataset, shift_flip_augment
from .synthetic import (load_dataset, make_synthetic_dataset,
                        synthetic_cifar10, synthetic_cifar100)

__all__ = [
    "Dataset", "shift_flip_augment",
    "make_synthetic_dataset", "synthetic_cifar10", "synthetic_cifar100",
    "load_dataset",
]
