"""Integer-only compute kernels for the inference engine.

Every function here accepts and returns integer arrays — float inputs are
rejected, and all contractions go through :func:`numpy.matmul` explicitly
(never the ``@`` operator) so the parity suite can monkeypatch
``np.matmul`` to prove no float GEMM runs on the hot path.

Inputs to the conv/dense kernels are *zero-point-shifted* codes
(``q - zp``) in int32; "same" padding therefore pads with literal zeros,
which corresponds exactly to the float reference padding with ``0.0``.
Accumulation is INT32, matching the deployment contract of TFLite/CMSIS-NN
integer kernels (the accumulator head-room proof lives in
``tests/quant/test_integer_equivalence.py``).
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from ..nn import functional as F

INT_KINDS = ("i", "u")

#: dtype validation toggle.  The public kernels check by default (they
#: accept arbitrary caller arrays); the planned executor owns every
#: buffer it touches, so its hot path only validates when
#: ``BOMP_INFER_DEBUG`` is set — validation cost must not pollute the
#: throughput bench.
CHECK_DTYPES = True

#: extra hot-path validation (arena dtypes, shapes) in the executor
DEBUG_CHECKS = bool(os.environ.get("BOMP_INFER_DEBUG"))


def set_check_dtypes(enabled: bool) -> bool:
    """Toggle kernel dtype validation; returns the previous setting."""
    global CHECK_DTYPES
    previous = CHECK_DTYPES
    CHECK_DTYPES = bool(enabled)
    return previous


def _require_int(x: np.ndarray, who: str) -> None:
    if CHECK_DTYPES and x.dtype.kind not in INT_KINDS:
        raise TypeError(f"{who}: expected integer array, got {x.dtype}")


def _as_int32(x: np.ndarray) -> np.ndarray:
    """int32 view of ``x`` — a copy only when the dtype actually differs."""
    return x if x.dtype == np.int32 else x.astype(np.int32)


def conv2d_int(x: np.ndarray, weight: np.ndarray, stride: int,
               padding: str) -> np.ndarray:
    """Standard convolution: int32 NHWC codes x int32 (k,k,cin,cout)."""
    _require_int(x, "conv2d_int")
    _require_int(weight, "conv2d_int")
    kernel = weight.shape[0]
    cout = weight.shape[3]
    if kernel == 1:
        strided = x[:, ::stride, ::stride, :]
        n, ho, wo, c = strided.shape
        out = np.matmul(_as_int32(np.ascontiguousarray(strided)
                                  .reshape(-1, c)),
                        _as_int32(weight.reshape(c, cout)))
        return out.reshape(n, ho, wo, cout)
    padded, _, _ = F.pad_input(x, kernel, stride, padding)
    patches = F.extract_patches(padded, kernel, stride)
    n, ho, wo, c, kh, kw = patches.shape
    # flatten both operands in (c, kh, kw) order so rows line up
    lhs = _as_int32(np.ascontiguousarray(patches).reshape(
        n * ho * wo, c * kh * kw))
    rhs = _as_int32(weight.transpose(2, 0, 1, 3).reshape(
        c * kh * kw, cout))
    return np.matmul(lhs, rhs).reshape(n, ho, wo, cout)


def depthwise_conv2d_int(x: np.ndarray, weight: np.ndarray, stride: int,
                         padding: str) -> np.ndarray:
    """Depthwise convolution via shift-and-add: int32 x int32 (k,k,c)."""
    _require_int(x, "depthwise_conv2d_int")
    _require_int(weight, "depthwise_conv2d_int")
    kernel = weight.shape[0]
    padded, _, _ = F.pad_input(x, kernel, stride, padding)
    out_h = F.conv_output_size(x.shape[1], kernel, stride, padding)
    out_w = F.conv_output_size(x.shape[2], kernel, stride, padding)
    span_h = (out_h - 1) * stride + 1
    span_w = (out_w - 1) * stride + 1
    out = np.zeros((x.shape[0], out_h, out_w, x.shape[3]), dtype=np.int32)
    w32 = _as_int32(weight)
    for i in range(kernel):
        for j in range(kernel):
            window = padded[:, i:i + span_h:stride, j:j + span_w:stride, :]
            out += _as_int32(window) * w32[i, j]
    return out


def dense_int(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Fully-connected: int32 (N, cin) x int32 (cin, cout)."""
    _require_int(x, "dense_int")
    _require_int(weight, "dense_int")
    return np.matmul(_as_int32(x), _as_int32(weight))


def rounded_mean_int(x: np.ndarray, axis: Tuple[int, ...]) -> np.ndarray:
    """Round-half-up integer mean over ``axis`` (codes are non-negative)."""
    _require_int(x, "rounded_mean_int")
    count = 1
    for ax in axis:
        count *= x.shape[ax]
    total = x.astype(np.int64).sum(axis=axis)
    return ((total + count // 2) // count).astype(np.int32)


def global_avg_pool_int(x: np.ndarray) -> np.ndarray:
    """(N, H, W, C) codes -> (N, C) rounded integer mean."""
    return rounded_mean_int(x, axis=(1, 2))


def avg_pool_int(x: np.ndarray, pool: int) -> np.ndarray:
    """Non-overlapping ``pool x pool`` average in the integer domain."""
    _require_int(x, "avg_pool_int")
    n, h, w, c = x.shape
    ho, wo = h // pool, w // pool
    tiles = x[:, :ho * pool, :wo * pool, :].reshape(
        n, ho, pool, wo, pool, c)
    return rounded_mean_int(tiles, axis=(2, 4))


def max_pool_int(x: np.ndarray, pool: int) -> np.ndarray:
    """Non-overlapping ``pool x pool`` max — exact in any domain."""
    _require_int(x, "max_pool_int")
    n, h, w, c = x.shape
    ho, wo = h // pool, w // pool
    tiles = x[:, :ho * pool, :wo * pool, :].reshape(
        n, ho, pool, wo, pool, c)
    return tiles.max(axis=(2, 4)).astype(np.int32)
