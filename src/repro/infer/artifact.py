"""Deployable artifacts: one self-contained file from search to device.

``repro export`` materializes a searched candidate out of a saved run
(a ``SearchResult`` JSON or a resilience checkpoint), re-runs final
training exactly as :func:`repro.nas.final_training.train_final_model`
would — the rng is derived from ``(config seed, trial index)``, so the
artifact is bit-reproducible — and writes a single file::

    BOMPDEPL | version | header JSON | quant container v2 | BN-stats npz

The header carries the genome, class count, input geometry, and the
dataset regeneration spec; the container carries quantized weights,
biases, and activation grids; the npz carries the BatchNorm statistics
and affine parameters (the only trained state the container omits).
``repro infer`` rebuilds the fake-quant reference model from these three
parts with bit-identical logits, compiles the integer program, and
evaluates deployed accuracy — with no access to the original run.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..nn.layers import BatchNorm2D
from ..nn.module import FLOAT, Module
from ..quant.export import export_model, rebuild_into
from .compile import compile_model
from .engine import Program

ARTIFACT_MAGIC = b"BOMPDEPL"
ARTIFACT_VERSION = 1

#: default artifact filename extension
ARTIFACT_SUFFIX = ".bomp"


class ArtifactError(ValueError):
    """An artifact file is malformed or inconsistent with its model."""


def collect_bn_stats(model: Module) -> Dict[str, np.ndarray]:
    """BatchNorm statistics + affine params, keyed by traversal order.

    The quant container stores weights, biases, and activation grids;
    BN running statistics and gamma/beta are the remaining trained state
    a rebuilt model needs.  Keys are positional (``bn0.gamma`` ...)
    because :meth:`Module.modules` traversal order is deterministic for a
    fixed architecture.
    """
    stats: Dict[str, np.ndarray] = {}
    for index, module in enumerate(
            m for m in model.modules() if isinstance(m, BatchNorm2D)):
        stats[f"bn{index}.gamma"] = module.gamma.data
        stats[f"bn{index}.beta"] = module.beta.data
        stats[f"bn{index}.running_mean"] = module.running_mean
        stats[f"bn{index}.running_var"] = module.running_var
    return stats


def restore_bn_stats(model: Module, stats: Dict[str, np.ndarray]) -> None:
    """Inverse of :func:`collect_bn_stats` onto a same-architecture model."""
    norms = [m for m in model.modules() if isinstance(m, BatchNorm2D)]
    expected = 4 * len(norms)
    if len(stats) != expected:
        raise ArtifactError(
            f"model has {len(norms)} BatchNorm layers ({expected} stat "
            f"arrays), artifact has {len(stats)}")
    for index, module in enumerate(norms):
        module.gamma.data = stats[f"bn{index}.gamma"].astype(FLOAT)
        module.beta.data = stats[f"bn{index}.beta"].astype(FLOAT)
        module.running_mean = \
            stats[f"bn{index}.running_mean"].astype(FLOAT)
        module.running_var = stats[f"bn{index}.running_var"].astype(FLOAT)


@dataclass
class DeployableArtifact:
    """Everything needed to rebuild, compile, and evaluate one model."""

    genome: Any                   # MixedPrecisionGenome
    num_classes: int
    image_size: int
    container: bytes              # quant.export container (version 2)
    bn_stats: Dict[str, np.ndarray]
    in_channels: int = 3
    dataset_spec: Optional[Dict[str, Any]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def rebuild(self) -> Module:
        """Reconstruct the fake-quant reference model (bit-identical)."""
        from ..space.builder import build_model
        model = build_model(self.genome.arch, self.num_classes,
                            rng=np.random.default_rng(0))
        restore_bn_stats(model, self.bn_stats)
        rebuild_into(model, self.container)
        model.set_training(False)
        return model

    def compile(self, name: str = "model") -> Program:
        """Rebuild and compile into an integer-only :class:`Program`."""
        return compile_model(self.rebuild(), self.image_size, name=name)

    def test_set(self) -> Tuple[np.ndarray, np.ndarray]:
        """Regenerate the evaluation split from the stored dataset spec."""
        if self.dataset_spec is None:
            raise ArtifactError("artifact records no dataset spec; "
                                "supply evaluation images explicitly")
        from ..data.synthetic import make_synthetic_dataset
        dataset = make_synthetic_dataset(**self.dataset_spec)
        return dataset.x_test, dataset.y_test


def artifact_to_bytes(artifact: DeployableArtifact) -> bytes:
    """Serialize an artifact to the single-file container format."""
    from ..nas.trial import genome_to_dict
    header = {
        "genome": genome_to_dict(artifact.genome),
        "num_classes": artifact.num_classes,
        "image_size": artifact.image_size,
        "in_channels": artifact.in_channels,
        "dataset_spec": artifact.dataset_spec,
        "meta": artifact.meta,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    npz = io.BytesIO()
    np.savez(npz, **artifact.bn_stats)
    npz_bytes = npz.getvalue()
    stream = io.BytesIO()
    stream.write(ARTIFACT_MAGIC)
    stream.write(struct.pack("<I", ARTIFACT_VERSION))
    for blob in (header_bytes, artifact.container, npz_bytes):
        stream.write(struct.pack("<I", len(blob)))
        stream.write(blob)
    return stream.getvalue()


def artifact_from_bytes(data: bytes) -> DeployableArtifact:
    """Inverse of :func:`artifact_to_bytes`."""
    from ..nas.trial import genome_from_dict
    stream = io.BytesIO(data)
    if stream.read(len(ARTIFACT_MAGIC)) != ARTIFACT_MAGIC:
        raise ArtifactError("not a BOMP deployment artifact")
    (version,) = struct.unpack("<I", stream.read(4))
    if version != ARTIFACT_VERSION:
        raise ArtifactError(f"unsupported artifact version {version}")

    def read_blob() -> bytes:
        (length,) = struct.unpack("<I", stream.read(4))
        blob = stream.read(length)
        if len(blob) != length:
            raise ArtifactError("truncated artifact")
        return blob

    header = json.loads(read_blob().decode())
    container = read_blob()
    with np.load(io.BytesIO(read_blob())) as archive:
        bn_stats = {key: archive[key] for key in archive.files}
    return DeployableArtifact(
        genome=genome_from_dict(header["genome"]),
        num_classes=int(header["num_classes"]),
        image_size=int(header["image_size"]),
        in_channels=int(header.get("in_channels", 3)),
        container=container, bn_stats=bn_stats,
        dataset_spec=header.get("dataset_spec"),
        meta=header.get("meta", {}))


def save_artifact(artifact: DeployableArtifact,
                  path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_bytes(artifact_to_bytes(artifact))
    return path


def load_artifact(path: Union[str, Path]) -> DeployableArtifact:
    return artifact_from_bytes(Path(path).read_bytes())


# -- content-hash artifact cache -------------------------------------------

@dataclass
class CachedArtifact:
    """One compiled ``.bomp`` entry: the immutable share-everything unit.

    ``program`` is compiled once per *content* and then shared — stages
    are finalized at compile time and never mutated afterwards, so any
    number of threads may build private
    :class:`~repro.infer.engine.ArenaExecutor` instances over it.
    """

    digest: str
    artifact: DeployableArtifact
    program: Program


class ArtifactCache:
    """In-memory LRU of compiled ``.bomp`` artifacts, keyed by content.

    Rebuilding and compiling an artifact costs ~100× more than reading
    and hashing its bytes, so every load re-reads the file, hashes it
    (SHA-256), and reuses the compiled program when the *content* is
    unchanged — the file may move, be re-exported bit-identically, or be
    loaded under several model names and still hit.  A changed file
    yields a new digest: the stale entry for that path is dropped
    immediately (not merely aged out), so a registry reload after
    re-export can never serve the old weights.

    Thread-safe: the serving registry loads models from concurrent HTTP
    handler threads.  A race on the same digest may compile twice; the
    loser's program is discarded, which wastes work but never shares a
    half-built entry.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CachedArtifact]" = OrderedDict()
        self._path_digest: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def load(self, path: Union[str, Path],
             name: Optional[str] = None) -> CachedArtifact:
        """The cached (artifact, compiled program) for ``path``'s content."""
        from ..obs.trace import get_recorder
        path = Path(path)
        key = str(path.resolve())
        data = path.read_bytes()
        digest = hashlib.sha256(data).hexdigest()
        with self._lock:
            stale = self._path_digest.get(key)
            if stale is not None and stale != digest:
                self._entries.pop(stale, None)     # file changed on disk
            self._path_digest[key] = digest
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self.hits += 1
        recorder = get_recorder()
        if entry is not None:
            if recorder.enabled:
                recorder.counter("infer.artifact_cache.hits")
            return entry
        artifact = artifact_from_bytes(data)
        program = artifact.compile(name=name or path.stem)
        entry = CachedArtifact(digest=digest, artifact=artifact,
                               program=program)
        with self._lock:
            self.misses += 1
            self._entries[digest] = entry
            self._entries.move_to_end(digest)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                for k, d in list(self._path_digest.items()):
                    if d == evicted:
                        del self._path_digest[k]
        if recorder.enabled:
            recorder.counter("infer.artifact_cache.misses")
        return entry

    def invalidate(self, path: Union[str, Path]) -> None:
        """Drop the entry currently associated with ``path`` (if any)."""
        key = str(Path(path).resolve())
        with self._lock:
            digest = self._path_digest.pop(key, None)
            if digest is not None:
                self._entries.pop(digest, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._path_digest.clear()


#: the process-wide default cache (``repro infer`` loops, serve registry)
_DEFAULT_CACHE = ArtifactCache()


def default_artifact_cache() -> ArtifactCache:
    return _DEFAULT_CACHE


def load_artifact_cached(path: Union[str, Path],
                         name: Optional[str] = None) -> CachedArtifact:
    """Load + compile through the process-wide :class:`ArtifactCache`."""
    return _DEFAULT_CACHE.load(path, name=name)


def build_artifact(model: Module, genome: Any, num_classes: int,
                   image_size: int, in_channels: int = 3,
                   dataset_spec: Optional[Dict[str, Any]] = None,
                   meta: Optional[Dict[str, Any]] = None
                   ) -> DeployableArtifact:
    """Package a quantized model + its genome into an artifact."""
    return DeployableArtifact(
        genome=genome, num_classes=num_classes, image_size=image_size,
        in_channels=in_channels, container=export_model(model),
        bn_stats=collect_bn_stats(model), dataset_spec=dataset_spec,
        meta=dict(meta or {}))


# -- materialization from a saved run -------------------------------------

def _load_run(source: Union[str, Path]):
    """``(config, dataset, trials)`` from a result JSON or checkpoint.

    ``source`` may be a ``SearchResult`` JSON, a ``checkpoint.json``, or a
    run directory containing either (``result.json`` preferred).
    """
    from ..nas.results import SearchResult, config_from_dict
    from ..nas.trial import TrialResult
    path = Path(source)
    if path.is_dir():
        for candidate in ("result.json", "checkpoint.json"):
            if (path / candidate).exists():
                path = path / candidate
                break
        else:
            raise ArtifactError(
                f"{path}: no result.json or checkpoint.json found")
    payload = json.loads(path.read_text())
    if "optimizer" in payload:          # a resilience checkpoint
        from ..data.synthetic import make_synthetic_dataset
        from ..resilience.checkpoint import SearchCheckpoint
        checkpoint = SearchCheckpoint.from_dict(payload)
        if checkpoint.dataset_spec is None:
            raise ArtifactError(
                f"{path}: checkpoint records no dataset spec")
        config = config_from_dict(checkpoint.config)
        dataset = make_synthetic_dataset(**checkpoint.dataset_spec)
        trials = [TrialResult.from_dict(t) for t in checkpoint.trials]
    else:                               # a SearchResult JSON
        from ..data.synthetic import load_dataset
        result = SearchResult.from_dict(payload)
        config = result.config
        scale = config.scale
        dataset = load_dataset(config.dataset, n_train=scale.n_train,
                               n_test=scale.n_test,
                               image_size=scale.image_size,
                               seed=config.seed)
        trials = result.trials
    if not trials:
        raise ArtifactError(f"{path}: run contains no trials")
    return config, dataset, trials


def _pick_trial(trials, trial_index: Optional[int]):
    if trial_index is None:
        return max(trials, key=lambda t: t.score)
    for trial in trials:
        if trial.index == trial_index:
            return trial
    raise ArtifactError(
        f"no trial with index {trial_index} "
        f"(run has {[t.index for t in trials]})")


def export_run(source: Union[str, Path],
               trial_index: Optional[int] = None,
               force_qaft: Optional[bool] = None):
    """Materialize a deployable artifact from a saved run.

    Re-runs final training of the selected trial (default: highest
    score) on the regenerated dataset — the deterministic
    ``(seed, trial index)`` rng makes this reproduce the original
    final-trained weights exactly.  Returns
    ``(artifact, FinalModelResult)``.
    """
    from ..nas.final_training import materialize_final_model
    from ..nas.search import BOMPNAS
    config, dataset, trials = _load_run(source)
    trial = _pick_trial(trials, trial_index)
    nas = BOMPNAS(config, dataset)
    model, final = materialize_final_model(nas, trial,
                                           force_qaft=force_qaft)
    meta = {
        "trial_index": trial.index,
        "mode": config.mode.name,
        "seed": config.seed,
        "accuracy": final.accuracy,
        "fp_accuracy": final.fp_accuracy,
        "size_kb": final.size_kb,
    }
    if final.deployed_accuracy is not None:
        meta["deployed_accuracy"] = final.deployed_accuracy
    artifact = build_artifact(
        model, trial.genome, dataset.num_classes,
        image_size=dataset.image_shape[0],
        in_channels=dataset.image_shape[2],
        dataset_spec=dataset.spec, meta=meta)
    return artifact, final
