"""Inference-throughput measurement and the ``BENCH_infer.json`` log.

``measure_inference`` times the same batch of images through the serial
float fake-quant reference (``model.forward``) and through the compiled
integer engine (``Program.run``), checks their top-1 agreement, and
returns a record in the stable ``BENCH_infer.json`` schema (validated by
``scripts/check_schema.py`` like the parallel-engine bench log).

Schema (version 2)::

    {"schema": 2,
     "runs": [{"timestamp": <iso8601>, "dataset": ..., "bits": ...,
               "image_size": ..., "n_images": ..., "batch_size": ...,
               "stages": ..., "macs_per_image": ...,
               "float_s": ..., "int_s": ...,
               "float_ips": ..., "int_ips": ..., "int_over_float": ...,
               "top1_agreement": ...,
               "arena_bytes": ..., "allocs_per_image": ...,
               "host": {"platform": ..., "python": ..., "numpy": ...,
                        "cpus": ...}}]}

Version 2 appends the arena executor's memory figures (``arena_bytes``
is the planned executor's total preallocated buffer footprint at the
bench batch size; ``allocs_per_image`` counts hot-path ndarray
allocations per image, 0 in steady state) and a ``host`` block so
cross-machine ratios are interpretable.  Fields are only ever appended,
never renamed, so version-1 readers still find everything they knew
about; records predating v2 carry ``None`` for the new fields.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional

BENCH_SCHEMA_VERSION = 2

#: record fields, in stable order (new fields are appended, never renamed)
RECORD_FIELDS = (
    "timestamp", "dataset", "bits", "image_size", "n_images", "batch_size",
    "stages", "macs_per_image", "float_s", "int_s", "float_ips", "int_ips",
    "int_over_float", "top1_agreement", "arena_bytes", "allocs_per_image",
    "host",
)

#: fields added after schema 1 — old records carry None for these
V2_FIELDS = ("arena_bytes", "allocs_per_image", "host")


def host_metadata() -> Dict[str, Any]:
    """The host facts that make a throughput ratio comparable.

    Delegates to the shared :mod:`repro.obs.host` fingerprint (v2 adds
    the CPU model on top of the original four keys; appending keys keeps
    the contract).
    """
    from ..obs.host import host_metadata as shared_host_metadata
    return shared_host_metadata()


def default_bench_path() -> Path:
    """``BENCH_infer.json`` at the repository root (cwd fallback)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "BENCH_infer.json"
    return Path.cwd() / "BENCH_infer.json"


def append_bench_record(path: Path, record: Dict[str, Any]) -> None:
    """Append one run record, creating or migrating the file as needed.

    A version-1 file is migrated in place: the schema stamp is bumped and
    every pre-existing run gains the v2 fields as ``None`` (the data was
    never measured, and readers must be able to rely on field presence).
    """
    path = Path(path)
    payload: Dict[str, Any] = {"schema": BENCH_SCHEMA_VERSION, "runs": []}
    if path.exists():
        existing = json.loads(path.read_text())
        if isinstance(existing, dict) and isinstance(
                existing.get("runs"), list):
            payload["runs"] = existing["runs"]
            for run in payload["runs"]:
                if isinstance(run, dict):
                    for field in V2_FIELDS:
                        run.setdefault(field, None)
    ordered = {key: record.get(key) for key in RECORD_FIELDS}
    for key in record:
        if key not in ordered:
            ordered[key] = record[key]
    payload["runs"].append(ordered)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def measure_inference(dataset: str = "cifar10", bits: int = 8,
                      image_size: int = 16, n_images: int = 256,
                      batch_size: int = 256, seed: int = 7,
                      calibration_images: int = 64,
                      model=None, x: Optional[Any] = None
                      ) -> Dict[str, Any]:
    """Time fake-quant vs integer-engine inference on the same batch.

    Without an explicit ``model``, a seed-architecture network is built,
    quantized homogeneously at ``bits``, and PTQ-calibrated on synthetic
    images — weights need not be trained for a throughput measurement,
    and the untrained path keeps the bench fast and deterministic.

    Both paths get one untimed warmup pass (the integer path's first run
    builds the arena executor; the float path's first run pays numpy's
    lazy BLAS setup) so the timed section measures steady state.
    """
    import numpy as np

    from ..data.synthetic import load_dataset
    from ..quant.apply import apply_policy, calibrate
    from ..space.builder import build_model
    from ..space.space import SearchSpace
    from .compile import compile_model

    if x is None:
        data = load_dataset(dataset, n_train=max(calibration_images, 1),
                            n_test=max(n_images, 1),
                            image_size=image_size, seed=seed)
        x = data.x_test[:n_images]
        calibration = data.x_train[:calibration_images]
    else:
        x = np.asarray(x)
        calibration = x
    if model is None:
        space = SearchSpace(dataset)
        num_classes = {"cifar10": 10, "cifar100": 100}[dataset]
        model = build_model(space.seed_arch(), num_classes,
                            rng=np.random.default_rng(seed))
        apply_policy(model, space.seed_policy(bits))
        calibrate(model, calibration, batch_size=batch_size)
    model.set_training(False)
    program = compile_model(model, int(x.shape[1]), name="bench")

    warm = x[:batch_size]
    model.forward(warm)
    program.run(warm, batch_size=batch_size)

    start = time.perf_counter()
    float_logits = []
    for lo in range(0, x.shape[0], batch_size):
        float_logits.append(model.forward(x[lo:lo + batch_size]))
    float_logits = np.concatenate(float_logits, axis=0)
    float_s = time.perf_counter() - start

    n = int(x.shape[0])
    executor = program.executor(min(batch_size, max(n, 1)))
    allocs_before = executor.runtime_allocs
    start = time.perf_counter()
    int_logits = program.run(x, batch_size=batch_size)
    int_s = time.perf_counter() - start

    agreement = float((np.argmax(int_logits, axis=1)
                       == np.argmax(float_logits, axis=1)).mean())
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "dataset": dataset, "bits": bits,
        "image_size": int(x.shape[1]), "n_images": n,
        "batch_size": batch_size, "stages": len(program.stages),
        "macs_per_image": program.total_macs(),
        "float_s": round(float_s, 4), "int_s": round(int_s, 4),
        "float_ips": round(n / float_s, 2) if float_s else None,
        "int_ips": round(n / int_s, 2) if int_s else None,
        "int_over_float": round(int_s / float_s, 3) if float_s else None,
        "top1_agreement": agreement,
        "arena_bytes": int(executor.alloc_bytes),
        "allocs_per_image": (executor.runtime_allocs - allocs_before) / n
        if n else 0.0,
        "host": host_metadata(),
    }
