"""Parity harness: integer engine vs the float fake-quant reference.

Two complementary checks on the same inputs:

1. **Teacher-forced per-stage divergence.**  The reference model is run
   once with capturing input quantizers, recording the exact integer
   codes the fake-quant simulation produces at every quantized layer
   boundary.  Each integer stage segment (a conv stage plus any pooling
   up to the next quantized consumer) is then fed the *reference* input
   codes, and its output codes are compared against the reference codes
   of the next boundary.  The divergence budget is the segment's rounding
   step count (``Stage.round_steps``): one LSB per requantization step —
   output requantize, bias fold, residual requantize/residual input
   quantization, pool mean — so errors cannot be laundered through
   accumulated drift.

2. **End-to-end top-1 agreement.**  The full integer pipeline (input
   quantization onward) must agree with the reference's argmax on at
   least ``min_agreement`` of the images.

Both are deterministic given fixed model weights and inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..nn.module import FLOAT
from ..quant.apply import quantizable_layers
from .engine import Program

#: stage kinds that own an activation grid (and thus reference codes)
_QUANT_KINDS = ("conv", "dw", "dense")


class _CapturingQuantizer:
    """Drop-in for a frozen ActivationQuantizer that records its codes.

    Reproduces the reference forward arithmetic exactly (same rounding,
    same clip) while keeping the integer codes it computed.
    """

    calibrating = False  # only frozen quantizers are ever wrapped

    def __init__(self, inner) -> None:
        self.inner = inner
        self.codes: List[np.ndarray] = []

    def fake_quant(self, x: np.ndarray) -> np.ndarray:
        # stateless secondary read (residual path): no capture
        return self.inner.fake_quant(x)

    def forward(self, x: np.ndarray) -> np.ndarray:
        scale, zero_point = self.inner.quant_params()
        n_levels = 2 ** self.inner.bits - 1
        q = np.clip(np.round(x / scale + zero_point), 0, n_levels)
        self.codes.append(q.astype(np.int32))
        return ((q - zero_point) * scale).astype(FLOAT)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad


@dataclass
class StageParity:
    """Divergence of one teacher-forced stage segment."""

    name: str
    max_abs_diff: int             # LSBs of the segment's output grid
    tolerance: int                # = sum of round_steps across the segment

    @property
    def ok(self) -> bool:
        return self.max_abs_diff <= self.tolerance


@dataclass
class ParityReport:
    """Outcome of a full parity run."""

    stages: List[StageParity]
    max_logit_diff: float         # teacher-forced final dense vs reference
    top1_agreement: float         # end-to-end integer vs reference argmax
    n_images: int

    def ok(self, min_agreement: float = 0.99) -> bool:
        return (all(stage.ok for stage in self.stages)
                and self.top1_agreement >= min_agreement)

    def format(self) -> str:
        lines = [f"parity on {self.n_images} images:"]
        for stage in self.stages:
            flag = "ok " if stage.ok else "FAIL"
            lines.append(f"  {flag} {stage.name:<24} "
                         f"max|diff|={stage.max_abs_diff} LSB "
                         f"(budget {stage.tolerance})")
        lines.append(f"  teacher-forced logit max|diff|: "
                     f"{self.max_logit_diff:.3e}")
        lines.append(f"  end-to-end top-1 agreement: "
                     f"{self.top1_agreement:.4f}")
        return "\n".join(lines)


def capture_reference(model, x: np.ndarray):
    """Run the fake-quant reference, capturing codes at every boundary.

    Returns ``(codes, logits)`` — one int32 code array per quantizable
    layer (execution order) and the reference float logits.
    """
    layers = quantizable_layers(model)
    captures = []
    originals = []
    for layer in layers:
        quantizer = layer.input_quantizer
        if quantizer is None or not quantizer.frozen:
            raise ValueError(f"{layer.name}: input quantizer missing or "
                             "uncalibrated; parity needs a PTQ'd model")
        capture = _CapturingQuantizer(quantizer)
        originals.append(quantizer)
        captures.append(capture)
        layer.input_quantizer = capture
    model.set_training(False)
    try:
        logits = model.forward(x)
    finally:
        for layer, original in zip(layers, originals):
            layer.input_quantizer = original
    codes = []
    for capture in captures:
        if len(capture.codes) != 1:
            raise RuntimeError("expected exactly one forward per quantizer")
        codes.append(capture.codes[0])
    return codes, logits


def check_parity(model, program: Program, x: np.ndarray,
                 min_agreement: float = 0.99) -> ParityReport:
    """Compare ``program`` against the fake-quant ``model`` on batch ``x``.

    Returns a :class:`ParityReport`; callers decide whether
    ``report.ok(min_agreement)`` failing is fatal.
    """
    reference_codes, reference_logits = capture_reference(model, x)
    boundaries = [k for k, stage in enumerate(program.stages)
                  if stage.kind in _QUANT_KINDS]
    if len(boundaries) != len(reference_codes):
        raise ValueError(
            f"program has {len(boundaries)} quantized stages, model has "
            f"{len(reference_codes)} quantized layers")

    # reference codes for every saved residual input, keyed by stage index
    saved = {k: reference_codes[j] for j, k in enumerate(boundaries)
             if program.stages[k].save_input}

    stage_reports = []
    for j in range(len(boundaries) - 1):
        start, stop = boundaries[j], boundaries[j + 1]
        out = program.run_range(reference_codes[j], start, stop,
                                saved=dict(saved))
        diff = int(np.abs(out.astype(np.int64)
                          - reference_codes[j + 1].astype(np.int64)).max())
        budget = sum(program.stages[k].round_steps
                     for k in range(start, stop))
        stage_reports.append(StageParity(
            name=program.stages[start].name, max_abs_diff=diff,
            tolerance=budget))

    # teacher-forced final dense: exact integer accumulation, so only
    # float32-vs-float64 dequantization noise remains
    forced_logits = program.run_range(reference_codes[-1], boundaries[-1],
                                      len(program.stages))
    max_logit_diff = float(
        np.abs(forced_logits - reference_logits).max())

    integer_top1 = program.predict(x, batch_size=x.shape[0])
    reference_top1 = np.argmax(reference_logits, axis=1)
    agreement = float((integer_top1 == reference_top1).mean())

    return ParityReport(stages=stage_reports,
                        max_logit_diff=max_logit_diff,
                        top1_agreement=agreement,
                        n_images=int(x.shape[0]))
