"""Compile a quantized model into an integer-only stage program.

The compiler walks a :class:`~repro.nn.network.Sequential` built from the
search space (or any sequence of supported layers), fuses each
conv/BN/activation triplet into one *stage*, and precomputes everything
the integer engine needs so the hot path touches no floats:

- weight tensors as signed integer codes with the batch-norm *sign*
  folded in (per-channel symmetric quantization commutes with a positive
  per-channel rescale, so folding ``w' = w * bn_scale`` keeps the exact
  same codes up to sign and leaves all scales positive);
- the BN shift (plus any float bias) as an INT32 accumulator-domain bias
  ``round(shift / (s_x * s_eff))``;
- the gemmlowp fixed-point requantization multiplier per output channel,
  ``M_c = s_x * s_eff_c / s_y`` decomposed by
  :func:`~repro.infer.requant.quantize_multiplier`;
- the fused activation as a clamp on output *codes*: ReLU6 becomes
  ``[zp_y, zp_y + round(6/s_y)]`` intersected with the code range;
- residual adds (MobileNetV2 inverted bottlenecks) as a second
  requantization of the saved block-input codes into the output grid.

Dead BN channels (``bn_scale == 0``) zero the weight codes and substitute
``s_eff := s_y / s_x`` so the multiplier is exactly 1 and the channel
reduces to the constant ``round(shift / s_y)`` — no division by zero, no
overflow.

Stages that feed an averaging op (global average pool, AvgPool2D) defer
the code-range clamp ``[0, n_levels]`` to *after* the pool: the reference
model quantizes the pooled tensor, not the per-pixel one, so clamping
early would clip mass the float path keeps.  (Their activation clamp
still applies per pixel, as in the float model.)

Output grids come from the *next* quantized consumer's input quantizer —
the only calibrated ranges in the model — which is also exactly what the
parity harness compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.blocks import ConvBNReLU, InvertedBottleneck
from ..nn.conv import Conv2D, DepthwiseConv2D
from ..nn.layers import (BatchNorm2D, Dense, Flatten, GlobalAvgPool2D,
                         ReLU, ReLU6)
from ..nn.network import Sequential
from ..nn.pooling import AvgPool2D, Dropout, MaxPool2D
from .requant import RequantPlan, quantize_multipliers

INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1


class CompileError(ValueError):
    """The model cannot be lowered to an integer program."""


@dataclass
class Grid:
    """One affine activation grid: ``value = (code - zero_point) * scale``."""

    scale: float
    zero_point: int
    n_levels: int


@dataclass
class Stage:
    """One compiled op: all-integer parameters plus report metadata."""

    name: str
    kind: str                     # conv | dw | dense | gap | avgpool | maxpool | flatten
    in_shape: Tuple[int, ...]     # per-image, channels-last
    out_shape: Tuple[int, ...]
    macs: int = 0
    #: rounding steps this stage performs relative to the float reference
    #: (requantize, bias fold, residual, pool mean) — the parity budget
    round_steps: int = 0
    # -- conv/dw/dense ------------------------------------------------------
    weight: Optional[np.ndarray] = None    # integer codes, BN sign folded
    stride: int = 1
    padding: str = "same"
    in_zp: int = 0
    mult: Optional[np.ndarray] = None      # int64 mantissas, per out channel
    shift: Optional[np.ndarray] = None     # int64 exponents
    bias_acc: Optional[np.ndarray] = None  # int32 accumulator-domain bias
    out_zp: int = 0
    clamp_lo: int = 0
    clamp_hi: int = 0
    save_input: bool = False               # a later stage adds this input
    residual_from: Optional[int] = None    # stage index whose input to add
    res_mult: int = 0
    res_shift: int = 0
    res_zp: int = 0
    # -- final dense output dequantization (off the hot path) ---------------
    out_scale: Optional[np.ndarray] = None  # float64 s_x * s_w per class
    out_bias: Optional[np.ndarray] = None   # float32
    # -- pooling -------------------------------------------------------------
    pool: int = 2
    # -- report metadata -----------------------------------------------------
    weight_bits: int = 0
    weight_count: int = 0
    out_channels: int = 0
    # -- fused execution plan (filled by finalize_stage) ---------------------
    #: contraction-ready 2-D weight view ``(c*kh*kw, cout)`` (conv/dense)
    w2d: Optional[np.ndarray] = None
    #: ``bias_acc - in_zp * colsum(weight)``: folding the input zero point
    #: into the bias lets the engine contract *raw* codes (padding with
    #: ``in_zp``) instead of shifting every activation tensor first —
    #: exactly equal mod 2**32, i.e. bit-identical under int32 arithmetic
    bias_fused: Optional[np.ndarray] = None
    #: fused requantization operands for the output multiplier set
    rq: Optional[RequantPlan] = None
    #: fused requantization operands for the residual multiplier
    res_rq: Optional[RequantPlan] = None


def finalize_stage(stage: Stage) -> Stage:
    """Precompute the fused-execution operands of one stage, in place.

    Everything the planned executor needs beyond the reference fields:
    the weight reshaped once into its contraction layout, the input zero
    point folded into the bias (``matmul(x - zp, w) == matmul(x, w) -
    zp * colsum(w)`` exactly, including under int32 wraparound), and the
    requantization multipliers decomposed into
    :class:`~repro.infer.requant.RequantPlan` operand arrays.  Idempotent
    and cheap; ``compile_model`` calls it eagerly, the executor calls it
    defensively for hand-built programs.
    """
    if stage.rq is None and stage.mult is not None:
        stage.rq = RequantPlan.build(stage.mult, stage.shift)
    if stage.res_rq is None and stage.residual_from is not None:
        stage.res_rq = RequantPlan.build(stage.res_mult, stage.res_shift)
    if stage.bias_fused is None and stage.weight is not None:
        w = stage.weight
        if stage.kind == "conv":
            kernel = w.shape[0]
            cout = w.shape[3]
            if kernel == 1:
                stage.w2d = np.ascontiguousarray(
                    w.reshape(w.shape[2], cout), dtype=np.int32)
            else:
                stage.w2d = np.ascontiguousarray(
                    w.transpose(2, 0, 1, 3).reshape(-1, cout),
                    dtype=np.int32)
            colsum = w.sum(axis=(0, 1, 2), dtype=np.int64)
        elif stage.kind == "dw":
            colsum = w.sum(axis=(0, 1), dtype=np.int64)
        else:  # dense
            stage.w2d = np.ascontiguousarray(w, dtype=np.int32)
            colsum = w.sum(axis=0, dtype=np.int64)
        bias = (stage.bias_acc.astype(np.int64)
                if stage.bias_acc is not None
                else np.zeros_like(colsum))
        stage.bias_fused = (bias - np.int64(stage.in_zp)
                            * colsum).astype(np.int32)
    return stage


# -- intermediate units -------------------------------------------------------
@dataclass
class _ConvUnit:
    layer: object                 # Conv2D | DepthwiseConv2D
    bn: Optional[BatchNorm2D]
    act: Optional[str]            # None | "relu" | "relu6"
    residual_src: Optional[int] = None  # unit index whose input is added


@dataclass
class _PoolUnit:
    kind: str                     # gap | avgpool | maxpool | flatten
    pool: int = 2


@dataclass
class _DenseUnit:
    layer: Dense


def _flatten_units(model: Sequential) -> List[object]:
    items = list(model.layers)
    units: List[object] = []
    i = 0
    while i < len(items):
        layer = items[i]
        if isinstance(layer, ConvBNReLU):
            units.append(_ConvUnit(layer.conv, layer.bn, "relu6"))
            i += 1
        elif isinstance(layer, InvertedBottleneck):
            start = len(units)
            if layer.expand is not None:
                units.append(_ConvUnit(layer.expand.conv, layer.expand.bn,
                                       "relu6"))
            units.append(_ConvUnit(layer.depthwise, layer.dw_bn, "relu6"))
            project = _ConvUnit(layer.project, layer.project_bn, None)
            if layer.use_residual:
                project.residual_src = start
            units.append(project)
            i += 1
        elif isinstance(layer, (Conv2D, DepthwiseConv2D)):
            # peephole: bare conv [+ BN] [+ ReLU/ReLU6] at the top level
            bn = None
            act = None
            j = i + 1
            if j < len(items) and isinstance(items[j], BatchNorm2D):
                bn = items[j]
                j += 1
            if j < len(items) and isinstance(items[j], (ReLU, ReLU6)):
                act = "relu6" if isinstance(items[j], ReLU6) else "relu"
                j += 1
            units.append(_ConvUnit(layer, bn, act))
            i = j
        elif isinstance(layer, GlobalAvgPool2D):
            units.append(_PoolUnit("gap"))
            i += 1
        elif isinstance(layer, AvgPool2D):
            units.append(_PoolUnit("avgpool", layer.pool))
            i += 1
        elif isinstance(layer, MaxPool2D):
            units.append(_PoolUnit("maxpool", layer.pool))
            i += 1
        elif isinstance(layer, Flatten):
            units.append(_PoolUnit("flatten"))
            i += 1
        elif isinstance(layer, Dropout):
            i += 1                # identity at inference
        elif isinstance(layer, Dense):
            if i != len(items) - 1:
                raise CompileError(
                    "only a final classifier Dense is supported")
            units.append(_DenseUnit(layer))
            i += 1
        else:
            raise CompileError(
                f"unsupported layer for integer compilation: {layer!r}")
    if not units or not isinstance(units[-1], _DenseUnit):
        raise CompileError("network must end in a Dense classifier")
    return units


def _grid_of(layer) -> Grid:
    quantizer = layer.input_quantizer
    if quantizer is None or not quantizer.frozen:
        raise CompileError(
            f"{layer.name}: input quantizer missing or uncalibrated; "
            "run apply_policy + calibrate first")
    scale, zero_point = quantizer.quant_params()
    if not scale > 0:
        raise CompileError(f"{layer.name}: degenerate activation scale")
    return Grid(float(scale), int(zero_point), 2 ** quantizer.bits - 1)


def _weight_codes(layer) -> Tuple[np.ndarray, np.ndarray, int]:
    """(integer codes, float64 per-channel scales, bits) of a layer."""
    quantizer = layer.weight_quantizer
    if quantizer is None:
        raise CompileError(f"{layer.name}: no weight quantizer attached")
    if quantizer.bits > 8:
        raise CompileError(
            f"{layer.name}: {quantizer.bits}-bit weights exceed the "
            "engine's 8-bit integer kernels")
    weights = layer.weight.data
    axis = layer.weight_channel_axis
    scales = np.asarray(quantizer.scale_for(weights), dtype=np.float64)
    qmax = 2 ** (quantizer.bits - 1) - 1
    shape = [1] * weights.ndim
    shape[axis] = -1
    codes = np.clip(np.round(weights / scales.reshape(shape)),
                    -qmax, qmax).astype(np.int32)
    return codes, scales, quantizer.bits


def _conv_stage(unit: _ConvUnit, grid_in: Grid, grid_out: Grid,
                in_shape: Tuple[int, ...], deferred: bool,
                res_grid: Optional[Grid]) -> Stage:
    layer = unit.layer
    codes, w_scales, bits = _weight_codes(layer)
    axis = layer.weight_channel_axis
    cout = layer.weight.data.shape[axis]
    shape = [1] * codes.ndim
    shape[axis] = -1

    if unit.bn is not None:
        bn_scale, bn_shift = unit.bn.fold_scale_shift()
        bn_scale = bn_scale.astype(np.float64)
        bn_shift = bn_shift.astype(np.float64)
    else:
        bn_scale = np.ones(cout, dtype=np.float64)
        bn_shift = np.zeros(cout, dtype=np.float64)
    if getattr(layer, "bias", None) is not None:
        bn_shift = bn_shift + bn_scale * layer.bias.data.astype(np.float64)

    sign = np.sign(bn_scale).astype(np.int32)
    codes = codes * sign.reshape(shape)
    s_eff = w_scales * np.abs(bn_scale)
    # dead channels: constant output round(shift / s_y), multiplier exactly 1
    s_eff = np.where(s_eff == 0.0, grid_out.scale / grid_in.scale, s_eff)

    mults, shifts = quantize_multipliers(
        grid_in.scale * s_eff / grid_out.scale)
    bias_acc = np.clip(np.round(bn_shift / (grid_in.scale * s_eff)),
                       INT32_MIN, INT32_MAX).astype(np.int32)

    zp_y, n_y = grid_out.zero_point, grid_out.n_levels
    lo, hi = (INT32_MIN, INT32_MAX) if deferred else (0, n_y)
    if unit.act in ("relu", "relu6"):
        lo = max(lo, zp_y)
    if unit.act == "relu6":
        hi = min(hi, zp_y + int(np.round(6.0 / grid_out.scale)))

    depthwise = isinstance(layer, DepthwiseConv2D)
    h, w = in_shape[0], in_shape[1]
    out_h = F.conv_output_size(h, layer.kernel, layer.stride, layer.padding)
    out_w = F.conv_output_size(w, layer.kernel, layer.stride, layer.padding)
    stage = Stage(
        name=layer.name, kind="dw" if depthwise else "conv",
        in_shape=tuple(in_shape), out_shape=(out_h, out_w, cout),
        macs=layer.macs(h, w),
        weight=codes, stride=layer.stride, padding=layer.padding,
        in_zp=grid_in.zero_point, mult=mults, shift=shifts,
        bias_acc=bias_acc, out_zp=zp_y, clamp_lo=int(lo), clamp_hi=int(hi),
        weight_bits=bits, weight_count=int(codes.size), out_channels=cout,
        round_steps=2)  # output requantize + bias fold
    if unit.residual_src is not None:
        if res_grid is None:
            raise CompileError(f"{layer.name}: residual grid unresolved")
        stage.residual_from = unit.residual_src
        stage.res_mult, stage.res_shift = quantize_multipliers(
            np.array([res_grid.scale / grid_out.scale]))
        stage.res_mult = int(stage.res_mult[0])
        stage.res_shift = int(stage.res_shift[0])
        stage.res_zp = res_grid.zero_point
        stage.round_steps += 2  # residual requantize + its input-quant error
    return stage


def _dense_stage(unit: _DenseUnit, grid_in: Grid,
                 in_shape: Tuple[int, ...]) -> Stage:
    layer = unit.layer
    if in_shape != (layer.in_features,):
        raise CompileError(
            f"{layer.name}: expects ({layer.in_features},), the graph "
            f"produces {in_shape}")
    codes, w_scales, bits = _weight_codes(layer)
    out_scale = (grid_in.scale * w_scales).astype(np.float64)
    bias = (layer.bias.data.astype(np.float32)
            if layer.bias is not None
            else np.zeros(layer.out_features, dtype=np.float32))
    return Stage(
        name=layer.name, kind="dense",
        in_shape=tuple(in_shape), out_shape=(layer.out_features,),
        macs=layer.macs(),
        weight=codes, in_zp=grid_in.zero_point,
        out_scale=out_scale, out_bias=bias,
        weight_bits=bits, weight_count=int(codes.size),
        out_channels=layer.out_features, round_steps=0)


def _pool_stage(unit: _PoolUnit, grid: Grid,
                in_shape: Tuple[int, ...]) -> Stage:
    if unit.kind == "gap":
        if len(in_shape) != 3:
            raise CompileError("global average pool expects NHWC input")
        out_shape: Tuple[int, ...] = (in_shape[2],)
        steps = 1
    elif unit.kind in ("avgpool", "maxpool"):
        h, w, c = in_shape
        if h % unit.pool or w % unit.pool:
            raise CompileError(
                f"{unit.kind}: input {h}x{w} not divisible by "
                f"pool {unit.pool}")
        out_shape = (h // unit.pool, w // unit.pool, c)
        steps = 1 if unit.kind == "avgpool" else 0
    else:  # flatten
        out_shape = (int(np.prod(in_shape)),)
        steps = 0
    return Stage(name=unit.kind, kind=unit.kind, in_shape=tuple(in_shape),
                 out_shape=out_shape, pool=unit.pool,
                 clamp_lo=0, clamp_hi=grid.n_levels, round_steps=steps)


def compile_model(model: Sequential, image_size: int,
                  name: str = "model") -> "Program":
    """Lower a calibrated, quantized model to an integer :class:`Program`.

    ``image_size`` is the input's spatial extent (inputs are square NHWC,
    as everywhere in the framework).  Raises :class:`CompileError` for
    unsupported graphs, missing quantizers, or uncalibrated activations.
    """
    from .engine import Program

    units = _flatten_units(model)
    conv_positions = [k for k, unit in enumerate(units)
                      if isinstance(unit, (_ConvUnit, _DenseUnit))]
    grids = {k: _grid_of(units[k].layer) for k in conv_positions}

    first = units[conv_positions[0]].layer
    in_channels = first.in_channels
    in_shape: Tuple[int, ...] = (image_size, image_size, in_channels)

    stages: List[Stage] = []
    for k, unit in enumerate(units):
        if isinstance(unit, _DenseUnit):
            stages.append(_dense_stage(unit, grids[k], in_shape))
        elif isinstance(unit, _ConvUnit):
            next_pos = min(p for p in conv_positions if p > k)
            grid_out = grids[next_pos]
            deferred = (k + 1 < len(units)
                        and isinstance(units[k + 1], _PoolUnit)
                        and units[k + 1].kind in ("gap", "avgpool"))
            res_grid = (grids[unit.residual_src]
                        if unit.residual_src is not None else None)
            stage = _conv_stage(unit, grids[k], grid_out, in_shape,
                                deferred, res_grid)
            if unit.residual_src is not None:
                stages[unit.residual_src].save_input = True
            stages.append(stage)
        else:
            # pools carry the grid of the next quantized consumer
            next_pos = min(p for p in conv_positions if p > k)
            stages.append(_pool_stage(unit, grids[next_pos], in_shape))
        in_shape = stages[-1].out_shape

    for stage in stages:
        finalize_stage(stage)
    return Program(stages=stages, input_grid=grids[conv_positions[0]],
                   image_size=image_size, in_channels=in_channels,
                   name=name)
