"""Compile-time tensor-arena planning for the integer engine.

The executor must not allocate on the hot path, so every inter-stage
activation tensor gets a fixed offset in one preallocated int32 arena.
The offsets come from the same liveness analysis the deployment report
uses for its peak-activation-memory figure:

- **Values.**  Value ``i`` is the output of stage ``i``; value ``-1`` is
  the program's input codes.  A value is live from the stage that writes
  it through the last stage that reads it — normally the next stage, but
  a residual-skip source (``save_input`` → ``residual_from``) stays
  pinned until its consuming project stage.
- **Intervals → offsets.**  Values are placed by first-fit-decreasing:
  largest first, each at the lowest arena offset that no temporally
  overlapping value occupies.  This is the classic offset-calculation
  scheme of embedded tensor-arena planners; it is not guaranteed optimal
  but is within the liveness peak's small constant factor in practice
  (the plan records both so the report can show the packing efficiency).
- **Aliases.**  ``flatten`` is a pure reinterpretation, so its output
  value shares the producer's slot with a different view shape — no copy
  and no extra memory.
- **The final dense output** is float logits, written to the caller's
  buffer, so it owns no arena slot.

Offsets are in per-image int32 elements; the executor scales them by the
batch size, giving every slot a contiguous region and every view a
zero-copy reshape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Interval:
    """Liveness of one activation value, in stage indices (inclusive)."""

    value: int                 # -1 = program input, i = output of stage i
    start: int                 # first stage during which it occupies memory
    end: int                   # last stage during which it occupies memory
    elems: int                 # per-image element count
    shape: Tuple[int, ...]     # per-image shape


@dataclass(frozen=True)
class Slot:
    """One planned arena placement."""

    value: int
    offset: int                # per-image int32 elements from arena start
    elems: int
    shape: Tuple[int, ...]
    alias_of: Optional[int] = None   # value whose storage this one shares


@dataclass(frozen=True)
class ArenaPlan:
    """The packed arena layout for one compiled stage program."""

    slots: Dict[int, Slot]     # value id -> placement
    total_elems: int           # packed arena size, per-image int32 elements
    naive_elems: int           # sum of all value sizes (fresh allocation)
    peak_elems: int            # liveness lower bound on any packing

    def arena_bytes(self, batch: int) -> int:
        return self.total_elems * batch * 4

    def describe(self) -> str:
        return (f"arena plan: {self.total_elems * 4} B/image packed "
                f"(liveness peak {self.peak_elems * 4} B, "
                f"fresh allocation {self.naive_elems * 4} B), "
                f"{len(self.slots)} tensors")


def _elems(shape: Sequence[int]) -> int:
    return int(np.prod(shape))


def liveness_intervals(stages) -> List[Interval]:
    """Live ranges of every activation value in a stage program.

    Matches the engine's execution semantics exactly: ``saved`` residual
    tensors are the *input* of the ``save_input`` stage, so a stage ``j``
    with ``residual_from = r`` extends the lifetime of value ``r - 1``.
    """
    n = len(stages)
    # last read of each value: the consuming stage, then residual extensions
    last_use = {-1: 0}
    for i in range(n):
        last_use[i] = min(i + 1, n - 1)
    for j, stage in enumerate(stages):
        if stage.residual_from is not None:
            source_value = stage.residual_from - 1
            last_use[source_value] = max(last_use[source_value], j)
    intervals = [Interval(value=-1, start=0, end=last_use[-1],
                          elems=_elems(stages[0].in_shape),
                          shape=tuple(stages[0].in_shape))]
    for i, stage in enumerate(stages):
        intervals.append(Interval(value=i, start=i, end=last_use[i],
                                  elems=_elems(stage.out_shape),
                                  shape=tuple(stage.out_shape)))
    return intervals


def peak_liveness(stages) -> Tuple[int, str]:
    """``(peak elements, stage name)`` of simultaneously live activations.

    The deployment report multiplies this by one byte per element (INT8
    deployment model); the arena planner uses it as the packing lower
    bound (int32 host carriers).
    """
    intervals = liveness_intervals(stages)
    peak, peak_stage = 0, ""
    for index, stage in enumerate(stages):
        live = sum(iv.elems for iv in intervals
                   if iv.start <= index <= iv.end)
        if live > peak:
            peak, peak_stage = live, stage.name
    return peak, peak_stage


def plan_arena(stages) -> ArenaPlan:
    """Assign every activation value a fixed offset in one int32 arena."""
    intervals = {iv.value: iv for iv in liveness_intervals(stages)}

    # flatten output aliases its input's storage: merge the lifetimes and
    # drop the alias from placement
    aliases: Dict[int, int] = {}
    for i, stage in enumerate(stages):
        if stage.kind == "flatten":
            target = i - 1
            while target in aliases:
                target = aliases[target]
            aliases[i] = target
            merged = intervals[target]
            intervals[target] = Interval(
                value=target, start=merged.start,
                end=max(merged.end, intervals[i].end),
                elems=merged.elems, shape=merged.shape)

    # the final stage's output is float logits (dense) or is returned
    # directly to the caller — either way it never lives in the arena
    last_value = len(stages) - 1
    placeable = [iv for v, iv in sorted(intervals.items())
                 if v not in aliases and v != last_value]

    placed: List[Tuple[Interval, int]] = []    # (interval, offset)
    offsets: Dict[int, int] = {}
    for iv in sorted(placeable, key=lambda iv: (-iv.elems, iv.start)):
        overlapping = sorted(
            (offset, other.elems) for other, offset in placed
            if other.start <= iv.end and iv.start <= other.end)
        cursor = 0
        for offset, elems in overlapping:
            if offset - cursor >= iv.elems:
                break
            cursor = max(cursor, offset + elems)
        offsets[iv.value] = cursor
        placed.append((iv, cursor))

    slots: Dict[int, Slot] = {}
    for iv, offset in placed:
        slots[iv.value] = Slot(value=iv.value, offset=offset,
                               elems=iv.elems, shape=iv.shape)
    for alias, target in aliases.items():
        if alias == last_value or target not in slots:
            continue
        base = slots[target]
        slots[alias] = Slot(value=alias, offset=base.offset,
                            elems=_elems(stages[alias].out_shape),
                            shape=tuple(stages[alias].out_shape),
                            alias_of=target)

    total = max((offset + iv.elems for iv, offset in placed), default=0)
    naive = sum(iv.elems for iv in placeable)
    peak, _ = peak_liveness(stages)
    return ArenaPlan(slots=slots, total_elems=total, naive_elems=naive,
                     peak_elems=peak)
