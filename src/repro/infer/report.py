"""Deployment cost report for a compiled integer program.

Three figures the MCU-deployment literature cares about (the μNAS
baseline constrains all of them):

- **MACs** per image, per layer and total — identical by construction to
  :func:`repro.space.builder.count_macs` on the source model;
- **packed weight bytes** — weight codes bit-packed at the policy
  bitwidth and padded to whole bytes per layer (exactly what
  :func:`repro.quant.export.pack_bits` emits), plus the per-layer
  constant overhead of :mod:`repro.quant.size` (bias + scales +
  activation params), so totals agree with the analytic accounting up to
  the <=1 byte/layer bit-packing padding;
- **peak activation memory** via liveness analysis of the sequential
  stage graph, at batch 1 (the MCU execution model) and one byte per
  element (codes are int8-representable; the engine's int32 carriers are
  a host-side convenience, not a deployment requirement).  A tensor is
  live while it is an executing stage's input or output, and a residual
  source stays live from the block input until the project stage consumes
  it; the peak is the max over stages of the live-byte sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..quant.apply import BIAS_BITS
from ..quant.size import FLOAT_BITS
from .engine import Program
from .plan import peak_liveness, plan_arena

#: stage kinds that carry weights
_WEIGHT_KINDS = ("conv", "dw", "dense")


@dataclass
class LayerCost:
    """Deployment cost of one compiled stage."""

    name: str
    kind: str
    out_shape: Tuple[int, ...]
    macs: int
    weight_bits: int
    weight_count: int
    weight_bytes: int             # bit-packed codes, byte-padded
    overhead_bytes: int           # bias + scales + activation params

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.overhead_bytes


@dataclass
class DeploymentReport:
    """The full cost picture of a compiled program."""

    name: str
    image_size: int
    layers: List[LayerCost]
    total_macs: int
    weight_bytes: int
    overhead_bytes: int
    peak_activation_bytes: int
    peak_stage: str
    #: host executor's packed int32 arena, per image (0 for legacy callers)
    arena_int32_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.overhead_bytes

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024


def activation_liveness(program: Program) -> Tuple[int, str]:
    """``(peak bytes, stage name)`` of live INT8 activations at batch 1.

    Delegates to the arena planner's liveness analysis — the deployment
    estimate (one byte per INT8 element) and the executor's arena layout
    are the same intervals at different element widths.
    """
    return peak_liveness(program.stages)


def deployment_report(program: Program) -> DeploymentReport:
    """Compute the per-layer and aggregate deployment costs."""
    layers: List[LayerCost] = []
    for stage in program.stages:
        if stage.kind not in _WEIGHT_KINDS:
            continue
        weight_bytes = -(-stage.weight_count * stage.weight_bits // 8)
        overhead_bits = stage.out_channels * BIAS_BITS
        if stage.weight_bits < FLOAT_BITS:
            overhead_bits += stage.out_channels * FLOAT_BITS
            overhead_bits += 2 * FLOAT_BITS
        layers.append(LayerCost(
            name=stage.name, kind=stage.kind, out_shape=stage.out_shape,
            macs=stage.macs, weight_bits=stage.weight_bits,
            weight_count=stage.weight_count, weight_bytes=weight_bytes,
            overhead_bytes=overhead_bits // 8))
    peak, peak_stage = activation_liveness(program)
    return DeploymentReport(
        name=program.name, image_size=program.image_size, layers=layers,
        total_macs=sum(layer.macs for layer in layers),
        weight_bytes=sum(layer.weight_bytes for layer in layers),
        overhead_bytes=sum(layer.overhead_bytes for layer in layers),
        peak_activation_bytes=peak, peak_stage=peak_stage,
        arena_int32_bytes=plan_arena(program.stages).arena_bytes(1))


def format_report(report: DeploymentReport) -> str:
    """Render the deployment report as a text table."""
    lines = [
        f"deployment report - {report.name} "
        f"({report.image_size}x{report.image_size} input)",
        f"{'layer':<24} {'kind':<6} {'bits':>4} {'MACs':>10} "
        f"{'weights':>9} {'bytes':>9}",
    ]
    for layer in report.layers:
        lines.append(
            f"{layer.name:<24} {layer.kind:<6} {layer.weight_bits:>4} "
            f"{layer.macs:>10} {layer.weight_count:>9} "
            f"{layer.total_bytes:>9}")
    lines.append(
        f"{'TOTAL':<36} {report.total_macs:>10} "
        f"{sum(l.weight_count for l in report.layers):>9} "
        f"{report.total_bytes:>9}")
    lines.append(
        f"model size: {report.total_kb:.2f} kB "
        f"(weights {report.weight_bytes} B + overhead "
        f"{report.overhead_bytes} B)")
    lines.append(
        f"peak INT8 activation memory: {report.peak_activation_bytes} B "
        f"at {report.peak_stage} (batch 1, liveness)")
    if report.arena_int32_bytes:
        lines.append(
            f"host tensor arena: {report.arena_int32_bytes} B/image "
            f"(int32, liveness-packed)")
    return "\n".join(lines)
