"""The integer inference engine: executes a compiled stage program.

Activations travel between stages as int32 *codes* in the grid of the
next quantized consumer.  The only float arithmetic is at the program
boundary: quantizing the input image (the "ADC" step) and dequantizing
the final classifier accumulators into logits.  Everything in between —
convolutions, bias adds, requantization, activation clamps, residual
adds, pooling — is integer-only, which the parity suite enforces by
monkeypatch-forbidding float ``np.matmul`` during execution.

Execution is instrumented with :mod:`repro.obs`: a span per batch, a span
per stage (op kind and output shape in the tags), and counters for images
and MACs, so ``--trace`` runs produce a per-op time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..obs.trace import get_recorder
from .compile import Grid, Stage
from .kernels import (avg_pool_int, conv2d_int, dense_int,
                      depthwise_conv2d_int, global_avg_pool_int,
                      max_pool_int)
from .requant import requantize


@dataclass
class Program:
    """A compiled integer-only network, ready to run."""

    stages: List[Stage]
    input_grid: Grid
    image_size: int
    in_channels: int
    name: str = "model"

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Float images -> int32 input codes (the off-hot-path ADC step)."""
        grid = self.input_grid
        q = np.clip(np.round(x / grid.scale + grid.zero_point),
                    0, grid.n_levels)
        return q.astype(np.int32)

    def run_stage(self, index: int, x: np.ndarray,
                  saved: Dict[int, np.ndarray]) -> np.ndarray:
        stage = self.stages[index]
        if stage.save_input:
            saved[index] = x
        if stage.kind in ("conv", "dw"):
            shifted = x.astype(np.int32) - np.int32(stage.in_zp)
            if stage.kind == "conv":
                acc = conv2d_int(shifted, stage.weight, stage.stride,
                                 stage.padding)
            else:
                acc = depthwise_conv2d_int(shifted, stage.weight,
                                           stage.stride, stage.padding)
            acc += stage.bias_acc
            out = requantize(acc, stage.mult, stage.shift)
            if stage.residual_from is not None:
                res = saved[stage.residual_from].astype(np.int32) \
                    - np.int32(stage.res_zp)
                out = out + requantize(res, stage.res_mult, stage.res_shift)
            out = out + stage.out_zp
            return np.clip(out, stage.clamp_lo,
                           stage.clamp_hi).astype(np.int32)
        if stage.kind == "dense":
            shifted = x.astype(np.int32) - np.int32(stage.in_zp)
            acc = dense_int(shifted, stage.weight)
            # output dequantization: off the hot path by definition — the
            # program's result IS float logits
            logits = acc.astype(np.float64) * stage.out_scale \
                + stage.out_bias
            return logits.astype(np.float32)
        if stage.kind == "gap":
            out = global_avg_pool_int(x)
        elif stage.kind == "avgpool":
            out = avg_pool_int(x, stage.pool)
        elif stage.kind == "maxpool":
            out = max_pool_int(x, stage.pool)
        elif stage.kind == "flatten":
            out = x.reshape(x.shape[0], -1)
        else:
            raise ValueError(f"unknown stage kind {stage.kind!r}")
        if stage.kind in ("gap", "avgpool"):
            out = np.clip(out, stage.clamp_lo, stage.clamp_hi)
        return out.astype(np.int32)

    def run_range(self, codes: np.ndarray, start: int, stop: int,
                  saved: Optional[Dict[int, np.ndarray]] = None
                  ) -> np.ndarray:
        """Execute stages ``[start, stop)`` on input codes.

        ``saved`` pre-seeds residual inputs (the parity harness uses this
        to teacher-force each stage with reference codes).
        """
        if saved is None:
            saved = {}
        out = codes
        for index in range(start, stop):
            out = self.run_stage(index, out, saved)
        return out

    def run_batch(self, x: np.ndarray) -> np.ndarray:
        """Float images -> float logits for one batch."""
        recorder = get_recorder()
        codes = self.quantize_input(x)
        saved: Dict[int, np.ndarray] = {}
        out = codes
        for index, stage in enumerate(self.stages):
            if recorder.enabled:
                with recorder.span(f"infer.{stage.name}", op=stage.kind,
                                   out_shape=list(stage.out_shape)):
                    out = self.run_stage(index, out, saved)
            else:
                out = self.run_stage(index, out, saved)
        return out

    def run(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Float images -> float logits, batched."""
        recorder = get_recorder()
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            batch = x[start:start + batch_size]
            with recorder.span("infer.batch", images=int(batch.shape[0])):
                outputs.append(self.run_batch(batch))
            if recorder.enabled:
                recorder.counter("infer.images", int(batch.shape[0]))
                recorder.counter("infer.macs",
                                 self.total_macs() * int(batch.shape[0]))
        return np.concatenate(outputs, axis=0)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Float images -> predicted class indices."""
        return np.argmax(self.run(x, batch_size=batch_size), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> float:
        """Deployed top-1 accuracy on a labelled set."""
        return float((self.predict(x, batch_size=batch_size) == y).mean())

    def total_macs(self) -> int:
        return sum(stage.macs for stage in self.stages)

    def __repr__(self) -> str:
        return (f"Program({self.name}, {len(self.stages)} stages, "
                f"{self.total_macs()} MACs)")
