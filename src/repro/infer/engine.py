"""The integer inference engine: executes a compiled stage program.

Activations travel between stages as int32 *codes* in the grid of the
next quantized consumer.  The only float arithmetic is at the program
boundary: quantizing the input image (the "ADC" step) and dequantizing
the final classifier accumulators into logits.  Everything in between —
convolutions, bias adds, requantization, activation clamps, residual
adds, pooling — is integer-only, which the parity suite enforces by
monkeypatch-forbidding float ``np.matmul`` during execution.

Two execution paths share the same compiled stages and produce
bit-identical results (a property the test suite checks across policies,
stage types and batch shapes):

- :meth:`Program.run` / :meth:`Program.run_batch` — the **planned hot
  path**.  An :class:`ArenaExecutor` places every inter-stage tensor at
  a fixed offset in one preallocated int32 arena (liveness-planned by
  :mod:`repro.infer.plan`), contracts raw codes with the input zero
  point folded into the bias, gathers im2col patches into one reused
  cache-blocked workspace, and applies requantize + zero-point add +
  clamp as a single fused in-place pass.  Steady-state batches perform
  no ndarray allocations.
- :meth:`Program.run_stage` / :meth:`Program.run_range` — the
  **fresh-allocation reference**, kept deliberately simple; the parity
  harness teacher-forces segments through it.

Execution is instrumented with :mod:`repro.obs`: a span per batch, a span
per stage (op kind and output shape in the tags), and counters for
images, MACs, fused-requant invocations, steady-state allocations, plus
an ``infer.arena_bytes`` gauge when an executor is built.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..nn import functional as F
from ..obs import profile as prof
from ..obs.trace import get_recorder
from .compile import Grid, Stage, finalize_stage
from .kernels import (DEBUG_CHECKS, avg_pool_int, conv2d_int, dense_int,
                      depthwise_conv2d_int, global_avg_pool_int,
                      max_pool_int)
from .plan import ArenaPlan, plan_arena
from .requant import requantize, requantize_into

#: im2col workspace target (KiB); bounds the cache-blocked GEMM tiles
BLOCK_KB_ENV = "BOMP_INFER_BLOCK_KB"
DEFAULT_BLOCK_KB = 512


class ArenaExecutor:
    """Allocation-free executor for one :class:`Program` at a fixed batch.

    All buffers are allocated once at construction:

    - ``acts`` — the liveness-planned int32 tensor arena (every slot's
      per-image offset scaled by the batch size, so each tensor is a
      contiguous zero-copy view);
    - ``pad`` / ``col`` — shared padded-input and im2col workspaces,
      sized to the largest cache block any stage needs;
    - ``acc32`` — int32 scratch for depthwise taps and the classifier;
    - ``work`` / ``work_res`` — the int64 workspaces of the fused
      requantize+zero-point+clamp pass (block-sized, reused everywhere);
    - ``fin`` / ``fout`` — float scratch for the two boundary steps.

    Short final batches execute on prefix views of the same buffers.
    """

    def __init__(self, program: "Program", batch_size: int) -> None:
        if not program.stages or program.stages[-1].kind != "dense":
            raise ValueError(
                "ArenaExecutor needs a program ending in a Dense "
                "classifier (float logits output)")
        self.program = program
        self.batch = int(batch_size)
        if self.batch < 1:
            raise ValueError("batch size must be >= 1")
        for stage in program.stages:
            finalize_stage(stage)
        self.plan: ArenaPlan = plan_arena(program.stages)
        block_kb = int(os.environ.get(BLOCK_KB_ENV, DEFAULT_BLOCK_KB))
        self._block_elems = max(1, block_kb * 1024 // 4)

        self.alloc_count = 0          # buffer allocations (all at build)
        self.alloc_bytes = 0
        self.runtime_allocs = 0       # allocations after build — stays 0
        self.fused_requant_calls = 0
        self._built = False

        self._records = [self._make_record(i, stage)
                         for i, stage in enumerate(program.stages)]
        self._allocate_buffers()
        self._views: Dict[int, Dict[int, np.ndarray]] = {}
        self._built = True
        recorder = get_recorder()
        if recorder.enabled:
            recorder.gauge("infer.arena_bytes", self.alloc_bytes)

    # -- construction ---------------------------------------------------------
    def _new(self, elems: int, dtype) -> np.ndarray:
        buf = np.empty(max(int(elems), 0), dtype=dtype)
        self.alloc_count += 1
        self.alloc_bytes += buf.nbytes
        if self._built:
            self.runtime_allocs += 1
        return buf

    def _make_record(self, index: int, stage: Stage) -> Dict:
        rec: Dict = {"stage": stage, "index": index,
                     "in_value": index - 1, "out_value": index}
        if stage.kind in ("conv", "dw"):
            h, w, cin = stage.in_shape
            ho, wo, cout = stage.out_shape
            kernel = stage.weight.shape[0]
            rec.update(kernel=kernel, stride=stage.stride,
                       rows_per_image=ho * wo, cout=cout)
            if kernel > 1 and stage.padding == "same":
                pad_h = F.same_padding(h, kernel, stage.stride)
                pad_w = F.same_padding(w, kernel, stage.stride)
            else:
                pad_h = pad_w = (0, 0)
            rec["pad_h"], rec["pad_w"] = pad_h, pad_w
            rec["padded_hw"] = (h + pad_h[0] + pad_h[1],
                                w + pad_w[0] + pad_w[1])
            rec["needs_pad"] = pad_h != (0, 0) or pad_w != (0, 0)
            if stage.kind == "conv":
                ckk = cin if kernel == 1 else stage.w2d.shape[0]
                per_image = rec["rows_per_image"] * ckk
                rec["ckk"] = ckk
                rec["block_imgs"] = max(
                    1, min(self.batch, self._block_elems // max(per_image,
                                                               1)))
        elif stage.kind in ("avgpool", "maxpool"):
            rec["pool"] = stage.pool
        return rec

    def _allocate_buffers(self) -> None:
        B = self.batch
        pad = col = acc32 = work = work_res = 0
        for rec in self._records:
            stage = rec["stage"]
            if stage.kind == "conv":
                bi, rpi, cout = (rec["block_imgs"], rec["rows_per_image"],
                                 rec["cout"])
                if rec["kernel"] > 1 or rec["stride"] > 1:
                    col = max(col, bi * rpi * rec["ckk"])
                if rec["needs_pad"]:
                    ph, pw = rec["padded_hw"]
                    pad = max(pad, bi * ph * pw * stage.in_shape[2])
                work = max(work, bi * rpi * cout)
                if stage.residual_from is not None:
                    work_res = max(work_res, bi * rpi * cout)
            elif stage.kind == "dw":
                rpi, cout = rec["rows_per_image"], rec["cout"]
                if rec["needs_pad"]:
                    ph, pw = rec["padded_hw"]
                    pad = max(pad, B * ph * pw * stage.in_shape[2])
                acc32 = max(acc32, B * rpi * cout)
                rows = max(1, min(B * rpi,
                                  self._block_elems // max(cout, 1)))
                rec["block_rows"] = rows
                work = max(work, rows * cout)
                if stage.residual_from is not None:
                    work_res = max(work_res, rows * cout)
            elif stage.kind == "gap":
                work = max(work, B * stage.out_shape[-1])
            elif stage.kind == "avgpool":
                work = max(work, B * int(np.prod(stage.out_shape)))
            elif stage.kind == "dense":
                classes = stage.out_shape[0]
                acc32 = max(acc32, B * classes)
                self._fout_elems = B * classes
        in_elems = int(np.prod(self.program.stages[0].in_shape))
        self.acts = self._new(self.plan.total_elems * B, np.int32)
        self.pad = self._new(pad, np.int32)
        self.col = self._new(col, np.int32)
        self.acc32 = self._new(acc32, np.int32)
        self.work = self._new(work, np.int64)
        self.work_res = self._new(work_res, np.int64)
        self.fin = self._new(B * in_elems, np.float32)
        self.fout = self._new(self._fout_elems, np.float64)

    def _views_for(self, n: int) -> Dict[int, np.ndarray]:
        views = self._views.get(n)
        if views is None:
            B = self.batch
            views = {
                slot.value:
                    self.acts[slot.offset * B:
                              slot.offset * B + n * slot.elems]
                    .reshape((n,) + slot.shape)
                for slot in self.plan.slots.values()}
            self._views[n] = views
        return views

    # -- execution ------------------------------------------------------------
    def run_batch_into(self, x: np.ndarray, logits: np.ndarray) -> None:
        """Execute one batch of float images into a float32 logits view."""
        n = int(x.shape[0])
        if n > self.batch:
            raise ValueError(f"batch {n} exceeds planned capacity "
                             f"{self.batch}")
        views = self._views_for(n)
        self._quantize_input(x, views[-1])
        recorder = get_recorder()
        for rec in self._records:
            stage = rec["stage"]
            if recorder.enabled:
                with recorder.span(f"infer.{stage.name}", op=stage.kind,
                                   out_shape=list(stage.out_shape)):
                    self._exec(rec, views, n, logits)
            else:
                self._exec(rec, views, n, logits)

    def _quantize_input(self, x: np.ndarray, codes: np.ndarray) -> None:
        with prof.kernel("infer.quantize_input"):
            grid = self.program.input_grid
            if x.dtype != np.float32:
                # off the planned path: reproduce the reference dtype exactly
                self.runtime_allocs += 1
                np.copyto(codes, self.program.quantize_input(x))
                return
            scratch = self.fin[:x.size].reshape(x.shape)
            np.divide(x, grid.scale, out=scratch)
            np.add(scratch, grid.zero_point, out=scratch)
            np.round(scratch, out=scratch)
            np.clip(scratch, 0, grid.n_levels, out=scratch)
            np.copyto(codes, scratch, casting="unsafe")

    def _exec(self, rec: Dict, views: Dict[int, np.ndarray], n: int,
              logits: np.ndarray) -> None:
        stage = rec["stage"]
        kind = stage.kind
        with prof.kernel("infer." + kind):
            if kind == "conv":
                self._exec_conv(rec, views, n)
            elif kind == "dw":
                self._exec_dw(rec, views, n)
            elif kind == "dense":
                self._exec_dense(rec, views, n, logits)
            elif kind == "gap":
                self._exec_gap(rec, views, n)
            elif kind == "avgpool":
                self._exec_avgpool(rec, views, n)
            elif kind == "maxpool":
                self._exec_maxpool(rec, views, n)
            elif kind == "flatten":
                pass                  # aliased slot: pure reinterpretation
            else:
                raise ValueError(f"unknown stage kind {kind!r}")

    def _requant_rows(self, stage: Stage, acc_rows: np.ndarray,
                      saved_rows: Optional[np.ndarray]) -> None:
        """Fused requantize + residual + zero point + clamp, in place.

        Reads int32 accumulator rows, writes the final output codes back
        into the same rows through the int64 workspace — bit-identical
        to the reference's requantize/add/clip chain.
        """
        rows, cout = acc_rows.shape
        work = self.work[:rows * cout].reshape(rows, cout)
        requantize_into(acc_rows, stage.rq, work)
        if saved_rows is not None:
            work_res = self.work_res[:rows * cout].reshape(rows, cout)
            np.subtract(saved_rows, stage.res_zp, out=work_res)
            requantize_into(work_res, stage.res_rq, work_res)
            np.add(work, work_res, out=work)
        work += stage.out_zp
        np.clip(work, stage.clamp_lo, stage.clamp_hi, out=acc_rows)
        self.fused_requant_calls += 1

    def _saved_rows(self, stage: Stage, views: Dict[int, np.ndarray],
                    n: int, r0: int, r1: int) -> Optional[np.ndarray]:
        if stage.residual_from is None:
            return None
        saved = views[stage.residual_from - 1]
        if DEBUG_CHECKS and saved.dtype != np.int32:
            raise TypeError(f"{stage.name}: residual input must be int32")
        return saved.reshape(saved.shape[0] * int(
            np.prod(saved.shape[1:-1])), saved.shape[-1])[r0:r1]

    def _exec_conv(self, rec: Dict, views: Dict[int, np.ndarray],
                   n: int) -> None:
        stage = rec["stage"]
        x = views[rec["in_value"]]
        out = views[rec["out_value"]]
        h, w, cin = stage.in_shape
        rpi, ckk, cout = rec["rows_per_image"], rec["ckk"], rec["cout"]
        kernel, stride = rec["kernel"], rec["stride"]
        out2 = out.reshape(n * rpi, cout)
        flat_in = (x.reshape(n * h * w, cin)
                   if kernel == 1 and stride == 1 else None)
        for i0 in range(0, n, rec["block_imgs"]):
            i1 = min(n, i0 + rec["block_imgs"])
            ni = i1 - i0
            rows = ni * rpi
            r0 = i0 * rpi
            acc = out2[r0:r0 + rows]
            if flat_in is not None:
                lhs = flat_in[r0:r0 + rows]
            elif kernel == 1:
                block = self.col[:rows * ckk].reshape(
                    ni, *stage.out_shape[:2], cin)
                np.copyto(block, x[i0:i1, ::stride, ::stride, :])
                lhs = block.reshape(rows, ckk)
            else:
                src = self._padded_block(rec, x, i0, i1)
                windows = sliding_window_view(
                    src, (kernel, kernel), axis=(1, 2))[:, ::stride,
                                                        ::stride]
                block = self.col[:rows * ckk].reshape(
                    ni, *stage.out_shape[:2], cin, kernel, kernel)
                np.copyto(block, windows)
                lhs = block.reshape(rows, ckk)
            np.matmul(lhs, stage.w2d, out=acc)
            acc += stage.bias_fused
            self._requant_rows(stage, acc,
                               self._saved_rows(stage, views, n,
                                                r0, r0 + rows))

    def _padded_block(self, rec: Dict, x: np.ndarray, i0: int,
                      i1: int) -> np.ndarray:
        """Zero-point-padded input block in the shared pad workspace."""
        if not rec["needs_pad"]:
            return x[i0:i1]
        stage = rec["stage"]
        h, w, cin = stage.in_shape
        ph, pw = rec["padded_hw"]
        ni = i1 - i0
        block = self.pad[:ni * ph * pw * cin].reshape(ni, ph, pw, cin)
        block[...] = stage.in_zp      # raw-code padding == shifted zeros
        (h0, _), (w0, _) = rec["pad_h"], rec["pad_w"]
        block[:, h0:h0 + h, w0:w0 + w, :] = x[i0:i1]
        return block

    def _exec_dw(self, rec: Dict, views: Dict[int, np.ndarray],
                 n: int) -> None:
        stage = rec["stage"]
        x = views[rec["in_value"]]
        out = views[rec["out_value"]]
        kernel, stride = rec["kernel"], rec["stride"]
        rpi, cout = rec["rows_per_image"], rec["cout"]
        ho, wo = stage.out_shape[:2]
        src = self._padded_block(rec, x, 0, n)
        span_h = (ho - 1) * stride + 1
        span_w = (wo - 1) * stride + 1
        tmp = self.acc32[:n * rpi * cout].reshape(n, ho, wo, cout)
        first = True
        for i in range(kernel):
            for j in range(kernel):
                window = src[:, i:i + span_h:stride,
                             j:j + span_w:stride, :]
                if first:
                    np.multiply(window, stage.weight[i, j], out=out)
                    first = False
                else:
                    np.multiply(window, stage.weight[i, j], out=tmp)
                    out += tmp
        acc2 = out.reshape(n * rpi, cout)
        acc2 += stage.bias_fused
        block_rows = rec["block_rows"]
        for r0 in range(0, n * rpi, block_rows):
            r1 = min(n * rpi, r0 + block_rows)
            self._requant_rows(stage, acc2[r0:r1],
                               self._saved_rows(stage, views, n, r0, r1))

    def _exec_dense(self, rec: Dict, views: Dict[int, np.ndarray],
                    n: int, logits: np.ndarray) -> None:
        stage = rec["stage"]
        x = views[rec["in_value"]]
        classes = stage.out_shape[0]
        acc = self.acc32[:n * classes].reshape(n, classes)
        np.matmul(x, stage.w2d, out=acc)
        acc += stage.bias_fused
        scratch = self.fout[:n * classes].reshape(n, classes)
        np.multiply(acc, stage.out_scale, out=scratch)
        np.add(scratch, stage.out_bias, out=scratch)
        np.copyto(logits, scratch, casting="same_kind")

    def _exec_gap(self, rec: Dict, views: Dict[int, np.ndarray],
                  n: int) -> None:
        stage = rec["stage"]
        x = views[rec["in_value"]]
        out = views[rec["out_value"]]
        count = x.shape[1] * x.shape[2]
        work = self.work[:out.size].reshape(out.shape)
        np.sum(x, axis=(1, 2), dtype=np.int64, out=work)
        work += count // 2
        np.floor_divide(work, count, out=work)
        np.clip(work, stage.clamp_lo, stage.clamp_hi, out=out)

    def _exec_avgpool(self, rec: Dict, views: Dict[int, np.ndarray],
                      n: int) -> None:
        stage = rec["stage"]
        x = views[rec["in_value"]]
        out = views[rec["out_value"]]
        pool = rec["pool"]
        ho, wo, c = stage.out_shape
        tiles = x[:, :ho * pool, :wo * pool, :].reshape(
            n, ho, pool, wo, pool, c)
        work = self.work[:out.size].reshape(out.shape)
        np.sum(tiles, axis=(2, 4), dtype=np.int64, out=work)
        work += pool * pool // 2
        np.floor_divide(work, pool * pool, out=work)
        np.clip(work, stage.clamp_lo, stage.clamp_hi, out=out)

    def _exec_maxpool(self, rec: Dict, views: Dict[int, np.ndarray],
                      n: int) -> None:
        stage = rec["stage"]
        x = views[rec["in_value"]]
        out = views[rec["out_value"]]
        pool = rec["pool"]
        ho, wo, c = stage.out_shape
        tiles = x[:, :ho * pool, :wo * pool, :].reshape(
            n, ho, pool, wo, pool, c)
        tiles.max(axis=(2, 4), out=out)


@dataclass
class Program:
    """A compiled integer-only network, ready to run."""

    stages: List[Stage]
    input_grid: Grid
    image_size: int
    in_channels: int
    name: str = "model"
    _executors: Dict[int, ArenaExecutor] = field(default_factory=dict,
                                                 repr=False, compare=False)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Float images -> int32 input codes (the off-hot-path ADC step)."""
        grid = self.input_grid
        q = np.clip(np.round(x / grid.scale + grid.zero_point),
                    0, grid.n_levels)
        return q.astype(np.int32)

    def executor(self, batch_size: int) -> ArenaExecutor:
        """The cached arena executor for ``batch_size``-image batches."""
        executor = self._executors.get(batch_size)
        if executor is None:
            executor = ArenaExecutor(self, batch_size)
            self._executors[batch_size] = executor
        return executor

    # -- fresh-allocation reference path --------------------------------------
    def run_stage(self, index: int, x: np.ndarray,
                  saved: Dict[int, np.ndarray]) -> np.ndarray:
        stage = self.stages[index]
        if stage.save_input:
            saved[index] = x
        if stage.kind in ("conv", "dw"):
            x32 = x if x.dtype == np.int32 else x.astype(np.int32)
            shifted = x32 - np.int32(stage.in_zp)
            if stage.kind == "conv":
                acc = conv2d_int(shifted, stage.weight, stage.stride,
                                 stage.padding)
            else:
                acc = depthwise_conv2d_int(shifted, stage.weight,
                                           stage.stride, stage.padding)
            acc += stage.bias_acc
            out = requantize(acc, stage.mult, stage.shift)
            if stage.residual_from is not None:
                res = saved[stage.residual_from]
                if res.dtype != np.int32:
                    res = res.astype(np.int32)
                res = res - np.int32(stage.res_zp)
                out = out + requantize(res, stage.res_mult, stage.res_shift)
            out = out + stage.out_zp
            return np.clip(out, stage.clamp_lo,
                           stage.clamp_hi).astype(np.int32)
        if stage.kind == "dense":
            x32 = x if x.dtype == np.int32 else x.astype(np.int32)
            shifted = x32 - np.int32(stage.in_zp)
            acc = dense_int(shifted, stage.weight)
            # output dequantization: off the hot path by definition — the
            # program's result IS float logits
            logits = acc.astype(np.float64) * stage.out_scale \
                + stage.out_bias
            return logits.astype(np.float32)
        if stage.kind == "gap":
            out = global_avg_pool_int(x)
        elif stage.kind == "avgpool":
            out = avg_pool_int(x, stage.pool)
        elif stage.kind == "maxpool":
            out = max_pool_int(x, stage.pool)
        elif stage.kind == "flatten":
            out = x.reshape(x.shape[0], -1)
        else:
            raise ValueError(f"unknown stage kind {stage.kind!r}")
        if stage.kind in ("gap", "avgpool"):
            out = np.clip(out, stage.clamp_lo, stage.clamp_hi)
        return out.astype(np.int32)

    def run_range(self, codes: np.ndarray, start: int, stop: int,
                  saved: Optional[Dict[int, np.ndarray]] = None
                  ) -> np.ndarray:
        """Execute stages ``[start, stop)`` on input codes.

        ``saved`` pre-seeds residual inputs (the parity harness uses this
        to teacher-force each stage with reference codes).
        """
        if saved is None:
            saved = {}
        out = codes
        for index in range(start, stop):
            out = self.run_stage(index, out, saved)
        return out

    def run_batch_reference(self, x: np.ndarray) -> np.ndarray:
        """Float images -> float logits via the fresh-allocation path.

        The bit-identity oracle for the arena executor; also the
        fallback for programs that do not end in a Dense classifier.
        """
        return self.run_range(self.quantize_input(x), 0, len(self.stages))

    # -- planned hot path -----------------------------------------------------
    def run_batch(self, x: np.ndarray) -> np.ndarray:
        """Float images -> float logits for one batch."""
        if self.stages[-1].kind != "dense":
            return self.run_batch_reference(x)
        n = int(x.shape[0])
        logits = np.empty((n, self.stages[-1].out_shape[0]),
                          dtype=np.float32)
        self.executor(max(n, 1)).run_batch_into(x, logits)
        return logits

    def run(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Float images -> float logits, batched through the arena."""
        if self.stages[-1].kind != "dense":
            outputs = [self.run_batch_reference(x[s:s + batch_size])
                       for s in range(0, x.shape[0], batch_size)]
            return np.concatenate(outputs, axis=0)
        recorder = get_recorder()
        n = int(x.shape[0])
        executor = self.executor(min(batch_size, max(n, 1)))
        logits = np.empty((n, self.stages[-1].out_shape[0]),
                          dtype=np.float32)
        fused_before = executor.fused_requant_calls
        for start in range(0, n, batch_size):
            batch = x[start:start + batch_size]
            with recorder.span("infer.batch", images=int(batch.shape[0])):
                executor.run_batch_into(
                    batch, logits[start:start + batch.shape[0]])
            if recorder.enabled:
                recorder.counter("infer.images", int(batch.shape[0]))
                recorder.counter("infer.macs",
                                 self.total_macs() * int(batch.shape[0]))
        if recorder.enabled:
            recorder.counter("infer.requant_fused",
                             executor.fused_requant_calls - fused_before)
            recorder.counter("infer.allocs", executor.runtime_allocs)
        return logits

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Float images -> predicted class indices."""
        return np.argmax(self.run(x, batch_size=batch_size), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> float:
        """Deployed top-1 accuracy on a labelled set."""
        return float((self.predict(x, batch_size=batch_size) == y).mean())

    def total_macs(self) -> int:
        return sum(stage.macs for stage in self.stages)

    def __repr__(self) -> str:
        return (f"Program({self.name}, {len(self.stages)} stages, "
                f"{self.total_macs()} MACs)")
