"""Integer-only inference: compile, execute, verify, and cost a model.

The deployment half of BOMP-NAS: a searched, quantized model is compiled
into an integer-only program (folded BatchNorm, fixed-point
requantization, int32 accumulation — no float arithmetic on the hot
path), executed batch-wise with :mod:`repro.obs` instrumentation,
checked against the fake-quant reference by the parity harness, and
costed by the deployment report (MACs, packed weight bytes, peak INT8
activation memory).  :mod:`repro.infer.artifact` packages all of it into
a single deployable file driven by ``repro export`` / ``repro infer``.
"""

from .artifact import (ArtifactCache, ArtifactError, CachedArtifact,
                       DeployableArtifact, artifact_from_bytes,
                       artifact_to_bytes, build_artifact, collect_bn_stats,
                       default_artifact_cache, export_run, load_artifact,
                       load_artifact_cached, restore_bn_stats, save_artifact)
from .bench import (append_bench_record, default_bench_path, host_metadata,
                    measure_inference)
from .compile import CompileError, Grid, Stage, compile_model, finalize_stage
from .engine import ArenaExecutor, Program
from .kernels import (avg_pool_int, conv2d_int, dense_int,
                      depthwise_conv2d_int, global_avg_pool_int,
                      max_pool_int, set_check_dtypes)
from .parity import ParityReport, StageParity, capture_reference, check_parity
from .plan import (ArenaPlan, Interval, Slot, liveness_intervals, peak_liveness,
                   plan_arena)
from .report import (DeploymentReport, LayerCost, activation_liveness,
                     deployment_report, format_report)
from .requant import (RequantPlan, quantize_multiplier, quantize_multipliers,
                      requantize, requantize_into, rounding_doubling_high_mul,
                      rounding_right_shift)

__all__ = [
    "ArtifactCache", "ArtifactError", "CachedArtifact",
    "DeployableArtifact", "artifact_from_bytes",
    "artifact_to_bytes", "build_artifact", "collect_bn_stats", "export_run",
    "default_artifact_cache", "load_artifact", "load_artifact_cached",
    "restore_bn_stats", "save_artifact",
    "append_bench_record", "default_bench_path", "host_metadata",
    "measure_inference",
    "CompileError", "Grid", "Stage", "compile_model", "finalize_stage",
    "ArenaExecutor", "Program",
    "avg_pool_int", "conv2d_int", "dense_int", "depthwise_conv2d_int",
    "global_avg_pool_int", "max_pool_int", "set_check_dtypes",
    "ParityReport", "StageParity", "capture_reference", "check_parity",
    "ArenaPlan", "Interval", "Slot", "liveness_intervals", "peak_liveness",
    "plan_arena",
    "DeploymentReport", "LayerCost", "activation_liveness",
    "deployment_report", "format_report",
    "RequantPlan", "quantize_multiplier", "quantize_multipliers",
    "requantize", "requantize_into", "rounding_doubling_high_mul",
    "rounding_right_shift",
]
