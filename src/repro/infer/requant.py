"""Fixed-point requantization arithmetic (gemmlowp / TFLite convention).

An integer-only engine cannot multiply accumulators by the real-valued
rescale factor ``M = s_in * s_w / s_out``; instead ``M`` is decomposed at
compile time into a 32-bit integer mantissa and a power-of-two exponent::

    M  ≈  q * 2**(shift - 31),   q in [2**30, 2**31),  shift <= 0 usually

and applied at run time with two integer primitives (the gemmlowp names):

- ``rounding_doubling_high_mul(x, q)`` — ``round(x * q / 2**31)`` computed
  in 64-bit integer arithmetic (the "high half" of the doubled product);
- ``rounding_right_shift(v, n)`` — ``round(v / 2**n)`` (round half away
  from zero towards +inf, i.e. ``floor(v/2**n + 1/2)``).

Both are exact integer computations; the only approximation relative to
``round(x * M)`` is the 31-bit truncation of the mantissa (relative error
``< 2**-31``) and the rounding convention at exact ties, which is what
bounds the engine's divergence from the float fake-quant reference to at
most one least-significant bit per requantization step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

IntArray = np.ndarray

#: the rounding constant of the doubling high-mul: ``+2**30`` before ``>>31``
_HALF31 = np.int64(1 << 30)


def quantize_multiplier(m: float) -> Tuple[int, int]:
    """Decompose a positive real multiplier as ``(q, shift)``.

    ``m ≈ q * 2**(shift - 31)`` with ``q`` a 31-bit mantissa in
    ``[2**30, 2**31)`` — i.e. ``shift`` is the binary exponent of ``m``
    (``shift <= 0`` for the typical ``m < 1``).  Degenerate non-positive
    multipliers map to ``(0, 0)`` — the requantized output is exactly zero.
    """
    if not math.isfinite(m):
        raise ValueError(f"multiplier must be finite, got {m}")
    if m <= 0.0:
        return 0, 0
    mant, exp = math.frexp(m)          # m = mant * 2**exp, mant in [0.5, 1)
    q = int(round(mant * (1 << 31)))
    if q == (1 << 31):                 # mant rounded up to 1.0
        q //= 2
        exp += 1
    return q, exp


def quantize_multipliers(ms: np.ndarray) -> Tuple[IntArray, IntArray]:
    """Vector form of :func:`quantize_multiplier` for per-channel scales.

    Fully vectorized (``np.frexp`` + half-even rounding, the exact
    arithmetic of the scalar form) — element-wise identical to calling
    :func:`quantize_multiplier` in a loop, which the test suite checks
    over a wide multiplier sweep.
    """
    ms = np.asarray(ms, dtype=np.float64)
    if not np.all(np.isfinite(ms)):
        bad = ms[~np.isfinite(ms)][0]
        raise ValueError(f"multiplier must be finite, got {bad}")
    mant, exp = np.frexp(ms)           # m = mant * 2**exp, mant in [0.5, 1)
    # np.round is round-half-even, exactly like the scalar form's round()
    qs = np.round(mant * float(1 << 31)).astype(np.int64)
    shifts = exp.astype(np.int64)
    carried = qs == (1 << 31)          # mant rounded up to 1.0
    qs[carried] >>= 1
    shifts[carried] += 1
    degenerate = ms <= 0.0
    qs[degenerate] = 0
    shifts[degenerate] = 0
    return qs, shifts


def rounding_doubling_high_mul(x: IntArray,
                               q: Union[int, IntArray]) -> IntArray:
    """``round(x * q / 2**31)`` in pure int64 arithmetic.

    ``|x| < 2**31`` and ``q < 2**31`` keep the product inside int64.
    """
    product = x.astype(np.int64) * np.asarray(q, dtype=np.int64)
    return (product + (1 << 30)) >> 31


def rounding_right_shift(v: IntArray,
                         n: Union[int, IntArray]) -> IntArray:
    """``floor(v / 2**n + 1/2)`` — rounding right shift by ``n >= 0``."""
    v = np.asarray(v, dtype=np.int64)
    n = np.asarray(n, dtype=np.int64)
    if np.any(n < 0):
        raise ValueError("shift amount must be non-negative")
    # 1 << (n - 1) is invalid at n == 0; mask it out instead of branching
    half = np.where(n > 0, np.left_shift(np.int64(1),
                                         np.maximum(n, 1) - 1), 0)
    return np.right_shift(v + half, n)


def requantize(acc: IntArray, q: Union[int, IntArray],
               shift: Union[int, IntArray]) -> IntArray:
    """Apply a compiled multiplier: ``round(acc * q * 2**(shift-31))``.

    Follows the TFLite kernel convention: a positive exponent pre-shifts
    the accumulator *left* before the high-mul (so no low bits are lost
    for multipliers >= 1, e.g. the exactly-representable ``M = 1``), and a
    negative exponent becomes a rounding right shift afterwards.

    ``q``/``shift`` may be scalars or arrays broadcastable against ``acc``
    (per-output-channel requantization broadcasts over the last axis).
    Returns int64; the caller adds the output zero point and clamps.
    """
    shift = np.asarray(shift, dtype=np.int64)
    pre = np.left_shift(acc.astype(np.int64), np.maximum(shift, 0))
    v = rounding_doubling_high_mul(pre, q)
    return rounding_right_shift(v, np.maximum(-shift, 0))


@dataclass(frozen=True)
class RequantPlan:
    """Compile-time decomposition of a requantization multiplier set.

    Splits every per-channel ``(q, shift)`` pair into the exact operands
    the fused kernel needs at run time — the positive pre-shift, the
    negative post-shift, and the post-shift's rounding constant — so the
    hot path performs no ``maximum``/``where`` work and no int64
    temporaries beyond its single reused workspace.
    """

    q: np.ndarray          # int64 mantissas
    spos: np.ndarray       # int64 max(shift, 0) — pre-shift (left)
    sneg: np.ndarray       # int64 max(-shift, 0) — post-shift (right)
    half: np.ndarray       # int64 rounding constant of the post-shift
    any_spos: bool         # skip the pre-shift pass when all zero

    @classmethod
    def build(cls, mult, shift) -> "RequantPlan":
        q = np.asarray(mult, dtype=np.int64)
        shift = np.asarray(shift, dtype=np.int64)
        spos = np.maximum(shift, 0)
        sneg = np.maximum(-shift, 0)
        half = np.where(sneg > 0,
                        np.left_shift(np.int64(1), np.maximum(sneg, 1) - 1),
                        np.int64(0))
        return cls(q=q, spos=spos, sneg=sneg, half=half,
                   any_spos=bool(np.any(spos > 0)))


def requantize_into(acc: IntArray, plan: RequantPlan,
                    work: IntArray) -> IntArray:
    """Fused, allocation-free :func:`requantize` into an int64 workspace.

    Bit-identical to ``requantize(acc, q, shift)``: the pre-shift is
    applied to the exact int64 product instead of the accumulator
    (``(acc << s) * q == (acc * q) << s`` whenever the gemmlowp input
    contract ``|acc << s| < 2**31`` holds), which lets every step run
    in place on ``work``.  ``work`` must have ``acc``'s (broadcast)
    shape; the caller adds the output zero point and clamps.
    """
    np.multiply(acc, plan.q, out=work)
    if plan.any_spos:
        np.left_shift(work, plan.spos, out=work)
    work += _HALF31
    np.right_shift(work, 31, out=work)
    np.add(work, plan.half, out=work)
    np.right_shift(work, plan.sneg, out=work)
    return work
