"""Final training of Pareto-optimal candidates (step 7 of Fig. 1).

Pareto-optimal genomes are re-trained from scratch for the full epoch
budget (200 epochs in the paper), with data augmentation, then quantized
according to their policy and — in QAFT modes — fine-tuned
quantization-aware for a few epochs (5 in the paper).  PTQ search modes
apply no QAFT in final training either, matching Section III ("In the
final training, also no QAFT is applied in this case").

``force_qaft=True`` re-finalizes PTQ-searched models *with* QAFT — the
"MP PTQ-NAS (QAFT)" variant of Fig. 5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..data.datasets import shift_flip_augment
from ..nn.losses import evaluate_classifier

from ..nn.trainer import Trainer
from ..quant.apply import apply_policy, calibrate
from ..quant.qaft import quantization_aware_finetune
from ..quant.size import model_size_bits
from ..space.builder import build_model, count_macs
from .trial import FinalModelResult, TrialResult

if TYPE_CHECKING:  # pragma: no cover
    from .search import BOMPNAS


def _deployed_accuracy(model, dataset, trial_index: int) -> Optional[float]:
    """Integer-engine test accuracy, or ``None`` if uncompilable.

    Compiling can fail legitimately — e.g. weight bits above the engine's
    8-bit ceiling, or a layer left unquantized — in which case the result
    simply records no deployed figure rather than failing final training.
    """
    from ..infer.compile import CompileError, compile_model
    try:
        program = compile_model(model, dataset.image_shape[0],
                                name=f"trial{trial_index}")
    except CompileError:
        return None
    return program.accuracy(dataset.x_test, dataset.y_test)


def materialize_final_model(nas: "BOMPNAS", trial: TrialResult,
                            force_qaft: Optional[bool] = None
                            ) -> Tuple["object", FinalModelResult]:
    """Fully train one Pareto-optimal candidate; return (model, result).

    The rng is derived deterministically from (config seed, trial index),
    so re-finalizing the same trial with a different deployment treatment
    (e.g. ``force_qaft``) starts from *identical* full-precision training —
    treatment comparisons like Fig. 5's "MP PTQ-NAS (QAFT)" curve are
    paired, not confounded by training noise.  The same determinism lets
    ``repro export`` re-materialize the exact deployed weights from a
    saved run (see :mod:`repro.infer.artifact`).
    """
    import numpy as np
    config = nas.config
    scale = config.scale
    dataset = nas.dataset
    rng = np.random.default_rng([config.seed, trial.index])
    model = build_model(trial.genome.arch, dataset.num_classes, rng=rng)
    trainer = Trainer(model,
                      nas.make_training_optimizer(model,
                                                  scale.final_epochs),
                      augment=shift_flip_augment())
    trainer.fit(dataset.x_train, dataset.y_train,
                epochs=scale.final_epochs, batch_size=scale.batch_size,
                rng=rng)
    _, fp_accuracy = evaluate_classifier(model, dataset.x_test,
                                         dataset.y_test)

    apply_qaft = (config.mode.qaft_in_loop if force_qaft is None
                  else force_qaft)
    policy = trial.genome.policy
    if not config.mode.quantize_in_loop:
        # post-NAS baseline: homogeneous 8-bit PTQ after the search
        policy = nas.space.seed_policy(config.mode.fixed_bits)
        apply_qaft = False
    apply_policy(model, policy, observer_kind=config.observer)
    calibrate(model, dataset.x_train, batch_size=scale.batch_size)
    qaft_epochs = scale.final_qaft_epochs if apply_qaft else 0
    if qaft_epochs > 0:
        quantization_aware_finetune(
            model, dataset.x_train, dataset.y_train, epochs=qaft_epochs,
            learning_rate=config.qaft_learning_rate,
            batch_size=scale.batch_size, rng=rng)
    _, accuracy = evaluate_classifier(model, dataset.x_test, dataset.y_test)
    size = model_size_bits(model)
    macs = count_macs(model, dataset.image_shape[:2])
    gpu_hours = nas.cost_model.final_training_hours(
        macs, scale.n_train, scale.final_epochs, qaft_epochs)
    deployed = _deployed_accuracy(model, dataset, trial.index)
    result = FinalModelResult(
        trial_index=trial.index, genome=trial.genome,
        accuracy=accuracy, fp_accuracy=fp_accuracy,
        size_bits=size, size_kb=size / (8 * 1024),
        gpu_hours=gpu_hours, candidate_accuracy=trial.accuracy,
        candidate_size_kb=trial.size_kb, deployed_accuracy=deployed)
    return model, result


def train_final_model(nas: "BOMPNAS", trial: TrialResult,
                      force_qaft: Optional[bool] = None) -> FinalModelResult:
    """Fully train one Pareto-optimal candidate and deploy it."""
    _, result = materialize_final_model(nas, trial, force_qaft=force_qaft)
    return result


def train_final_models(nas: "BOMPNAS", trials: List[TrialResult],
                       force_qaft: Optional[bool] = None
                       ) -> List[FinalModelResult]:
    """Finally train every Pareto-optimal candidate of a search."""
    return [train_final_model(nas, trial, force_qaft=force_qaft)
            for trial in trials]
