"""Simulated GPU-hour cost accounting (Tables III and IV).

The paper reports search costs in V100 GPU-hours.  Our substrate is a CPU
simulator, so absolute wall-clock is meaningless; instead the cost model
counts the *work units* a GPU would perform — MACs x training samples x
epochs — and converts them with a constant calibrated so the paper's
protocol (100 trials x 20 early-training epochs of the CIFAR-10 seed
architecture at 32x32 on 50k images) costs 10 GPU-hours, matching the
"x-bit PTQ-aware NAS: 10N" row of Table IV.

Quantization-aware epochs carry an overhead factor (fake-quantization ops
in the training graph); the paper's 10N -> 12N step for adding 1 QAFT epoch
to 20 FP epochs implies a factor of 4, which is the default.

Everything else in Tables III/IV — the MP-costs-nothing effect, the 4-bit
search being dearer than MP, CIFAR-100 costing ~2.5x CIFAR-10 — *emerges*
from the per-candidate MAC counts of what each search actually samples.
"""

from __future__ import annotations

from dataclasses import dataclass

#: MACs of the seed architecture at 32x32 (computed once; see
#: tests/nas/test_cost.py which re-derives it from the builder).
SEED_MACS_32 = 5_032_448

#: paper protocol used for calibration
PAPER_TRIALS = 100
PAPER_EARLY_EPOCHS = 20
PAPER_N_TRAIN = 50_000
PAPER_PTQ_SEARCH_HOURS = 10.0  # Table IV, 8-bit PTQ-aware NAS on CIFAR-10


@dataclass(frozen=True)
class CostModel:
    """Converts training work into simulated V100 GPU-hours.

    Attributes:
        hours_per_mac_sample: GPU-hours per (MAC x training sample x epoch).
        qaft_overhead: slowdown factor of a quantization-aware epoch
            relative to a full-precision epoch.
        eval_fraction: evaluation cost as a fraction of one training epoch.
    """

    hours_per_mac_sample: float = (
        PAPER_PTQ_SEARCH_HOURS
        / (PAPER_TRIALS * PAPER_EARLY_EPOCHS * SEED_MACS_32 * PAPER_N_TRAIN))
    qaft_overhead: float = 4.0
    eval_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.hours_per_mac_sample <= 0:
            raise ValueError("hours_per_mac_sample must be positive")
        if self.qaft_overhead < 1.0:
            raise ValueError("qaft_overhead must be >= 1")
        if self.eval_fraction < 0:
            raise ValueError("eval_fraction must be non-negative")

    def epoch_hours(self, macs: int, n_train: int,
                    quantization_aware: bool = False) -> float:
        """Cost of one training epoch of a candidate."""
        if macs <= 0 or n_train <= 0:
            raise ValueError("macs and n_train must be positive")
        hours = self.hours_per_mac_sample * macs * n_train
        if quantization_aware:
            hours *= self.qaft_overhead
        return hours

    def trial_hours(self, macs: int, n_train: int, early_epochs: int,
                    qaft_epochs: int = 0) -> float:
        """Cost of one search trial: early training + QAFT + evaluation."""
        if early_epochs < 0 or qaft_epochs < 0:
            raise ValueError("epoch counts must be non-negative")
        fp = early_epochs * self.epoch_hours(macs, n_train)
        qa = qaft_epochs * self.epoch_hours(macs, n_train,
                                            quantization_aware=True)
        evaluation = self.eval_fraction * self.epoch_hours(macs, n_train)
        return fp + qa + evaluation

    def final_training_hours(self, macs: int, n_train: int,
                             final_epochs: int,
                             final_qaft_epochs: int = 0) -> float:
        """Cost of finally training one Pareto-optimal model."""
        fp = final_epochs * self.epoch_hours(macs, n_train)
        qa = final_qaft_epochs * self.epoch_hours(macs, n_train,
                                                  quantization_aware=True)
        return fp + qa

    def normalize_to_paper_protocol(self, measured_hours: float,
                                    trials: int, early_epochs: int,
                                    n_train: int,
                                    image_size: int) -> float:
        """Extrapolate a reduced-scale run's cost to the paper protocol.

        Scales the measured simulated hours by the ratio of the paper's
        (trials x epochs x samples x pixels) budget to the run's, so that
        Table III/IV rows are comparable with the paper's regardless of the
        ``BOMP_SCALE`` preset used.
        """
        if min(trials, early_epochs, n_train, image_size) <= 0:
            raise ValueError("protocol parameters must be positive")
        scale = ((PAPER_TRIALS / trials)
                 * (PAPER_EARLY_EPOCHS / early_epochs)
                 * (PAPER_N_TRAIN / n_train)
                 * (32 * 32) / (image_size * image_size))
        return measured_hours * scale
