"""Search configuration: modes, scale presets and the run recipe.

**Modes** map one-to-one onto the paper's experiments:

- ``mp_qaft``   — BOMP-NAS proper: MP policy searched, QAFT in the loop
  (Figs. 2/4, Tables II-IV).
- ``mp_ptq``    — MP policy searched, PTQ only (Fig. 6 ablation).
- ``fixed8_ptq``— architecture-only search, homogeneous 8-bit PTQ
  (Fig. 8 / Table IV ablation).
- ``fixed4_qaft``— architecture-only search, homogeneous 4-bit QAFT
  (Fig. 7 ablation).
- ``fp_nas``    — the post-NAS-quantization baseline: no quantization in
  the loop at all; networks are homogeneously quantized to 8-bit after the
  search (Section IV "baseline").

**Scale presets** shrink the protocol so it runs on CPU-minutes instead of
GPU-hours while keeping every pipeline stage intact.  ``paper`` is the full
protocol (100 trials, 20 early epochs + 1 QAFT, 200 + 5 final).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..bo.scalarization import ScalarizationConfig


@dataclass(frozen=True)
class SearchMode:
    """What is searched and how candidates are evaluated."""

    name: str
    search_policy: bool          # MP policy part of the genome?
    quantize_in_loop: bool       # quantize candidates before evaluation?
    qaft_in_loop: bool           # fine-tune quantization-aware in the loop?
    fixed_bits: Optional[int]    # homogeneous bitwidth when not searching MP
    description: str = ""

    def __post_init__(self) -> None:
        if self.search_policy and self.fixed_bits is not None:
            raise ValueError("cannot both search policy and fix bits")
        if not self.search_policy and self.fixed_bits is None:
            raise ValueError("non-MP modes need fixed_bits")
        if self.qaft_in_loop and not self.quantize_in_loop:
            raise ValueError("QAFT in loop requires quantization in loop")


SEARCH_MODES: Dict[str, SearchMode] = {
    "mp_qaft": SearchMode(
        "mp_qaft", search_policy=True, quantize_in_loop=True,
        qaft_in_loop=True, fixed_bits=None,
        description="BOMP-NAS: MP QAFT-aware NAS"),
    "mp_ptq": SearchMode(
        "mp_ptq", search_policy=True, quantize_in_loop=True,
        qaft_in_loop=False, fixed_bits=None,
        description="MP PTQ-aware NAS (ablation)"),
    "fixed8_ptq": SearchMode(
        "fixed8_ptq", search_policy=False, quantize_in_loop=True,
        qaft_in_loop=False, fixed_bits=8,
        description="8-bit PTQ-aware NAS (ablation)"),
    "fixed4_qaft": SearchMode(
        "fixed4_qaft", search_policy=False, quantize_in_loop=True,
        qaft_in_loop=True, fixed_bits=4,
        description="4-bit QAFT-aware NAS (ablation)"),
    "fp_nas": SearchMode(
        "fp_nas", search_policy=False, quantize_in_loop=False,
        qaft_in_loop=False, fixed_bits=8,
        description="post-NAS quantization baseline (NAS-then-quantize)"),
}


def get_mode(name: str) -> SearchMode:
    if name not in SEARCH_MODES:
        raise ValueError(
            f"unknown mode {name!r}; choices: {sorted(SEARCH_MODES)}")
    return SEARCH_MODES[name]


@dataclass(frozen=True)
class ScalePreset:
    """Protocol scale: trials, epochs, data volume, image size."""

    name: str
    trials: int
    early_epochs: int
    qaft_epochs: int
    final_epochs: int
    final_qaft_epochs: int
    n_train: int
    n_test: int
    image_size: int
    batch_size: int
    n_initial_random: int

    def __post_init__(self) -> None:
        if min(self.trials, self.early_epochs, self.final_epochs,
               self.n_train, self.n_test, self.image_size,
               self.batch_size, self.n_initial_random) <= 0:
            raise ValueError("all scale parameters must be positive")
        if self.qaft_epochs < 0 or self.final_qaft_epochs < 0:
            raise ValueError("QAFT epoch counts must be non-negative")


SCALE_PRESETS: Dict[str, ScalePreset] = {
    # tiny — unit/integration tests
    "unit": ScalePreset("unit", trials=4, early_epochs=1, qaft_epochs=1,
                        final_epochs=1, final_qaft_epochs=1, n_train=96,
                        n_test=48, image_size=8, batch_size=32,
                        n_initial_random=2),
    # default for the benchmark harness: minutes per search on CPU
    "smoke": ScalePreset("smoke", trials=14, early_epochs=4, qaft_epochs=1,
                         final_epochs=7, final_qaft_epochs=1, n_train=768,
                         n_test=300, image_size=12, batch_size=16,
                         n_initial_random=4),
    # larger sweep for overnight CPU runs
    "medium": ScalePreset("medium", trials=40, early_epochs=8, qaft_epochs=1,
                          final_epochs=40, final_qaft_epochs=2, n_train=1500,
                          n_test=500, image_size=16, batch_size=64,
                          n_initial_random=5),
    # the paper's protocol (Section III-A)
    "paper": ScalePreset("paper", trials=100, early_epochs=20, qaft_epochs=1,
                         final_epochs=200, final_qaft_epochs=5,
                         n_train=50000, n_test=10000, image_size=32,
                         batch_size=128, n_initial_random=5),
}


def get_scale(name: Optional[str] = None) -> ScalePreset:
    """Scale preset by name, defaulting to the ``BOMP_SCALE`` env var."""
    if name is None:
        name = os.environ.get("BOMP_SCALE", "smoke")
    if name not in SCALE_PRESETS:
        raise ValueError(
            f"unknown scale {name!r}; choices: {sorted(SCALE_PRESETS)}")
    return SCALE_PRESETS[name]


@dataclass(frozen=True)
class SearchConfig:
    """Everything a BOMP-NAS run needs besides the dataset itself."""

    dataset: str = "cifar10"
    mode: SearchMode = SEARCH_MODES["mp_qaft"]
    scale: ScalePreset = SCALE_PRESETS["smoke"]
    scalarization: ScalarizationConfig = field(
        default_factory=ScalarizationConfig)
    seed: int = 0
    optimizer: str = "adam"  # "adam" converges fastest at early-training
    learning_rate: float = 0.01
    qaft_learning_rate: float = 0.002
    policies_per_trial: int = 1  # paper future-work extension when > 1
    kernel: str = "matern52"
    acquisition: str = "ucb"
    observer: str = "minmax"

    def __post_init__(self) -> None:
        if self.dataset not in ("cifar10", "cifar100"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.learning_rate <= 0 or self.qaft_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.policies_per_trial < 1:
            raise ValueError("policies_per_trial must be >= 1")
        if self.policies_per_trial > 1 and not self.mode.search_policy:
            raise ValueError(
                "policies_per_trial > 1 requires an MP search mode")

    def with_mode(self, mode_name: str) -> "SearchConfig":
        return replace(self, mode=get_mode(mode_name))

    def describe(self) -> str:
        return (f"{self.mode.name} on {self.dataset} "
                f"[{self.scale.name}: {self.scale.trials} trials, "
                f"{self.scale.early_epochs}+{self.scale.qaft_epochs} epochs, "
                f"ref_acc={self.scalarization.ref_accuracy}, "
                f"ref_size={self.scalarization.ref_model_size}]")
