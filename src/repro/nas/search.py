"""The BOMP-NAS search loop (Fig. 1 of the paper).

Each trial: the BO search strategy selects a candidate DNN + quantization
policy (1); the DNN is early-trained in full precision (2); quantized
according to the policy (3); fine-tuned quantization-aware (4); evaluated
(5); the (accuracy, model size) objectives are scalarized by Eq. (1) into a
score (5a) which updates the GP surrogate (6).  After the trial budget is
spent, the Pareto-optimal candidates are finally trained (7).

Search modes reduce this loop: PTQ modes skip step (4); the post-NAS
baseline skips (3) and (4) entirely and scores full-precision accuracy
against the deployment (8-bit) size.

The ``policies_per_trial`` option implements the paper's future-work
proposal: re-use one early-trained network to evaluate several quantization
policies, feeding each to the surrogate.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np

from ..bo.optimizer import BayesianOptimizer
from ..bo.acquisition import make_acquisition
from ..bo.kernels import make_kernel
from ..bo.scalarization import scalarize
from ..data.datasets import Dataset
from ..nn.losses import evaluate_classifier
from ..nn.network import Sequential
from ..nn.optim import SGD, Adam, CosineDecayLR, Optimizer
from ..nn.serialization import load_state_dict, state_dict
from ..nn.trainer import Trainer
from ..quant.apply import apply_policy, calibrate, remove_quantizers
from ..quant.policy import QuantizationPolicy
from ..quant.qaft import quantization_aware_finetune
from ..quant.size import model_size_bits
from ..space.builder import build_model, count_macs
from ..space.genome import MixedPrecisionGenome
from ..space.space import SearchSpace
from .config import SearchConfig
from .cost import CostModel
from .results import SearchResult
from .trial import TrialResult

ProgressFn = Callable[[TrialResult], None]


class BOMPNAS:
    """Bayesian Optimization Mixed-Precision NAS.

    Args:
        config: run recipe (mode, scale, scalarization, seed).
        dataset: pre-generated dataset; its ``num_classes`` must match the
            config's dataset name (10 or 100).
        cost_model: simulated GPU-hour accounting.
        progress: optional per-trial callback (for logging).
    """

    def __init__(self, config: SearchConfig, dataset: Dataset,
                 cost_model: Optional[CostModel] = None,
                 progress: Optional[ProgressFn] = None,
                 space: Optional[SearchSpace] = None) -> None:
        expected_classes = 10 if config.dataset == "cifar10" else 100
        if dataset.num_classes != expected_classes:
            raise ValueError(
                f"dataset has {dataset.num_classes} classes but config "
                f"expects {expected_classes}")
        if space is not None and space.dataset != config.dataset:
            raise ValueError(
                f"space is for {space.dataset!r} but config expects "
                f"{config.dataset!r}")
        self.config = config
        self.dataset = dataset
        self.space = space if space is not None else SearchSpace(
            config.dataset)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.progress = progress
        self.rng = np.random.default_rng(config.seed)
        self._fixed_policy = self._make_fixed_policy()

    # -- mode plumbing -----------------------------------------------------
    def _make_fixed_policy(self) -> Optional[QuantizationPolicy]:
        mode = self.config.mode
        if mode.search_policy:
            return None
        return self.space.seed_policy(mode.fixed_bits)

    def _sample_genome(self, rng: np.random.Generator) -> MixedPrecisionGenome:
        if self._fixed_policy is None:
            return self.space.random_genome(rng)
        return MixedPrecisionGenome(self.space.random_arch(rng),
                                    self._fixed_policy)

    def _mutate_genome(self, genome: MixedPrecisionGenome,
                       rng: np.random.Generator) -> MixedPrecisionGenome:
        policy_fixed = self._fixed_policy is not None
        return self.space.mutate(genome, rng, policy_fixed=policy_fixed)

    def make_optimizer(self) -> BayesianOptimizer:
        scale = self.config.scale
        return BayesianOptimizer(
            self.space, self.rng,
            kernel=make_kernel(self.config.kernel, length_scale=0.1),
            acquisition=make_acquisition(self.config.acquisition),
            n_initial_random=scale.n_initial_random,
            sample_fn=self._sample_genome,
            mutate_fn=self._mutate_genome)

    def make_training_optimizer(self, model: Sequential,
                                epochs: int) -> Optimizer:
        """The full-precision training optimizer (early & final training)."""
        scale = self.config.scale
        steps_per_epoch = -(-scale.n_train // scale.batch_size)
        schedule = CosineDecayLR(self.config.learning_rate,
                                 max(1, epochs * steps_per_epoch))
        if self.config.optimizer == "adam":
            return Adam(model.parameters(), schedule)
        return SGD(model.parameters(), schedule)

    # -- candidate evaluation (steps 2-5a of Fig. 1) -------------------------
    def early_train(self, genome: MixedPrecisionGenome) -> Sequential:
        """Step (2): build and early-train a candidate in full precision."""
        scale = self.config.scale
        model = build_model(genome.arch, self.dataset.num_classes,
                            rng=self.rng)
        trainer = Trainer(model, self.make_training_optimizer(
            model, scale.early_epochs))
        trainer.fit(self.dataset.x_train, self.dataset.y_train,
                    epochs=scale.early_epochs, batch_size=scale.batch_size,
                    rng=self.rng)
        return model

    def quantize_and_evaluate(self, model: Sequential,
                              policy: QuantizationPolicy) -> tuple:
        """Steps (3)-(5): quantize per policy, optionally QAFT, evaluate.

        Returns ``(accuracy, size_bits)`` of the deployed candidate.
        """
        scale = self.config.scale
        apply_policy(model, policy, observer_kind=self.config.observer)
        calibrate(model, self.dataset.x_train,
                  batch_size=scale.batch_size)
        if self.config.mode.qaft_in_loop and scale.qaft_epochs > 0:
            quantization_aware_finetune(
                model, self.dataset.x_train, self.dataset.y_train,
                epochs=scale.qaft_epochs,
                learning_rate=self.config.qaft_learning_rate,
                batch_size=scale.batch_size, rng=self.rng)
        _, accuracy = evaluate_classifier(model, self.dataset.x_test,
                                          self.dataset.y_test)
        size = model_size_bits(model)
        return accuracy, size

    def evaluate_candidate(self, genome: MixedPrecisionGenome,
                           index: int) -> List[TrialResult]:
        """Run one full trial; several results if policies_per_trial > 1."""
        scale = self.config.scale
        mode = self.config.mode
        start = time.time()
        model = self.early_train(genome)
        _, fp_accuracy = evaluate_classifier(model, self.dataset.x_test,
                                             self.dataset.y_test)
        macs = count_macs(model, self.dataset.image_shape[:2])
        params = model.num_parameters()

        policies = [genome.policy]
        for _ in range(self.config.policies_per_trial - 1):
            policies.append(self.space.mutate_policy(genome.policy, self.rng,
                                                     n_mutations=3))
        snapshot = state_dict(model) if len(policies) > 1 else None

        results: List[TrialResult] = []
        for policy_index, policy in enumerate(policies):
            if snapshot is not None and policy_index > 0:
                remove_quantizers(model)
                load_state_dict(model, snapshot)
            if mode.quantize_in_loop:
                accuracy, size = self.quantize_and_evaluate(model, policy)
            else:
                # post-NAS baseline: full-precision accuracy, scored
                # against the deployment (8-bit homogeneous) size
                accuracy = fp_accuracy
                size = model_size_bits(model,
                                       self.space.seed_policy(
                                           mode.fixed_bits))
            score = scalarize(accuracy, size, self.config.scalarization,
                              macs=macs)
            qaft_epochs = (scale.qaft_epochs if mode.qaft_in_loop else 0)
            gpu_hours = self.cost_model.trial_hours(
                macs, scale.n_train,
                early_epochs=scale.early_epochs if policy_index == 0 else 0,
                qaft_epochs=qaft_epochs)
            results.append(TrialResult(
                index=index + policy_index,
                genome=MixedPrecisionGenome(genome.arch, policy),
                accuracy=accuracy, fp_accuracy=fp_accuracy,
                size_bits=size, size_kb=size / (8 * 1024),
                score=score, macs=macs, params=params,
                train_seconds=time.time() - start,
                gpu_hours=gpu_hours))
        return results

    # -- the loop -------------------------------------------------------------
    def run(self, final_training: bool = True) -> SearchResult:
        """Run the search; optionally finally train the Pareto set."""
        from .final_training import train_final_models  # cycle guard
        optimizer = self.make_optimizer()
        trials: List[TrialResult] = []
        while len(trials) < self.config.scale.trials:
            genome = optimizer.ask()
            batch = self.evaluate_candidate(genome, index=len(trials))
            for result in batch:
                optimizer.tell(result.genome, result.score)
                trials.append(result)
                if self.progress is not None:
                    self.progress(result)
        result = SearchResult(config=self.config, trials=trials)
        if final_training:
            result.final_models = train_final_models(
                self, result.pareto_trials())
        return result
