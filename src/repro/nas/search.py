"""The BOMP-NAS search loop (Fig. 1 of the paper).

Each trial: the BO search strategy selects a candidate DNN + quantization
policy (1); the DNN is early-trained in full precision (2); quantized
according to the policy (3); fine-tuned quantization-aware (4); evaluated
(5); the (accuracy, model size) objectives are scalarized by Eq. (1) into a
score (5a) which updates the GP surrogate (6).  After the trial budget is
spent, the Pareto-optimal candidates are finally trained (7).

Search modes reduce this loop: PTQ modes skip step (4); the post-NAS
baseline skips (3) and (4) entirely and scores full-precision accuracy
against the deployment (8-bit) size.

The ``policies_per_trial`` option implements the paper's future-work
proposal: re-use one early-trained network to evaluate several quantization
policies, feeding each to the surrogate.

Trials are embarrassingly parallel: each draws all randomness from a
deterministic per-trial seed (:mod:`repro.parallel.seeding`), the optimizer
proposes candidates in constant-liar batches (``ask_batch``), and a
:class:`~repro.parallel.engine.TrialEngine` evaluates each batch — serial
in-process or on a process pool — producing bit-identical results for any
``workers`` value.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..bo.optimizer import BayesianOptimizer
from ..bo.acquisition import make_acquisition
from ..bo.kernels import make_kernel
from ..bo.scalarization import scalarize
from ..data.datasets import Dataset
from ..nn.losses import evaluate_classifier
from ..nn.network import Sequential
from ..nn.optim import SGD, Adam, CosineDecayLR, Optimizer
from ..nn.serialization import load_state_dict, state_dict
from ..nn.trainer import Trainer
from ..obs import profile
from ..obs.console import ConsoleReporter
from ..obs.trace import RunTracer, get_recorder, use_recorder
from ..parallel.engine import (DEFAULT_TRIAL_BATCH, RetryPolicy, TrialEngine,
                               TrialSpec)
from ..parallel.seeding import trial_seed
from ..resilience.checkpoint import (CheckpointError, SearchCheckpoint,
                                     load_checkpoint, save_checkpoint)
from ..quant.apply import apply_policy, calibrate, remove_quantizers
from ..quant.policy import QuantizationPolicy
from ..quant.qaft import quantization_aware_finetune
from ..quant.size import model_size_bits
from ..space.builder import build_model, count_macs
from ..space.genome import MixedPrecisionGenome
from ..space.space import SearchSpace
from .config import SearchConfig
from .cost import CostModel
from .results import SearchResult, config_to_dict
from .trial import TrialResult

ProgressFn = Callable[[TrialResult], None]


class BOMPNAS:
    """Bayesian Optimization Mixed-Precision NAS.

    Args:
        config: run recipe (mode, scale, scalarization, seed).
        dataset: pre-generated dataset; its ``num_classes`` must match the
            config's dataset name (10 or 100).
        cost_model: simulated GPU-hour accounting.
        progress: optional per-trial callback (for logging).
    """

    def __init__(self, config: SearchConfig, dataset: Dataset,
                 cost_model: Optional[CostModel] = None,
                 progress: Optional[ProgressFn] = None,
                 space: Optional[SearchSpace] = None) -> None:
        expected_classes = 10 if config.dataset == "cifar10" else 100
        if dataset.num_classes != expected_classes:
            raise ValueError(
                f"dataset has {dataset.num_classes} classes but config "
                f"expects {expected_classes}")
        if space is not None and space.dataset != config.dataset:
            raise ValueError(
                f"space is for {space.dataset!r} but config expects "
                f"{config.dataset!r}")
        self.config = config
        self.dataset = dataset
        self.space = space if space is not None else SearchSpace(
            config.dataset)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.progress = progress
        self.rng = np.random.default_rng(config.seed)
        self._fixed_policy = self._make_fixed_policy()

    # -- mode plumbing -----------------------------------------------------
    def _make_fixed_policy(self) -> Optional[QuantizationPolicy]:
        mode = self.config.mode
        if mode.search_policy:
            return None
        return self.space.seed_policy(mode.fixed_bits)

    def _sample_genome(self, rng: np.random.Generator) -> MixedPrecisionGenome:
        if self._fixed_policy is None:
            return self.space.random_genome(rng)
        return MixedPrecisionGenome(self.space.random_arch(rng),
                                    self._fixed_policy)

    def _mutate_genome(self, genome: MixedPrecisionGenome,
                       rng: np.random.Generator) -> MixedPrecisionGenome:
        policy_fixed = self._fixed_policy is not None
        return self.space.mutate(genome, rng, policy_fixed=policy_fixed)

    def make_optimizer(self) -> BayesianOptimizer:
        scale = self.config.scale
        return BayesianOptimizer(
            self.space, self.rng,
            kernel=make_kernel(self.config.kernel, length_scale=0.1),
            acquisition=make_acquisition(self.config.acquisition),
            n_initial_random=scale.n_initial_random,
            sample_fn=self._sample_genome,
            mutate_fn=self._mutate_genome)

    def make_training_optimizer(self, model: Sequential,
                                epochs: int) -> Optimizer:
        """The full-precision training optimizer (early & final training)."""
        scale = self.config.scale
        steps_per_epoch = -(-scale.n_train // scale.batch_size)
        schedule = CosineDecayLR(self.config.learning_rate,
                                 max(1, epochs * steps_per_epoch))
        if self.config.optimizer == "adam":
            return Adam(model.parameters(), schedule)
        return SGD(model.parameters(), schedule)

    # -- candidate evaluation (steps 2-5a of Fig. 1) -------------------------
    def early_train(self, genome: MixedPrecisionGenome,
                    rng: Optional[np.random.Generator] = None) -> Sequential:
        """Step (2): build and early-train a candidate in full precision."""
        scale = self.config.scale
        rng = rng if rng is not None else self.rng
        model = build_model(genome.arch, self.dataset.num_classes, rng=rng)
        trainer = Trainer(model, self.make_training_optimizer(
            model, scale.early_epochs))
        trainer.fit(self.dataset.x_train, self.dataset.y_train,
                    epochs=scale.early_epochs, batch_size=scale.batch_size,
                    rng=rng)
        return model

    def quantize_and_evaluate(self, model: Sequential,
                              policy: QuantizationPolicy,
                              rng: Optional[np.random.Generator] = None,
                              phase_times: Optional[Dict[str, float]] = None
                              ) -> tuple:
        """Steps (3)-(5): quantize per policy, optionally QAFT, evaluate.

        Returns ``(accuracy, size_bits)`` of the deployed candidate.  When
        ``phase_times`` is given, the PTQ / QAFT / eval span durations are
        accumulated into it under those keys.
        """
        scale = self.config.scale
        mode = self.config.mode
        rng = rng if rng is not None else self.rng
        recorder = get_recorder()
        with recorder.span("ptq", kind="phase") as ptq_span:
            apply_policy(model, policy, observer_kind=self.config.observer)
            calibrate(model, self.dataset.x_train,
                      batch_size=scale.batch_size)
        run_qaft = mode.qaft_in_loop and scale.qaft_epochs > 0
        ptq_accuracy: Optional[float] = None
        if run_qaft and recorder.enabled:
            # PTQ accuracy before fine-tuning, for the qaft.recovery delta.
            # Pure inference (no RNG, no state updates), so traced results
            # stay bit-identical to untraced ones.
            _, ptq_accuracy = evaluate_classifier(
                model, self.dataset.x_test, self.dataset.y_test)
        qaft_seconds = 0.0
        if run_qaft:
            with recorder.span("qaft", kind="phase") as qaft_span:
                quantization_aware_finetune(
                    model, self.dataset.x_train, self.dataset.y_train,
                    epochs=scale.qaft_epochs,
                    learning_rate=self.config.qaft_learning_rate,
                    batch_size=scale.batch_size, rng=rng)
            qaft_seconds = qaft_span.duration
        with recorder.span("eval", kind="phase") as eval_span:
            _, accuracy = evaluate_classifier(model, self.dataset.x_test,
                                              self.dataset.y_test)
            size = model_size_bits(model)
        if ptq_accuracy is not None:
            recorder.gauge("qaft.recovery", accuracy - ptq_accuracy,
                           ptq_accuracy=ptq_accuracy, accuracy=accuracy)
        if phase_times is not None:
            phase_times["ptq"] += ptq_span.duration
            phase_times["qaft"] += qaft_seconds
            phase_times["eval"] += eval_span.duration
        return accuracy, size

    def evaluate_candidate(self, genome: MixedPrecisionGenome,
                           index: int,
                           seed: Optional[int] = None) -> List[TrialResult]:
        """Run one full trial; several results if policies_per_trial > 1.

        All randomness comes from a generator seeded by
        ``trial_seed(config.seed, index)`` (or the explicit ``seed``), so
        the outcome depends only on ``(genome, config, index)`` — never on
        evaluation order or which process runs it.

        All wall-times come from spans: ``phase_times`` are the span
        durations and ``wall_time_s`` the enclosing trial-span segment,
        so the phases sum to the wall-time up to bookkeeping slack.
        """
        scale = self.config.scale
        mode = self.config.mode
        if seed is None:
            seed = trial_seed(self.config.seed, index)
        rng = np.random.default_rng(seed)
        recorder = get_recorder()
        results: List[TrialResult] = []
        with recorder.span("trial", kind="trial", trial=index) as trial_span:
            with recorder.span("train", kind="phase") as train_span:
                model = self.early_train(genome, rng=rng)
            with recorder.span("eval", kind="phase") as fp_eval_span:
                _, fp_accuracy = evaluate_classifier(
                    model, self.dataset.x_test, self.dataset.y_test)
                macs = count_macs(model, self.dataset.image_shape[:2])
                params = model.num_parameters()

            policies = [genome.policy]
            for _ in range(self.config.policies_per_trial - 1):
                policies.append(self.space.mutate_policy(genome.policy, rng,
                                                         n_mutations=3))
            snapshot = state_dict(model) if len(policies) > 1 else None

            for policy_index, policy in enumerate(policies):
                first = policy_index == 0
                phases = {"train": train_span.duration if first else 0.0,
                          "ptq": 0.0, "qaft": 0.0,
                          "eval": fp_eval_span.duration if first else 0.0}
                segment_start = trial_span.elapsed()
                if snapshot is not None and policy_index > 0:
                    remove_quantizers(model)
                    load_state_dict(model, snapshot)
                if mode.quantize_in_loop:
                    accuracy, size = self.quantize_and_evaluate(
                        model, policy, rng=rng, phase_times=phases)
                else:
                    # post-NAS baseline: full-precision accuracy, scored
                    # against the deployment (8-bit homogeneous) size
                    accuracy = fp_accuracy
                    size = model_size_bits(model,
                                           self.space.seed_policy(
                                               mode.fixed_bits))
                score = scalarize(accuracy, size, self.config.scalarization,
                                  macs=macs)
                qaft_epochs = (scale.qaft_epochs if mode.qaft_in_loop else 0)
                gpu_hours = self.cost_model.trial_hours(
                    macs, scale.n_train,
                    early_epochs=scale.early_epochs if first else 0,
                    qaft_epochs=qaft_epochs)
                elapsed = trial_span.elapsed()
                # the first result owns the shared train + FP-eval prefix
                wall_time = elapsed if first else elapsed - segment_start
                results.append(TrialResult(
                    index=index + policy_index,
                    genome=MixedPrecisionGenome(genome.arch, policy),
                    accuracy=accuracy, fp_accuracy=fp_accuracy,
                    size_bits=size, size_kb=size / (8 * 1024),
                    score=score, macs=macs, params=params,
                    train_seconds=train_span.duration,
                    gpu_hours=gpu_hours,
                    wall_time_s=wall_time, phase_times=phases))
                if recorder.enabled:
                    recorder.gauge("trial.score", score,
                                   trial=index + policy_index,
                                   accuracy=accuracy,
                                   size_kb=size / (8 * 1024),
                                   fp_accuracy=fp_accuracy)
            trial_span.tags.update(results=len(results))
        return results

    # -- checkpoint plumbing -------------------------------------------------
    def _restore(self, resume_from, optimizer: BayesianOptimizer,
                 batch_size: Optional[int]) -> tuple:
        """Load a checkpoint and rebuild the mid-search state from it.

        Returns ``(trials, batches_done, proposal_batch)``.  The GP
        training data is replayed through ``tell`` (deterministic given
        the recorded genomes/scores); the RNG stream and seed-anchor flag
        are restored from the snapshot, so the next ``ask_batch`` proposes
        exactly what the uninterrupted run would have proposed.
        """
        checkpoint = load_checkpoint(resume_from)
        expected = config_to_dict(self.config)
        if checkpoint.config != expected:
            mismatched = sorted(
                key for key in set(expected) | set(checkpoint.config)
                if expected.get(key) != checkpoint.config.get(key))
            raise CheckpointError(
                f"checkpoint at {resume_from} was written by a different "
                f"run configuration (mismatched: {', '.join(mismatched)})")
        if batch_size is not None and batch_size != checkpoint.batch_size:
            raise CheckpointError(
                f"checkpoint was written with batch_size="
                f"{checkpoint.batch_size}, cannot resume with "
                f"batch_size={batch_size} (the proposal schedule is part "
                "of the search result)")
        trials = [TrialResult.from_dict(t) for t in checkpoint.trials]
        for trial in trials:
            optimizer.tell(trial.genome, trial.score)
        optimizer.restore_state(checkpoint.optimizer)
        return trials, checkpoint.batch_index, checkpoint.batch_size

    def _save_checkpoint(self, checkpoint_dir,
                         optimizer: BayesianOptimizer,
                         trials: List[TrialResult], proposal_batch: int,
                         total: int, batches_done: int) -> None:
        save_checkpoint(checkpoint_dir, SearchCheckpoint(
            config=config_to_dict(self.config),
            dataset_spec=self.dataset.spec,
            batch_size=proposal_batch, total_trials=total,
            batch_index=batches_done,
            trials=[t.as_dict() for t in trials],
            optimizer=optimizer.state_dict()))

    # -- the loop -------------------------------------------------------------
    def run(self, final_training: bool = True, workers: int = 1,
            batch_size: Optional[int] = None,
            tracer: Optional[RunTracer] = None,
            checkpoint_dir=None, resume_from=None,
            retry_policy: Optional[RetryPolicy] = None,
            reporter: Optional[ConsoleReporter] = None) -> SearchResult:
        """Run the search; optionally finally train the Pareto set.

        Args:
            final_training: finally train the Pareto-optimal candidates.
            workers: process-pool size for trial evaluation; ``<= 1`` runs
                in-process.  The result is bit-identical for any value.
            batch_size: candidates proposed per constant-liar ``ask_batch``
                round (default :data:`DEFAULT_TRIAL_BATCH`).  Part of the
                search schedule — unlike ``workers`` it *does* change which
                candidates are proposed.
            tracer: optional :class:`~repro.obs.trace.RunTracer`; when
                given, its recorder is installed for the duration of the
                run and the full event stream goes to its run directory.
                Tracing never changes the search result.
            checkpoint_dir: when given, the full search state is
                atomically persisted to ``<checkpoint_dir>/checkpoint.json``
                after every BO batch (and once more after final training
                completes nothing new — the last batch checkpoint already
                covers the trial history).
            resume_from: directory (or checkpoint path) of an interrupted
                run to continue.  The resumed search is bit-identical to
                an uninterrupted one; the config must match and
                ``batch_size``, if given, must equal the checkpointed one.
            retry_policy: worker fault-handling policy, forwarded to the
                :class:`~repro.parallel.engine.TrialEngine` (default:
                environment-derived).
            reporter: console reporter for engine recovery diagnostics.
        """
        from .final_training import train_final_models  # cycle guard
        recorder = tracer.recorder if tracer is not None else get_recorder()
        # honour BOMP_PROFILE when traced and no profiler was installed by
        # the caller; either way the active profiler is flushed into the
        # trace when the run span closes (and per trial by the engine)
        profiler = None
        if recorder.enabled and profile.current() is None:
            profile_mode = profile.mode_from_env()
            if profile_mode is not None:
                profiler = profile.KernelProfiler(profile_mode)
        with use_recorder(recorder), profile.use_profiler(
                profiler if profiler is not None else profile.current()):
            optimizer = self.make_optimizer()
            per_candidate = self.config.policies_per_trial
            total = self.config.scale.trials
            trials: List[TrialResult] = []
            batches_done = 0
            if resume_from is not None:
                trials, batches_done, resumed_batch = self._restore(
                    resume_from, optimizer, batch_size)
                proposal_batch = resumed_batch
                if checkpoint_dir is None:
                    checkpoint_dir = resume_from
            else:
                proposal_batch = max(1, batch_size if batch_size is not None
                                     else DEFAULT_TRIAL_BATCH)
            engine = TrialEngine(self.config, self.dataset, workers=workers,
                                 cost_model=self.cost_model,
                                 space=self.space, evaluator=self,
                                 retry_policy=retry_policy,
                                 reporter=reporter)
            if recorder.enabled:
                recorder.meta(run=self.config.describe(),
                              dataset=self.config.dataset,
                              mode=self.config.mode.name,
                              scale=self.config.scale.name,
                              seed=self.config.seed,
                              workers=workers, trials=total,
                              resumed_at_trial=(len(trials)
                                                if resume_from else None))
            with recorder.span("run", kind="run",
                               mode=self.config.mode.name,
                               dataset=self.config.dataset,
                               seed=self.config.seed):
                with engine:
                    while len(trials) < total:
                        remaining = -(-(total - len(trials)) //
                                      per_candidate)
                        genomes = optimizer.ask_batch(
                            min(proposal_batch, remaining))
                        specs = []
                        for j, genome in enumerate(genomes):
                            index = len(trials) + j * per_candidate
                            specs.append(TrialSpec(
                                index=index, genome=genome,
                                seed=trial_seed(self.config.seed, index),
                                trace=recorder.enabled,
                                profile=profile.current_mode()))
                        for batch in engine.evaluate(specs):
                            for result in batch:
                                optimizer.tell(result.genome, result.score)
                                trials.append(result)
                                if self.progress is not None:
                                    self.progress(result)
                        batches_done += 1
                        if checkpoint_dir is not None:
                            self._save_checkpoint(
                                checkpoint_dir, optimizer, trials,
                                proposal_batch, total, batches_done)
                result = SearchResult(config=self.config, trials=trials)
                if final_training:
                    with recorder.span("final_training", kind="phase"):
                        result.final_models = train_final_models(
                            self, result.pareto_trials())
            # run-level profile stats (final training, out-of-trial work);
            # per-trial stats were flushed by the engine with trial indices
            active_profiler = profile.current()
            if active_profiler is not None and recorder.enabled:
                active_profiler.flush_to(recorder)
        return result
