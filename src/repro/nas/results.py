"""Search result container with Pareto extraction and JSON persistence."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bo.pareto import pareto_front, pareto_indices
from .config import (SCALE_PRESETS, ScalarizationConfig, ScalePreset,
                     SearchConfig, get_mode)
from .trial import FinalModelResult, TrialResult


def config_to_dict(config: SearchConfig) -> Dict:
    """Portable representation of a :class:`SearchConfig`.

    Shared by :class:`SearchResult` persistence and the resilience layer's
    checkpoints, so the two on-disk formats can never drift apart.
    """
    return {
        "dataset": config.dataset,
        "mode": config.mode.name,
        "scale": config.scale.name,
        "scale_params": asdict(config.scale),
        "ref_accuracy": config.scalarization.ref_accuracy,
        "ref_model_size": config.scalarization.ref_model_size,
        "seed": config.seed,
        "policies_per_trial": config.policies_per_trial,
        "kernel": config.kernel,
        "acquisition": config.acquisition,
        "observer": config.observer,
    }


def config_from_dict(raw: Dict) -> SearchConfig:
    """Inverse of :func:`config_to_dict` (tolerates pre-PR-1 payloads)."""
    if "scale_params" in raw:
        scale = ScalePreset(**raw["scale_params"])
    else:
        scale = SCALE_PRESETS[raw["scale"]]
    return SearchConfig(
        dataset=raw["dataset"], mode=get_mode(raw["mode"]),
        scale=scale,
        scalarization=ScalarizationConfig(
            ref_accuracy=raw["ref_accuracy"],
            ref_model_size=raw["ref_model_size"]),
        seed=raw["seed"],
        policies_per_trial=raw.get("policies_per_trial", 1),
        kernel=raw.get("kernel", "matern52"),
        acquisition=raw.get("acquisition", "ucb"),
        observer=raw.get("observer", "minmax"))


@dataclass
class SearchResult:
    """Everything a finished search produced."""

    config: SearchConfig
    trials: List[TrialResult]
    final_models: List[FinalModelResult] = field(default_factory=list)

    # -- Pareto views -----------------------------------------------------
    def pareto_trial_indices(self) -> List[int]:
        accuracies = [t.accuracy for t in self.trials]
        sizes = [t.size_kb for t in self.trials]
        return pareto_indices(accuracies, sizes)

    def pareto_trials(self) -> List[TrialResult]:
        return [self.trials[i] for i in self.pareto_trial_indices()]

    def candidate_front(self) -> List[Tuple[float, float]]:
        """(accuracy, size_kb) Pareto front over in-search candidates."""
        return pareto_front([t.accuracy for t in self.trials],
                            [t.size_kb for t in self.trials])

    def final_front(self) -> List[Tuple[float, float]]:
        """(accuracy, size_kb) front over finally-trained models."""
        if not self.final_models:
            return []
        return pareto_front([m.accuracy for m in self.final_models],
                            [m.size_kb for m in self.final_models])

    # -- cost --------------------------------------------------------------
    def search_gpu_hours(self) -> float:
        """Total simulated cost of the search loop (excl. final training)."""
        return sum(t.gpu_hours for t in self.trials)

    def final_training_gpu_hours(self) -> float:
        return sum(m.gpu_hours for m in self.final_models)

    def total_gpu_hours(self) -> float:
        return self.search_gpu_hours() + self.final_training_gpu_hours()

    # -- summaries ----------------------------------------------------------
    def best_trial(self) -> TrialResult:
        if not self.trials:
            raise ValueError("no trials recorded")
        return max(self.trials, key=lambda t: t.score)

    def score_trajectory(self) -> List[float]:
        """Best-so-far score after each trial (BO convergence curve)."""
        best = float("-inf")
        trajectory = []
        for trial in self.trials:
            best = max(best, trial.score)
            trajectory.append(best)
        return trajectory

    def summary(self) -> str:
        lines = [f"Search: {self.config.describe()}",
                 f"  trials: {len(self.trials)}",
                 f"  simulated search cost: "
                 f"{self.search_gpu_hours():.2f} GPU-hours"]
        if self.trials:
            best = self.best_trial()
            lines.append(
                f"  best trial #{best.index}: acc={best.accuracy:.3f} "
                f"size={best.size_kb:.2f} kB score={best.score:.3f}")
        if self.final_models:
            lines.append(f"  final Pareto models: {len(self.final_models)}")
            for m in sorted(self.final_models, key=lambda m: m.size_kb):
                deployed = ("" if m.deployed_accuracy is None else
                            f" int-engine={m.deployed_accuracy:.3f}")
                lines.append(f"    acc={m.accuracy:.3f} "
                             f"size={m.size_kb:.2f} kB{deployed}")
        return "\n".join(lines)

    # -- persistence ----------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "config": config_to_dict(self.config),
            "trials": [t.as_dict() for t in self.trials],
            "final_models": [m.as_dict() for m in self.final_models],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SearchResult":
        return cls(
            config=config_from_dict(data["config"]),
            trials=[TrialResult.from_dict(t) for t in data["trials"]],
            final_models=[FinalModelResult.from_dict(m)
                          for m in data["final_models"]])

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "SearchResult":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
