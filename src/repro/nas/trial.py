"""Trial and final-model result records (JSON serializable)."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..quant.policy import QuantizationPolicy
from ..space.genome import ArchGenome, BlockGenes, MixedPrecisionGenome


def genome_to_dict(genome: MixedPrecisionGenome) -> Dict:
    """Portable representation of a genome."""
    return {
        "blocks": [list(b.as_tuple()) for b in genome.arch.blocks],
        "conv2_filters": genome.arch.conv2_filters,
        "policy": genome.policy.as_dict(),
    }


def genome_from_dict(data: Dict) -> MixedPrecisionGenome:
    """Inverse of :func:`genome_to_dict`."""
    blocks = tuple(
        BlockGenes(int(k), float(a), int(e), int(n))
        for k, a, e, n in data["blocks"])
    arch = ArchGenome(blocks=blocks,
                      conv2_filters=int(data["conv2_filters"]))
    policy = QuantizationPolicy(
        {slot: int(bits) for slot, bits in data["policy"].items()})
    return MixedPrecisionGenome(arch, policy)


@dataclass
class TrialResult:
    """One evaluated candidate inside the search loop.

    ``wall_time_s`` and ``phase_times`` (train/ptq/qaft/eval wall-clock
    seconds) were added with the parallel engine; results serialized
    before then load with both set to ``None``.  All timings derive from
    :mod:`repro.obs` spans: ``train_seconds`` is the early-training phase
    alone (it used to also absorb FP-eval time), and ``phase_times`` sum
    to ``wall_time_s`` up to bookkeeping slack.
    """

    index: int
    genome: MixedPrecisionGenome
    accuracy: float              # evaluation accuracy (quantized if in-loop)
    fp_accuracy: float           # accuracy right after early training
    size_bits: int
    size_kb: float
    score: float
    macs: int
    params: int
    train_seconds: float
    gpu_hours: float             # simulated search cost of this trial
    wall_time_s: Optional[float] = None
    phase_times: Optional[Dict[str, float]] = None

    def as_dict(self) -> Dict:
        data = asdict(self)
        data["genome"] = genome_to_dict(self.genome)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "TrialResult":
        data = dict(data)
        data["genome"] = genome_from_dict(data["genome"])
        # timing fields postdate old cache files; default them to None
        data.setdefault("wall_time_s", None)
        data.setdefault("phase_times", None)
        return cls(**data)


@dataclass
class FinalModelResult:
    """A Pareto-optimal candidate after final training.

    ``accuracy`` is the fake-quant simulation accuracy; since the
    ``repro.infer`` engine landed, ``deployed_accuracy`` additionally
    records what the compiled integer-only program scores on the same
    test set (``None`` when the model cannot be compiled, e.g. >8-bit
    weights, or for results serialized before the engine existed).
    """

    trial_index: int
    genome: MixedPrecisionGenome
    accuracy: float              # deployed (quantized, unless fp baseline)
    fp_accuracy: float           # after full-precision final training
    size_bits: int
    size_kb: float
    gpu_hours: float
    candidate_accuracy: float    # the in-search accuracy it was picked on
    candidate_size_kb: Optional[float] = None
    deployed_accuracy: Optional[float] = None

    def as_dict(self) -> Dict:
        data = asdict(self)
        data["genome"] = genome_to_dict(self.genome)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FinalModelResult":
        data = dict(data)
        data["genome"] = genome_from_dict(data["genome"])
        # fields postdating old result files default to None
        data.setdefault("candidate_size_kb", None)
        data.setdefault("deployed_accuracy", None)
        return cls(**data)
