"""The BOMP-NAS engine: configs, search loop, final training, cost model."""

from .config import (SCALE_PRESETS, SEARCH_MODES, ScalePreset, SearchConfig,
                     SearchMode, get_mode, get_scale)
from .cost import (PAPER_EARLY_EPOCHS, PAPER_N_TRAIN, PAPER_TRIALS,
                   SEED_MACS_32, CostModel)
from .final_training import train_final_model, train_final_models
from .results import SearchResult
from .search import BOMPNAS
from .trial import (FinalModelResult, TrialResult, genome_from_dict,
                    genome_to_dict)

__all__ = [
    "BOMPNAS", "SearchConfig", "SearchMode", "ScalePreset",
    "SEARCH_MODES", "SCALE_PRESETS", "get_mode", "get_scale",
    "SearchResult", "TrialResult", "FinalModelResult",
    "genome_to_dict", "genome_from_dict",
    "CostModel", "SEED_MACS_32", "PAPER_TRIALS", "PAPER_EARLY_EPOCHS",
    "PAPER_N_TRAIN",
    "train_final_model", "train_final_models",
]
