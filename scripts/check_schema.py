#!/usr/bin/env python
"""Validate observability artifacts against their schemas.

Checks run-directory JSONL event logs (``events.jsonl``), benchmark files
(``BENCH_*.json``), search checkpoints (``checkpoint.json``), and serving
stats snapshots (``serve_stats.json``) with the validators dispatched by
:mod:`repro.obs.schema`.

``BENCH_infer.json`` is validated against schema version 2, which adds
``arena_bytes`` / ``allocs_per_image`` (the planned executor's memory
figures) and a ``host`` metadata block; runs recorded under schema 1 are
migrated on the next append and carry ``null`` for the new fields.

Usage::

    python scripts/check_schema.py               # all BENCH_*.json in repo root
    python scripts/check_schema.py runs/my-run   # a traced run directory
    python scripts/check_schema.py events.jsonl BENCH_parallel.json

Exits 0 when every file validates, 1 otherwise.  Wired into the test
suite via ``tests/obs/test_schema.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.schema import validate_path  # noqa: E402
from repro.obs.trace import EVENTS_FILENAME  # noqa: E402


def default_targets() -> list:
    """Everything validatable in the repo root: bench files + run dirs."""
    targets = sorted(REPO_ROOT.glob("BENCH_*.json"))
    runs_dir = REPO_ROOT / "runs"
    if runs_dir.is_dir():
        targets.extend(sorted(runs_dir.glob(f"*/{EVENTS_FILENAME}")))
        targets.extend(sorted(runs_dir.glob("*/checkpoint.json")))
        targets.extend(sorted(runs_dir.glob("*/serve_stats.json")))
    return targets


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="run dirs, events.jsonl files, or "
                             "BENCH_*.json files (default: repo-root "
                             "BENCH files and runs/*)")
    args = parser.parse_args(argv)
    targets = [Path(p) for p in args.paths] or default_targets()
    if not targets:
        print("nothing to validate (no BENCH_*.json or runs/ found)")
        return 0
    failures = 0
    for target in targets:
        try:
            errors = validate_path(target)
        except (OSError, ValueError) as exc:
            errors = [f"unreadable: {exc}"]
        if errors:
            failures += 1
            print(f"FAIL {target}")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"ok   {target}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
