#!/usr/bin/env python
"""Measure perf trajectories and log them to the ``BENCH_*.json`` files.

Default: serial-vs-parallel search wall-clock, appended to
``BENCH_parallel.json`` (stable schema, see :mod:`repro.parallel.bench`)
so successive PRs can compare timings::

    PYTHONPATH=src python scripts/bench_trajectory.py --scale smoke

``--infer`` instead measures inference throughput — the serial float
fake-quant reference vs the compiled integer engine, images/sec on the
same batch — and appends to ``BENCH_infer.json`` (see
:mod:`repro.infer.bench`)::

    PYTHONPATH=src python scripts/bench_trajectory.py --infer

``--serve`` runs the serving load generator — a batch-size-1 sequential
baseline vs dynamic batching under concurrent clients, through the real
daemon admission/batching path — and appends to ``BENCH_serve.json``
(see :mod:`repro.serve.bench`)::

    PYTHONPATH=src python scripts/bench_trajectory.py --serve
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.parallel import (append_bench_record, default_bench_path,
                            default_workers, measure_speedup)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--dataset", choices=("cifar10", "cifar100"),
                        default="cifar10")
    parser.add_argument("--mode", default="mp_qaft")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: CPU count, capped at 8)")
    parser.add_argument("--trial-batch", type=int, default=None)
    parser.add_argument("--trace-overhead", action="store_true",
                        help="also time a traced serial run and record the "
                             "tracing overhead ratio")
    parser.add_argument("--out", default=None,
                        help="bench log path (default: BENCH_parallel.json "
                             "at the repo root)")
    parser.add_argument("--infer", action="store_true",
                        help="measure inference throughput (float "
                             "fake-quant vs integer engine) instead of "
                             "search parallelism; logs to BENCH_infer.json")
    parser.add_argument("--bits", type=int, default=8,
                        help="homogeneous weight bitwidth for --infer / "
                             "--serve")
    parser.add_argument("--n-images", type=int, default=256,
                        help="batch size measured by --infer")
    parser.add_argument("--serve", action="store_true",
                        help="measure serving throughput/latency "
                             "(sequential vs dynamically batched) "
                             "instead; logs to BENCH_serve.json")
    parser.add_argument("--requests", type=int, default=256,
                        help="requests fired by --serve")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent clients driven by --serve")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="arena batch capacity for --serve")
    args = parser.parse_args(argv)

    if args.serve:
        from repro.serve.bench import (append_bench_record as append_serve,
                                       default_bench_path as serve_path,
                                       measure_serving)
        record = measure_serving(dataset=args.dataset, bits=args.bits,
                                 n_requests=args.requests,
                                 n_clients=args.clients,
                                 max_batch=args.max_batch, seed=args.seed)
        path = Path(args.out) if args.out else serve_path()
        append_serve(path, record)
        print(json.dumps(record, indent=2))
        print(f"appended to {path}")
        return 0

    if args.infer:
        from repro.infer.bench import (append_bench_record as append_infer,
                                       default_bench_path as infer_path,
                                       measure_inference)
        record = measure_inference(dataset=args.dataset, bits=args.bits,
                                   n_images=args.n_images, seed=args.seed)
        path = Path(args.out) if args.out else infer_path()
        append_infer(path, record)
        print(json.dumps(record, indent=2))
        print(f"appended to {path}")
        return 0

    workers = args.workers if args.workers is not None else default_workers()
    record = measure_speedup(scale=args.scale, dataset=args.dataset,
                             mode=args.mode, seed=args.seed,
                             workers=workers, batch_size=args.trial_batch,
                             measure_traced=args.trace_overhead)
    path = Path(args.out) if args.out else default_bench_path()
    append_bench_record(path, record)
    print(json.dumps(record, indent=2))
    print(f"appended to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
