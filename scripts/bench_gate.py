#!/usr/bin/env python
"""Gate the bench trajectory: fail when the newest run regressed.

Compares the newest record of each ``BENCH_*.json`` trajectory log
against the best prior record with the same workload key and a
compatible host fingerprint (see :mod:`repro.obs.gate`):

- ``BENCH_infer.json``: integer-engine throughput ``int_ips``
  (higher is better);
- ``BENCH_parallel.json``: serial search wall-clock ``serial_s``
  (lower is better) and, on multi-CPU hosts, ``speedup``;
- ``BENCH_serve.json``: batched serving throughput ``conc_ips``
  (higher is better) and, on multi-CPU hosts, tail latency ``p99_ms``.

Usage::

    python scripts/bench_gate.py                   # repo-root BENCH files
    python scripts/bench_gate.py BENCH_infer.json --tolerance 0.05
    python scripts/bench_gate.py --dry-run         # report, always exit 0

Exits 1 when any gated metric is worse than its baseline by more than
the tolerance, 0 otherwise (including when no comparable baseline
exists — a new machine or a freshly migrated log must not fail CI).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.gate import DEFAULT_TOLERANCE, run_gate  # noqa: E402


def default_targets() -> list:
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="BENCH_*.json files (default: repo root)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative slack before a change counts as a "
                             "regression (default %(default)s)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report comparisons but always exit 0")
    args = parser.parse_args(argv)
    targets = [Path(p) for p in args.paths] or default_targets()
    if not targets:
        print("nothing to gate (no BENCH_*.json found)")
        return 0
    report = run_gate(targets, tolerance=args.tolerance)
    print(report.describe())
    regressions = report.regressions
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance")
        return 0 if args.dry_run else 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
