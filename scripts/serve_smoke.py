#!/usr/bin/env python
"""CI smoke test for the serving daemon: HTTP round trip + clean drain.

Builds a small deterministic artifact, starts ``ServeDaemon`` on an
ephemeral port, loads the model over HTTP, sends a concurrent burst of
predict requests from real socket clients, checks the answers against
the serial ``repro infer`` reference (bit-identical logits), drains, and
validates the ``serve_stats.json`` left behind.  Everything a deploy
would do, in a few seconds::

    PYTHONPATH=src python scripts/serve_smoke.py

Exits 0 on success, 1 with a diagnosis otherwise.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.infer.artifact import load_artifact  # noqa: E402
from repro.obs.schema import validate_path  # noqa: E402
from repro.serve import ServeConfig, ServeDaemon  # noqa: E402
from repro.serve.bench import make_bench_artifact  # noqa: E402

N_CLIENTS = 8
IMAGES_PER_CLIENT = 4


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="bomp-serve-smoke-") as tmp:
        artifact_path = Path(tmp) / "smoke.bomp"
        make_bench_artifact(artifact_path)
        run_dir = Path(tmp) / "run"
        daemon = ServeDaemon(ServeConfig(
            port=0, max_batch=4, max_wait_ms=2.0, run_dir=str(run_dir)))
        host, port = daemon.start()
        base = f"http://{host}:{port}"

        health = json.loads(
            urllib.request.urlopen(base + "/healthz", timeout=10).read())
        assert health["status"] == "ok", health
        _post(base, "/v1/models/smoke/load", {"path": str(artifact_path)})

        rng = np.random.default_rng(11)
        images = rng.normal(size=(N_CLIENTS * IMAGES_PER_CLIENT,
                                  16, 16, 3)).astype(np.float32)
        results: list = [None] * N_CLIENTS
        failures: list = []

        def client(index: int) -> None:
            lo = index * IMAGES_PER_CLIENT
            batch = images[lo:lo + IMAGES_PER_CLIENT]
            try:
                results[index] = _post(
                    base, "/v1/models/smoke/predict",
                    {"inputs": batch.tolist(), "return_logits": True})
            except Exception as exc:
                failures.append(f"client {index}: {exc}")

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            print("FAIL concurrent clients:", *failures, sep="\n  ")
            return 1

        served = np.concatenate([
            np.asarray(results[i]["logits"], dtype=np.float32)
            for i in range(N_CLIENTS)])
        reference = load_artifact(artifact_path).compile(
            name="reference").run(images, batch_size=images.shape[0])
        if not np.array_equal(served, reference):
            worst = float(np.abs(served - reference).max())
            print(f"FAIL served logits differ from serial reference "
                  f"(max abs diff {worst})")
            return 1

        stats = daemon.shutdown(drain=True)
        admitted = stats["metrics"]["serve.requests"]["value"]
        if admitted < N_CLIENTS * IMAGES_PER_CLIENT:
            print(f"FAIL only {admitted} requests admitted")
            return 1
        errors = validate_path(run_dir / "serve_stats.json")
        if errors:
            print("FAIL serve_stats.json:", *errors, sep="\n  ")
            return 1
        print(f"serve smoke ok: {N_CLIENTS} concurrent clients, "
              f"{int(admitted)} requests, bit-identical to serial "
              f"inference, clean drain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
