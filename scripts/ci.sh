#!/usr/bin/env bash
# Tier-1 CI: test suite + schema contracts + bench regression gate.
#
# Usage:  bash scripts/ci.sh
#
# Steps:
#   1. tier-1 pytest (slow/bench marked tests stay opted out via addopts)
#   2. schema validation of the committed BENCH_*.json files and of a
#      freshly traced+profiled run's events.jsonl (exercises the full
#      span/metric/profile event surface, not just checked-in artifacts)
#   3. serving smoke test (HTTP round trip against a live daemon,
#      concurrent clients, bit-identity vs serial inference, clean drain)
#   4. bench gate dry run (reports newest-vs-baseline deltas; the
#      enforcing run is `python scripts/bench_gate.py` without --dry-run,
#      meant for perf-sensitive PRs after refreshing the BENCH logs)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== schema: committed BENCH files =="
python scripts/check_schema.py

echo "== schema: freshly traced+profiled run =="
TMP_RUN="$(mktemp -d)"
trap 'rm -rf "$TMP_RUN"' EXIT
python -m repro search --scale unit --no-final-training --profile \
    --trace-dir "$TMP_RUN/run" --quiet >/dev/null
python scripts/check_schema.py "$TMP_RUN/run"

echo "== serve smoke =="
python scripts/serve_smoke.py

echo "== bench gate (dry run) =="
python scripts/bench_gate.py --dry-run

echo "CI passed"
