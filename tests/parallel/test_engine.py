"""Tests for the trial-evaluation engine and its worker protocol."""

import pickle

import numpy as np
import pytest

from repro.parallel import (TrialEngine, TrialEvaluationError, TrialOutcome,
                            TrialSpec, trial_seed)


@pytest.fixture
def spec(c10_space, rng):
    genome = c10_space.random_genome(rng)
    return TrialSpec(index=0, genome=genome, seed=trial_seed(0, 0))


class TestWorkerProtocol:
    def test_spec_pickle_roundtrip(self, spec):
        recovered = pickle.loads(pickle.dumps(spec))
        assert recovered == spec

    def test_outcome_pickle_roundtrip(self, spec):
        outcome = TrialOutcome(index=3, error="boom")
        recovered = pickle.loads(pickle.dumps(outcome))
        assert recovered.index == 3
        assert recovered.error == "boom"

    def test_spec_is_small(self, spec):
        # the whole point of the protocol: per-task payloads must never
        # carry dataset arrays or model weights
        assert len(pickle.dumps(spec)) < 4096


class TestEngineSerial:
    def test_serial_matches_direct_evaluation(self, unit_config,
                                              tiny_dataset, spec):
        from repro.nas import BOMPNAS
        nas = BOMPNAS(unit_config, tiny_dataset)
        direct = nas.evaluate_candidate(spec.genome, spec.index,
                                        seed=spec.seed)
        with TrialEngine(unit_config, tiny_dataset, workers=1) as engine:
            assert not engine.parallel
            [batch] = engine.evaluate([spec])
        assert len(batch) == len(direct)
        assert batch[0].genome == direct[0].genome
        assert batch[0].score == direct[0].score
        assert batch[0].accuracy == direct[0].accuracy

    def test_empty_specs(self, unit_config, tiny_dataset):
        with TrialEngine(unit_config, tiny_dataset, workers=1) as engine:
            assert engine.evaluate([]) == []

    def test_evaluator_error_raises(self, unit_config, tiny_dataset, spec):
        class Broken:
            def evaluate_candidate(self, genome, index, seed=None):
                raise RuntimeError("injected failure")

        engine = TrialEngine(unit_config, tiny_dataset, workers=1,
                             evaluator=Broken())
        with engine, pytest.raises(TrialEvaluationError,
                                   match="injected failure"):
            engine.evaluate([spec])


class TestEngineParallel:
    def test_pool_matches_serial(self, unit_config, tiny_dataset, c10_space):
        rng_local = np.random.default_rng(11)
        specs = [TrialSpec(index=i, genome=c10_space.random_genome(rng_local),
                           seed=trial_seed(unit_config.seed, i))
                 for i in range(3)]
        with TrialEngine(unit_config, tiny_dataset, workers=1) as engine:
            serial = engine.evaluate(specs)
        with TrialEngine(unit_config, tiny_dataset, workers=2) as engine:
            parallel = engine.evaluate(specs)
        for a, b in zip(serial, parallel):
            assert [t.genome for t in a] == [t.genome for t in b]
            assert [t.score for t in a] == [t.score for t in b]
            assert [t.size_bits for t in a] == [t.size_bits for t in b]

    def test_bad_start_method_falls_back_serial(self, unit_config,
                                                tiny_dataset, spec,
                                                monkeypatch):
        monkeypatch.setenv("BOMP_MP_START", "no-such-method")
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = TrialEngine(unit_config, tiny_dataset, workers=2)
            engine.__enter__()
        try:
            assert not engine.parallel
            [batch] = engine.evaluate([spec])
            assert batch[0].size_bits > 0
        finally:
            engine.close()
