"""Serial and parallel searches must be bit-identical (the core contract
that keeps worker count out of experiment cache keys)."""

import pytest

from repro.nas import BOMPNAS


@pytest.fixture(scope="module")
def serial_run(unit_scale):
    from repro.data import make_synthetic_dataset
    from repro.nas import SearchConfig, get_mode
    dataset = make_synthetic_dataset(
        "tiny-det", num_classes=10, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=3)
    config = SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                          scale=unit_scale, seed=0)
    serial = BOMPNAS(config, dataset).run(final_training=False, workers=1)
    return config, dataset, serial


class TestWorkerCountInvariance:
    def test_two_workers_identical_to_serial(self, serial_run):
        config, dataset, serial = serial_run
        parallel = BOMPNAS(config, dataset).run(final_training=False,
                                                workers=2)
        assert [t.genome for t in parallel.trials] == \
            [t.genome for t in serial.trials]
        assert [t.score for t in parallel.trials] == \
            [t.score for t in serial.trials]
        assert [t.accuracy for t in parallel.trials] == \
            [t.accuracy for t in serial.trials]
        assert [t.size_bits for t in parallel.trials] == \
            [t.size_bits for t in serial.trials]
        assert [t.index for t in parallel.pareto_trials()] == \
            [t.index for t in serial.pareto_trials()]

    def test_trial_indices_sequential(self, serial_run):
        _, _, serial = serial_run
        assert [t.index for t in serial.trials] == \
            list(range(len(serial.trials)))

    def test_timing_fields_populated(self, serial_run):
        _, _, serial = serial_run
        for trial in serial.trials:
            assert trial.wall_time_s is not None and trial.wall_time_s >= 0
            assert set(trial.phase_times) == {"train", "ptq", "qaft", "eval"}
            assert all(v >= 0 for v in trial.phase_times.values())

    def test_phase_times_sum_to_wall_time(self, serial_run):
        # timer hygiene: phases are span durations and the wall time is the
        # enclosing trial span, so the parts account for the whole (up to
        # snapshot/bookkeeping slack between spans)
        _, _, serial = serial_run
        for trial in serial.trials:
            phase_sum = sum(trial.phase_times.values())
            slack = 0.1 * trial.wall_time_s + 0.05
            assert abs(trial.wall_time_s - phase_sum) <= slack
            assert trial.train_seconds == pytest.approx(
                trial.phase_times["train"])


class TestCrashRecoveryInvariance:
    """A worker SIGKILLed mid-batch must not change the search result:
    the pool respawns, the trial is re-evaluated from its deterministic
    seed, and the run stays bit-identical to serial."""

    @pytest.mark.faults
    def test_worker_killed_mid_batch_identical_to_serial(
            self, serial_run, monkeypatch, tmp_path):
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        config, dataset, serial = serial_run
        monkeypatch.setenv("BOMP_FAULTS", "crash@1")
        monkeypatch.setenv("BOMP_FAULT_DIR", str(tmp_path / "ledger"))
        recovered = BOMPNAS(config, dataset).run(final_training=False,
                                                 workers=2)
        assert [t.genome for t in recovered.trials] == \
            [t.genome for t in serial.trials]
        assert [t.score for t in recovered.trials] == \
            [t.score for t in serial.trials]
        assert [t.accuracy for t in recovered.trials] == \
            [t.accuracy for t in serial.trials]
        assert (tmp_path / "ledger" / "crash-1-0").exists(), \
            "the scripted crash never fired"


class TestTraceInvariance:
    """--trace must never change results: instrumentation reads clocks and
    values, never the run's random generators."""

    def test_traced_serial_identical(self, serial_run, tmp_path):
        from repro.obs.trace import RunTracer, read_events
        config, dataset, serial = serial_run
        with RunTracer(tmp_path / "run") as tracer:
            traced = BOMPNAS(config, dataset).run(
                final_training=False, workers=1, tracer=tracer)
        assert [t.genome for t in traced.trials] == \
            [t.genome for t in serial.trials]
        assert [t.score for t in traced.trials] == \
            [t.score for t in serial.trials]
        assert [t.accuracy for t in traced.trials] == \
            [t.accuracy for t in serial.trials]
        assert [t.size_bits for t in traced.trials] == \
            [t.size_bits for t in serial.trials]
        events = read_events(tmp_path / "run")
        trial_spans = [e for e in events
                       if e["type"] == "span" and e["kind"] == "trial"]
        assert len(trial_spans) == len(serial.trials)

    def test_traced_parallel_identical(self, serial_run, tmp_path):
        from repro.obs.trace import RunTracer, read_events
        config, dataset, serial = serial_run
        with RunTracer(tmp_path / "run2") as tracer:
            traced = BOMPNAS(config, dataset).run(
                final_training=False, workers=2, tracer=tracer)
        assert [t.score for t in traced.trials] == \
            [t.score for t in serial.trials]
        assert [t.accuracy for t in traced.trials] == \
            [t.accuracy for t in serial.trials]
        # worker events were shipped back and merged into one valid stream
        from repro.obs.schema import validate_events
        events = read_events(tmp_path / "run2")
        assert validate_events(events) == []
        trial_spans = [e for e in events
                       if e["type"] == "span" and e["kind"] == "trial"]
        assert sorted(e["trial"] for e in trial_spans) == \
            [t.index for t in serial.trials]
