"""Serial and parallel searches must be bit-identical (the core contract
that keeps worker count out of experiment cache keys)."""

import pytest

from repro.nas import BOMPNAS


@pytest.fixture(scope="module")
def serial_run(unit_scale):
    from repro.data import make_synthetic_dataset
    from repro.nas import SearchConfig, get_mode
    dataset = make_synthetic_dataset(
        "tiny-det", num_classes=10, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=3)
    config = SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                          scale=unit_scale, seed=0)
    serial = BOMPNAS(config, dataset).run(final_training=False, workers=1)
    return config, dataset, serial


class TestWorkerCountInvariance:
    def test_two_workers_identical_to_serial(self, serial_run):
        config, dataset, serial = serial_run
        parallel = BOMPNAS(config, dataset).run(final_training=False,
                                                workers=2)
        assert [t.genome for t in parallel.trials] == \
            [t.genome for t in serial.trials]
        assert [t.score for t in parallel.trials] == \
            [t.score for t in serial.trials]
        assert [t.accuracy for t in parallel.trials] == \
            [t.accuracy for t in serial.trials]
        assert [t.size_bits for t in parallel.trials] == \
            [t.size_bits for t in serial.trials]
        assert [t.index for t in parallel.pareto_trials()] == \
            [t.index for t in serial.pareto_trials()]

    def test_trial_indices_sequential(self, serial_run):
        _, _, serial = serial_run
        assert [t.index for t in serial.trials] == \
            list(range(len(serial.trials)))

    def test_timing_fields_populated(self, serial_run):
        _, _, serial = serial_run
        for trial in serial.trials:
            assert trial.wall_time_s is not None and trial.wall_time_s >= 0
            assert set(trial.phase_times) == {"train", "ptq", "qaft", "eval"}
            assert all(v >= 0 for v in trial.phase_times.values())
