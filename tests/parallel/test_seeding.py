"""Tests for deterministic per-trial seeding."""

import numpy as np
import pytest

from repro.parallel import trial_rng, trial_seed


class TestTrialSeed:
    def test_deterministic(self):
        assert trial_seed(7, 3) == trial_seed(7, 3)

    def test_distinct_per_index(self):
        seeds = {trial_seed(0, i) for i in range(64)}
        assert len(seeds) == 64

    def test_distinct_per_run_seed(self):
        assert trial_seed(0, 5) != trial_seed(1, 5)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            trial_seed(0, -1)

    def test_rng_streams_independent(self):
        a = trial_rng(0, 0).standard_normal(8)
        b = trial_rng(0, 1).standard_normal(8)
        assert not np.allclose(a, b)

    def test_rng_reproducible(self):
        assert np.array_equal(trial_rng(3, 2).standard_normal(8),
                              trial_rng(3, 2).standard_normal(8))
