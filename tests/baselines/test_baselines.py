"""Tests for the evolutionary core and the comparator searches."""

import numpy as np
import pytest

from repro.baselines import (AgingEvolution, JASQSearch, MicroNASSearch,
                             SequentialSearch, constrained_score)
from repro.baselines.reference import (TABLE2_REFERENCES, TABLE3_REFERENCES,
                                       TABLE4_PAPER, table2_rows)
from repro.nas import SearchConfig


class TestAgingEvolution:
    def make(self, c10_space, seed=0, population=6, tournament=3):
        rng = np.random.default_rng(seed)
        return AgingEvolution(
            rng, sample_fn=c10_space.random_genome,
            mutate_fn=lambda g, r: c10_space.mutate(g, r),
            population_size=population, tournament_size=tournament)

    def test_warmup_then_mutation(self, c10_space):
        evo = self.make(c10_space)
        objective = lambda g: float(g.policy.mean_bits())
        for _ in range(6):  # warm-up: random sampling
            g = evo.ask()
            evo.tell(g, objective(g))
        assert len(evo.population) == 6
        child = evo.ask()  # now a mutation of a tournament winner
        c10_space.validate(child)

    def test_population_fifo_eviction(self, c10_space):
        evo = self.make(c10_space, population=3)
        genomes = []
        for i in range(5):
            g = evo.ask()
            genomes.append(g)
            evo.tell(g, float(i))
        assert len(evo.population) == 3
        assert len(evo.history) == 5
        # oldest two evicted
        population_keys = {g.as_key() for g, _ in evo.population}
        assert genomes[0].as_key() not in population_keys

    def test_optimizes_synthetic_objective(self, c10_space):
        """Evolution should push mean bitwidth up when score rewards it."""
        evo = self.make(c10_space, seed=3, population=8)
        objective = lambda g: float(g.policy.mean_bits())
        history = evo.run(objective, n_evaluations=40)
        first_scores = [s for _, s in history[:8]]
        last_scores = [s for _, s in history[-8:]]
        assert np.mean(last_scores) > np.mean(first_scores)

    def test_best(self, c10_space):
        evo = self.make(c10_space)
        scores = [0.3, 0.9, 0.1]
        for s in scores:
            evo.tell(c10_space.random_genome(evo.rng), s)
        assert evo.best()[1] == 0.9

    def test_validation(self, c10_space):
        with pytest.raises(ValueError):
            self.make(c10_space, population=1)
        with pytest.raises(ValueError):
            self.make(c10_space, population=4, tournament=5)
        evo = self.make(c10_space)
        with pytest.raises(RuntimeError):
            evo.best()
        with pytest.raises(ValueError):
            evo.tell(c10_space.random_genome(evo.rng), float("inf"))
        with pytest.raises(ValueError):
            evo.run(lambda g: 0.0, n_evaluations=0)


class TestJASQ:
    def test_runs_and_forces_ptq_mode(self, unit_config, tiny_dataset):
        search = JASQSearch(unit_config, tiny_dataset)
        assert search.config.mode.name == "mp_ptq"
        result = search.run(final_training=False)
        assert len(result.trials) == unit_config.scale.trials
        # JASQ searches mixed precision
        all_bits = set()
        for t in result.trials:
            all_bits |= set(t.genome.policy.as_dict().values())
        assert len(all_bits) > 1

    def test_final_training(self, unit_config, tiny_dataset):
        result = JASQSearch(unit_config, tiny_dataset).run(
            final_training=True)
        assert result.final_models


class TestMicroNAS:
    def test_constrained_score(self):
        assert constrained_score(0.8, 10.0, size_budget_kb=16.0) == 0.8
        penalized = constrained_score(0.8, 26.0, size_budget_kb=16.0)
        assert penalized < 0.8
        assert penalized == pytest.approx(0.8 - 0.02 * 10)

    def test_constrained_score_validation(self):
        with pytest.raises(ValueError):
            constrained_score(0.8, 10.0, size_budget_kb=0.0)

    def test_runs_with_8bit_policies(self, unit_config, tiny_dataset):
        search = MicroNASSearch(unit_config, tiny_dataset,
                                size_budget_kb=40.0)
        result = search.run(final_training=False)
        for trial in result.trials:
            assert set(trial.genome.policy.as_dict().values()) == {8}

    def test_budget_validation(self, unit_config, tiny_dataset):
        with pytest.raises(ValueError):
            MicroNASSearch(unit_config, tiny_dataset, size_budget_kb=-1.0)


class TestSequential:
    def test_two_stage_pipeline(self, unit_config, tiny_dataset):
        search = SequentialSearch(unit_config, tiny_dataset,
                                  policy_trials=5)
        stage1, policies = search.run()
        assert stage1.config.mode.name == "fp_nas"
        assert len(policies) == 5
        # sorted best-first by Eq. 1 score: verify ordering is consistent
        for policy, accuracy, size_kb in policies:
            assert 0.0 <= accuracy <= 1.0
            assert size_kb > 0

    def test_policy_trials_validation(self, unit_config, tiny_dataset):
        with pytest.raises(ValueError):
            SequentialSearch(unit_config, tiny_dataset, policy_trials=0)


class TestReferences:
    def test_table2_row_counts(self):
        assert len(TABLE2_REFERENCES) == 9
        assert len(table2_rows("cifar10")) == 3
        assert len(table2_rows("cifar100")) == 6

    def test_table3_formulas(self):
        apq = next(e for e in TABLE3_REFERENCES if e.method == "APQ")
        assert apq.cost(0) == 2400.0
        assert apq.cost(10) == 2405.0
        jasq = next(e for e in TABLE3_REFERENCES if e.method == "JASQ")
        assert jasq.cost(2) == 144.0

    def test_table4_has_all_cells(self):
        modes = {"fixed8_ptq", "mp_ptq", "mp_qaft", "fixed4_qaft"}
        datasets = {"cifar10", "cifar100"}
        assert set(TABLE4_PAPER) == {(m, d) for m in modes for d in datasets}

    def test_cost_validation(self):
        apq = TABLE3_REFERENCES[0]
        with pytest.raises(ValueError):
            apq.cost(-1)
