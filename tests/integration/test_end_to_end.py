"""Cross-module integration tests: the full pipeline, mechanism checks.

These tests verify the paper's *mechanisms* end-to-end on real training:
PTQ hurts at low bitwidths, QAFT recovers, BO consumes the scalarized
scores, final training deploys quantized models.
"""

import numpy as np
import pytest

from repro.bo import scalarize
from repro.data import make_synthetic_dataset
from repro.nas import BOMPNAS, SearchConfig, get_mode, get_scale
from repro.nn import (SGD, CosineDecayLR, Trainer, evaluate_classifier,
                      load_state_dict, state_dict)
from repro.quant import (apply_policy, calibrate,
                         quantization_aware_finetune, remove_quantizers)
from repro.space import SearchSpace, build_model


@pytest.fixture(scope="module")
def learnable_dataset():
    """Big enough to learn on, small enough for CI: ~70% accuracy after a
    dozen epochs for the seed net."""
    return make_synthetic_dataset("it-c10", 10, n_train=1000, n_test=300,
                                  image_size=12, noise_sigma=0.6, seed=5)


@pytest.fixture(scope="module")
def trained_seed(learnable_dataset):
    space = SearchSpace("cifar10")
    rng = np.random.default_rng(0)
    model = build_model(space.seed_arch(), 10, rng=rng)
    steps = 14 * (1000 // 64 + 1)
    trainer = Trainer(model, SGD(model.parameters(),
                                 CosineDecayLR(0.08, steps)))
    trainer.fit(learnable_dataset.x_train, learnable_dataset.y_train,
                epochs=14, batch_size=64, rng=rng)
    _, accuracy = evaluate_classifier(model, learnable_dataset.x_test,
                                      learnable_dataset.y_test)
    return model, accuracy, space


class TestQuantizationMechanisms:
    def test_training_learns_task(self, trained_seed):
        _, accuracy, _ = trained_seed
        assert accuracy > 0.45  # chance is 0.10

    def test_ptq_degradation_monotone_in_bits(self, trained_seed,
                                              learnable_dataset):
        """Lower bitwidths lose more accuracy under PTQ — the effect that
        motivates mixed precision."""
        model, fp_accuracy, space = trained_seed
        snapshot = state_dict(model)
        accuracies = {}
        for bits in (8, 6, 4):
            remove_quantizers(model)
            load_state_dict(model, snapshot)
            apply_policy(model, space.seed_policy(bits))
            calibrate(model, learnable_dataset.x_train[:256])
            _, accuracies[bits] = evaluate_classifier(
                model, learnable_dataset.x_test, learnable_dataset.y_test)
        remove_quantizers(model)
        load_state_dict(model, snapshot)
        assert accuracies[8] >= fp_accuracy - 0.05  # 8-bit near lossless
        assert accuracies[4] <= accuracies[8] + 0.02  # 4-bit no better
        # 4-bit PTQ visibly hurts (the paper's core premise)
        assert accuracies[4] < fp_accuracy - 0.02

    def test_qaft_recovers_4bit_accuracy(self, trained_seed,
                                         learnable_dataset):
        """One epoch of QAFT recovers a substantial part of the 4-bit PTQ
        loss — the paper's central claim."""
        model, fp_accuracy, space = trained_seed
        snapshot = state_dict(model)
        remove_quantizers(model)
        load_state_dict(model, snapshot)
        apply_policy(model, space.seed_policy(4))
        calibrate(model, learnable_dataset.x_train[:256])
        _, ptq_accuracy = evaluate_classifier(
            model, learnable_dataset.x_test, learnable_dataset.y_test)
        quantization_aware_finetune(
            model, learnable_dataset.x_train, learnable_dataset.y_train,
            epochs=1, batch_size=64, rng=np.random.default_rng(1))
        _, qaft_accuracy = evaluate_classifier(
            model, learnable_dataset.x_test, learnable_dataset.y_test)
        remove_quantizers(model)
        load_state_dict(model, snapshot)
        assert qaft_accuracy > ptq_accuracy - 0.02
        # recovery: QAFT closes at least part of the PTQ gap on average;
        # require it not to be catastrophically below float
        assert qaft_accuracy > fp_accuracy - 0.15

    def test_mixed_policy_between_homogeneous_sizes(self, trained_seed):
        from repro.quant import model_size_bits
        model, _, space = trained_seed
        rng = np.random.default_rng(3)
        mixed = space.random_policy(rng)
        size_mixed = model_size_bits(model, mixed)
        size_4 = model_size_bits(model, space.seed_policy(4))
        size_8 = model_size_bits(model, space.seed_policy(8))
        assert size_4 <= size_mixed <= size_8


class TestSearchIntegration:
    def test_scores_consistent_with_scalarization(self, learnable_dataset):
        scale = get_scale("unit")
        config = SearchConfig(scale=scale, seed=1)
        dataset = learnable_dataset.subsample(scale.n_train, scale.n_test,
                                              np.random.default_rng(0))
        nas = BOMPNAS(config, dataset)
        result = nas.run(final_training=False)
        for trial in result.trials:
            expected = scalarize(trial.accuracy, trial.size_bits,
                                 config.scalarization)
            assert trial.score == pytest.approx(expected)

    def test_modes_produce_distinct_behaviour(self, learnable_dataset):
        """PTQ and QAFT modes must evaluate the same genome to different
        accuracies at 4 bits, because QAFT fine-tunes after quantization.
        Needs enough training that the model is off chance level."""
        from dataclasses import replace
        from repro.space import MixedPrecisionGenome
        scale = replace(get_scale("unit"), name="it", early_epochs=5,
                        n_train=500, n_test=200, image_size=12,
                        batch_size=64)
        dataset = learnable_dataset.subsample(scale.n_train, scale.n_test,
                                              np.random.default_rng(0))
        accs = {}
        for mode in ("mp_ptq", "mp_qaft"):
            config = SearchConfig(mode=get_mode(mode), scale=scale, seed=1)
            nas = BOMPNAS(config, dataset)
            # 4-bit: coarse enough that QAFT's weight updates are visible
            # (at 8 bits PTQ is lossless and the modes coincide)
            genome = MixedPrecisionGenome(nas.space.seed_arch(),
                                          nas.space.seed_policy(4))
            accs[mode] = nas.evaluate_candidate(genome, 0)[0].accuracy
        assert accs["mp_ptq"] != accs["mp_qaft"]

    def test_full_pipeline_with_final_training(self, learnable_dataset):
        scale = get_scale("unit")
        dataset = learnable_dataset.subsample(scale.n_train, scale.n_test,
                                              np.random.default_rng(0))
        config = SearchConfig(scale=scale, seed=2)
        result = BOMPNAS(config, dataset).run(final_training=True)
        assert result.final_models
        front = result.final_front()
        sizes = [size for _, size in front]
        assert sizes == sorted(sizes)
        assert result.total_gpu_hours() > result.search_gpu_hours()
