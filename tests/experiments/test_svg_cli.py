"""Tests for the SVG renderer and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import SvgScatter, figure_to_svg


class TestSvgScatter:
    def make_plot(self):
        plot = SvgScatter(title="demo")
        plot.add("a", [(10.0, 0.5), (100.0, 0.8)], connect=True)
        plot.add("b", [(20.0, 0.6)], marker="square")
        return plot

    def test_renders_valid_xml(self):
        import xml.etree.ElementTree as ET
        markup = self.make_plot().render()
        root = ET.fromstring(markup)
        assert root.tag.endswith("svg")

    def test_contains_series_names_and_markers(self):
        markup = self.make_plot().render()
        assert ">a</text>" in markup
        assert ">b</text>" in markup
        assert "<circle" in markup
        assert "<rect" in markup and "<path" in markup  # square + line

    def test_log_axis_rejects_nonpositive(self):
        plot = SvgScatter()
        plot.add("bad", [(0.0, 0.5)])
        with pytest.raises(ValueError):
            plot.render()

    def test_empty_rejects(self):
        with pytest.raises(ValueError):
            SvgScatter().render()

    def test_unknown_marker_rejected(self):
        with pytest.raises(ValueError):
            SvgScatter().add("x", [(1.0, 1.0)], marker="star")

    def test_title_escaped(self):
        plot = SvgScatter(title="a < b & c")
        plot.add("s", [(1.0, 0.5)])
        markup = plot.render()
        assert "a &lt; b &amp; c" in markup

    def test_figure_to_svg_scatter_form(self, tmp_path):
        data = {
            "early_candidates": [(10.0, 0.3)],
            "late_candidates": [(20.0, 0.5)],
            "final_models": [(15.0, 0.55)],
            "seed_point": (0.4, 76.0),
            "equal_score_contour": [(5.0, 0.2), (50.0, 0.6)],
        }
        path = tmp_path / "fig.svg"
        markup = figure_to_svg(data, "Figure 2", path=str(path))
        assert path.exists()
        assert "seed (8-bit MobileNetV2)" in markup

    def test_figure_to_svg_fronts_form(self):
        data = {"fronts": {"A": [(0.5, 10.0), (0.8, 50.0)], "B": []}}
        markup = figure_to_svg(data, "Figure 5")
        assert ">A</text>" in markup
        assert ">B</text>" not in markup  # empty front skipped


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["search", "--mode", "mp_ptq",
                                  "--scale", "unit"])
        assert args.command == "search"
        assert args.mode == "mp_ptq"

    def test_space_command(self, capsys):
        assert main(["space", "--dataset", "cifar100"]) == 0
        out = capsys.readouterr().out
        assert "architectures" in out
        assert "1.3" in out  # CIFAR-100 width menu

    def test_report_table1(self, capsys):
        assert main(["report", "table1"]) == 0
        assert "23 slots" in capsys.readouterr().out

    def test_search_and_inspect_roundtrip(self, tmp_path, capsys):
        out_path = str(tmp_path / "result.json")
        code = main(["search", "--scale", "unit", "--seed", "1",
                     "--no-final-training", "--quiet",
                     "--out", out_path])
        assert code == 0
        assert "result written" in capsys.readouterr().out
        assert main(["inspect", out_path]) == 0
        out = capsys.readouterr().out
        assert "candidate Pareto front" in out

    def test_search_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            main(["search", "--mode", "quantum"])
