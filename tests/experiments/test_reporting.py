"""Tests for text rendering of tables and scatter plots."""

import pytest

from repro.experiments import (ascii_scatter, bitwidth_histogram,
                               format_front, format_table)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["b", 22.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text
        assert "22.25" in text
        # all rows share the same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestAsciiScatter:
    def test_renders_points_and_legend(self):
        text = ascii_scatter({"s1": [(10.0, 0.5), (100.0, 0.9)],
                              "s2": [(20.0, 0.7)]})
        assert "o=s1" in text
        assert "x=s2" in text
        assert text.count("o") >= 2

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": [(0.0, 0.5)]}, log_x=True)

    def test_linear_axis_allows_zero(self):
        text = ascii_scatter({"s": [(0.0, 0.5), (5.0, 0.7)]}, log_x=False)
        assert "s" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": []})

    def test_single_point(self):
        text = ascii_scatter({"s": [(10.0, 0.5)]})
        assert "o" in text


class TestFrontAndHistogram:
    def test_format_front(self):
        text = format_front([(0.5, 10.0), (0.9, 100.0)], "front")
        assert text.startswith("front:")
        assert "10.00kB" in text

    def test_bitwidth_histogram_counts(self):
        assignments = [{"stem": 4, "conv2": 8}, {"stem": 4, "conv2": 6}]
        text = bitwidth_histogram(assignments, [4, 5, 6, 7, 8])
        lines = [l for l in text.splitlines() if l.startswith("stem")]
        assert lines and "2" in lines[0]  # both models chose 4 bits for stem

    def test_bitwidth_histogram_empty(self):
        with pytest.raises(ValueError):
            bitwidth_histogram([], [4, 8])
