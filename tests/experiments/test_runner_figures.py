"""Tests for the experiment runner (caching) and figure/table generators.

These run the full generators at ``unit`` scale — slow-ish but they cover
the exact code paths the benchmark harness exercises.
"""

import pytest

from repro.experiments import (ExperimentContext, fig2, fig3, fig5, fig6,
                               ptq_post_qaft_front, seed_point, table1,
                               table3, table4)


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    cache = tmp_path_factory.mktemp("bomp_cache")
    return ExperimentContext("unit", seed=11, cache_dir=cache)


class TestContext:
    def test_dataset_memoized(self, ctx):
        assert ctx.dataset("cifar10") is ctx.dataset("cifar10")
        assert ctx.dataset("cifar10").num_classes == 10
        assert ctx.dataset("cifar100").num_classes == 100

    def test_config_uses_paper_references(self, ctx):
        assert ctx.config("cifar10", "mp_qaft").scalarization \
            .ref_model_size == 8.0
        assert ctx.config("cifar100", "mp_qaft").scalarization \
            .ref_model_size == 6.0

    def test_search_memoized_in_memory(self, ctx):
        a = ctx.run_search("cifar10", "mp_qaft", final_training=False)
        b = ctx.run_search("cifar10", "mp_qaft", final_training=False)
        assert a is b

    def test_disk_cache_roundtrip(self, ctx):
        result = ctx.run_search("cifar10", "mp_qaft", final_training=False)
        fresh = ExperimentContext("unit", seed=11,
                                  cache_dir=ctx.cache_dir)
        reloaded = fresh.run_search("cifar10", "mp_qaft",
                                    final_training=False)
        assert len(reloaded.trials) == len(result.trials)
        assert reloaded.trials[0].genome == result.trials[0].genome

    def test_final_run_supersedes_nonfinal(self, ctx):
        full = ctx.run_search("cifar10", "mp_qaft", final_training=True)
        quick = ctx.run_search("cifar10", "mp_qaft", final_training=False)
        # the quick request may be served by the richer cached run
        assert len(quick.trials) == len(full.trials)

    def test_seed_point_cached(self, ctx):
        a = seed_point(ctx, "cifar10")
        b = seed_point(ctx, "cifar10")
        assert a == b
        assert 0.0 <= a[0] <= 1.0
        assert a[1] == pytest.approx(76.08, abs=0.2)


class TestGenerators:
    def test_table1_standalone(self):
        data, text = table1()
        assert "architectures" in text
        assert data["cifar10"]["num_policies"] == 5 ** 23

    def test_fig2_series_complete(self, ctx):
        data, text = fig2(ctx)
        assert set(data) >= {"early_candidates", "late_candidates",
                             "candidate_front", "final_models",
                             "seed_point", "equal_score_contour"}
        assert "Fig. 2" in text

    def test_fig3_assignments(self, ctx):
        data, text = fig3(ctx)
        assert data["assignments"]
        assert data["bit_choices"] == [4, 5, 6, 7, 8]

    def test_fig5_fronts(self, ctx):
        data, text = fig5(ctx)
        assert set(data["fronts"]) == {"MP PTQ-NAS", "MP PTQ-NAS (QAFT)",
                                       "MP QAFT-NAS"}
        assert set(data["hypervolumes"]) == set(data["fronts"])

    def test_fig6_sampling_stats(self, ctx):
        data, text = fig6(ctx)
        assert data["mean_sampled_size"] > 0
        assert data["qaft_mean_sampled_size"] > 0

    def test_ptq_post_qaft_front_cached(self, ctx):
        a = ptq_post_qaft_front(ctx, "cifar10")
        b = ptq_post_qaft_front(ctx, "cifar10")
        assert a == b
        assert a  # non-empty

    def test_table3_rows(self, ctx):
        data, text = table3(ctx)
        assert ("bomp", "cifar10") in data["ours"]
        assert "BOMP-NAS (ours, simulated)" in text
        assert "552" in text  # muNAS literature row

    def test_table4_all_cells(self, ctx):
        data, text = table4(ctx)
        assert len(data["ours"]) == 8
        assert all(hours > 0 for hours in data["ours"].values())
