"""Tests for the dataset container and synthetic CIFAR surrogates."""

import numpy as np
import pytest

from repro.data import (Dataset, load_dataset, make_synthetic_dataset,
                        shift_flip_augment, synthetic_cifar10,
                        synthetic_cifar100)


class TestDataset:
    def test_validation(self, rng):
        x = rng.normal(size=(10, 8, 8, 3)).astype(np.float32)
        y = rng.integers(0, 5, 10)
        with pytest.raises(ValueError):
            Dataset("bad", x, y[:-1], x, y, 5)
        with pytest.raises(ValueError):
            Dataset("bad", x, y, x, y, 1)
        with pytest.raises(ValueError):
            Dataset("bad", x, np.full(10, 7), x, y, 5)  # label out of range

    def test_subsample(self, tiny_dataset, rng):
        sub = tiny_dataset.subsample(20, 10, rng)
        assert sub.n_train == 20
        assert sub.n_test == 10
        assert sub.num_classes == tiny_dataset.num_classes

    def test_subsample_too_large(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            tiny_dataset.subsample(10 ** 6, 10, rng)

    def test_batches_cover_everything(self, tiny_dataset, rng):
        total = 0
        for xb, yb in tiny_dataset.batches(32, rng):
            assert xb.shape[0] == yb.shape[0]
            total += xb.shape[0]
        assert total == tiny_dataset.n_train

    def test_image_shape(self, tiny_dataset, unit_scale):
        assert tiny_dataset.image_shape == (unit_scale.image_size,
                                            unit_scale.image_size, 3)


class TestSynthetic:
    def test_shapes_and_ranges(self):
        ds = make_synthetic_dataset("t", 10, 100, 40, image_size=12, seed=0)
        assert ds.x_train.shape == (100, 12, 12, 3)
        assert ds.x_train.dtype == np.float32
        assert ds.y_train.min() >= 0
        assert ds.y_train.max() < 10
        assert np.isfinite(ds.x_train).all()

    def test_deterministic_per_seed(self):
        a = make_synthetic_dataset("t", 10, 50, 20, seed=1)
        b = make_synthetic_dataset("t", 10, 50, 20, seed=1)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = make_synthetic_dataset("t", 10, 50, 20, seed=1)
        b = make_synthetic_dataset("t", 10, 50, 20, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_classes_statistically_distinct(self):
        """Nearest-class-mean classification on clean data must beat chance
        by a wide margin — the task carries real class signal."""
        ds = make_synthetic_dataset("t", 5, 600, 300, image_size=10,
                                    noise_sigma=0.5, label_noise=0.0,
                                    seed=3)
        means = np.stack([ds.x_train[ds.y_train == c].mean(axis=0)
                          for c in range(5)])
        flat_test = ds.x_test.reshape(len(ds.x_test), -1)
        flat_means = means.reshape(5, -1)
        distances = ((flat_test[:, None, :]
                      - flat_means[None, :, :]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == ds.y_test).mean()
        assert accuracy > 0.5  # chance is 0.2

    def test_label_noise_bounds_accuracy(self):
        ds = make_synthetic_dataset("t", 4, 400, 100, label_noise=0.5,
                                    noise_sigma=0.1, seed=0)
        # with 50% label noise, at most ~62% of labels match the clean
        # class structure; verify noise was actually applied by checking
        # nearest-mean accuracy drops
        means = np.stack([ds.x_train[ds.y_train == c].mean(axis=0)
                          for c in range(4)])
        flat = ds.x_train.reshape(len(ds.x_train), -1)
        predictions = ((flat[:, None, :]
                        - means.reshape(4, -1)[None, :, :]) ** 2).sum(
            axis=2).argmin(axis=1)
        assert (predictions == ds.y_train).mean() < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            make_synthetic_dataset("t", 1, 10, 10)
        with pytest.raises(ValueError):
            make_synthetic_dataset("t", 10, 0, 10)
        with pytest.raises(ValueError):
            make_synthetic_dataset("t", 10, 10, 10, image_size=2)
        with pytest.raises(ValueError):
            make_synthetic_dataset("t", 10, 10, 10, label_noise=1.0)

    def test_cifar_surrogates(self):
        c10 = synthetic_cifar10(n_train=50, n_test=20, image_size=8)
        assert c10.num_classes == 10
        c100 = synthetic_cifar100(n_train=50, n_test=20, image_size=8)
        assert c100.num_classes == 100

    def test_load_dataset_by_name(self):
        ds = load_dataset("cifar10", n_train=30, n_test=10, image_size=8)
        assert ds.num_classes == 10
        with pytest.raises(ValueError):
            load_dataset("svhn")


class TestAugmentation:
    def test_preserves_shape_and_input(self, rng):
        augment = shift_flip_augment(max_shift=2)
        x = rng.normal(size=(8, 10, 10, 3)).astype(np.float32)
        original = x.copy()
        out = augment(x, rng)
        assert out.shape == x.shape
        np.testing.assert_array_equal(x, original)  # input not mutated

    def test_changes_some_images(self, rng):
        augment = shift_flip_augment(max_shift=2)
        x = rng.normal(size=(16, 10, 10, 3)).astype(np.float32)
        out = augment(x, rng)
        assert not np.array_equal(out, x)

    def test_noop_config_is_identity(self, rng):
        augment = shift_flip_augment(max_shift=0, flip=False)
        x = rng.normal(size=(4, 6, 6, 3)).astype(np.float32)
        np.testing.assert_array_equal(augment(x, rng), x)

    def test_pixel_multiset_preserved(self, rng):
        """Shift (roll) and flip permute pixels, never change values."""
        augment = shift_flip_augment(max_shift=3)
        x = rng.normal(size=(4, 8, 8, 1)).astype(np.float32)
        out = augment(x, rng)
        for i in range(4):
            np.testing.assert_allclose(np.sort(out[i].ravel()),
                                       np.sort(x[i].ravel()))

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            shift_flip_augment(max_shift=-1)
