"""Tests for the BOMP-NAS search loop itself."""

import numpy as np
import pytest

from repro.nas import BOMPNAS, SearchConfig, get_mode
from repro.space import MixedPrecisionGenome


@pytest.fixture
def nas(unit_config, tiny_dataset):
    return BOMPNAS(unit_config, tiny_dataset)


class TestEvaluateCandidate:
    def test_trial_fields_populated(self, nas, c10_space, rng):
        genome = c10_space.random_genome(rng)
        results = nas.evaluate_candidate(genome, index=0)
        assert len(results) == 1
        trial = results[0]
        assert 0.0 <= trial.accuracy <= 1.0
        assert 0.0 <= trial.fp_accuracy <= 1.0
        assert trial.size_bits > 0
        assert trial.size_kb == pytest.approx(trial.size_bits / 8192)
        assert trial.macs > 0
        assert trial.params > 0
        assert trial.gpu_hours > 0
        assert np.isfinite(trial.score)

    def test_quantized_size_below_float(self, nas, c10_space, rng):
        genome = c10_space.random_genome(rng)
        trial = nas.evaluate_candidate(genome, index=0)[0]
        # quantized deployed size is far below the float32 parameter size
        assert trial.size_bits < trial.params * 32

    def test_ptq_mode_skips_qaft(self, tiny_dataset, unit_scale):
        config = SearchConfig(mode=get_mode("mp_ptq"), scale=unit_scale)
        nas = BOMPNAS(config, tiny_dataset)
        genome = nas.space.random_genome(nas.rng)
        trial = nas.evaluate_candidate(genome, index=0)[0]
        ptq_hours = trial.gpu_hours
        config_qaft = SearchConfig(mode=get_mode("mp_qaft"),
                                   scale=unit_scale)
        nas_qaft = BOMPNAS(config_qaft, tiny_dataset)
        trial_qaft = nas_qaft.evaluate_candidate(genome, index=0)[0]
        assert trial_qaft.gpu_hours > ptq_hours

    def test_fp_mode_scores_against_8bit_size(self, tiny_dataset,
                                              unit_scale):
        config = SearchConfig(mode=get_mode("fp_nas"), scale=unit_scale)
        nas = BOMPNAS(config, tiny_dataset)
        genome = nas.space.seed_genome()
        trial = nas.evaluate_candidate(genome, index=0)[0]
        assert trial.accuracy == trial.fp_accuracy
        assert trial.size_kb == pytest.approx(76.08, abs=0.2)

    def test_policies_per_trial_extension(self, tiny_dataset, unit_scale):
        config = SearchConfig(mode=get_mode("mp_qaft"), scale=unit_scale,
                              policies_per_trial=3)
        nas = BOMPNAS(config, tiny_dataset)
        genome = nas.space.random_genome(nas.rng)
        results = nas.evaluate_candidate(genome, index=0)
        assert len(results) == 3
        # all share the architecture, policies differ
        archs = {r.genome.arch.as_tuple() for r in results}
        assert len(archs) == 1
        policies = {r.genome.policy for r in results}
        assert len(policies) >= 2
        # re-used early training: follow-up policies cost no extra FP epochs
        assert results[1].gpu_hours < results[0].gpu_hours


class TestModes:
    def test_fixed_modes_pin_policy(self, tiny_dataset, unit_scale):
        for mode_name, bits in (("fixed8_ptq", 8), ("fixed4_qaft", 4)):
            config = SearchConfig(mode=get_mode(mode_name),
                                  scale=unit_scale)
            nas = BOMPNAS(config, tiny_dataset)
            genome = nas._sample_genome(nas.rng)
            assert set(genome.policy.as_dict().values()) == {bits}
            mutant = nas._mutate_genome(genome, nas.rng)
            assert set(mutant.policy.as_dict().values()) == {bits}

    def test_mp_mode_samples_mixed(self, nas):
        bits = set()
        for _ in range(5):
            genome = nas._sample_genome(nas.rng)
            bits |= set(genome.policy.as_dict().values())
        assert len(bits) > 1

    def test_class_count_mismatch_rejected(self, unit_scale, tiny_dataset):
        config = SearchConfig(dataset="cifar100", scale=unit_scale)
        with pytest.raises(ValueError):
            BOMPNAS(config, tiny_dataset)  # 10-class data, 100-class config


class TestRun:
    def test_full_run_structure(self, nas):
        result = nas.run(final_training=True)
        assert len(result.trials) == nas.config.scale.trials
        assert [t.index for t in result.trials] == \
            list(range(len(result.trials)))
        assert result.final_models
        # every final model maps back to a Pareto trial
        pareto_indices = {t.index for t in result.pareto_trials()}
        for model in result.final_models:
            assert model.trial_index in pareto_indices

    def test_first_trial_is_seed_arch(self, nas):
        result = nas.run(final_training=False)
        assert result.trials[0].genome.arch == nas.space.seed_arch()

    def test_progress_callback(self, unit_config, tiny_dataset):
        seen = []
        nas = BOMPNAS(unit_config, tiny_dataset,
                      progress=lambda t: seen.append(t.index))
        nas.run(final_training=False)
        assert seen == list(range(unit_config.scale.trials))

    def test_deterministic_given_seed(self, unit_config, tiny_dataset):
        r1 = BOMPNAS(unit_config, tiny_dataset).run(final_training=False)
        r2 = BOMPNAS(unit_config, tiny_dataset).run(final_training=False)
        assert [t.genome for t in r1.trials] == \
            [t.genome for t in r2.trials]
        assert [t.score for t in r1.trials] == \
            pytest.approx([t.score for t in r2.trials])

    def test_cifar100_run(self, tiny_dataset_100, unit_scale):
        config = SearchConfig(dataset="cifar100", scale=unit_scale, seed=2)
        result = BOMPNAS(config, tiny_dataset_100).run(final_training=False)
        assert len(result.trials) == unit_scale.trials
