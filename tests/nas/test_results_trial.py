"""Tests for result containers, trial records and JSON persistence."""

import numpy as np
import pytest

from repro.nas import (BOMPNAS, SearchResult, TrialResult, genome_from_dict,
                       genome_to_dict)


@pytest.fixture(scope="module")
def finished_run(unit_scale):
    from repro.data import make_synthetic_dataset
    from repro.nas import SearchConfig
    dataset = make_synthetic_dataset(
        "tiny", 10, unit_scale.n_train, unit_scale.n_test,
        image_size=unit_scale.image_size, seed=9)
    config = SearchConfig(scale=unit_scale, seed=5)
    return BOMPNAS(config, dataset).run(final_training=True)


class TestGenomeSerialization:
    def test_roundtrip(self, c10_space, rng):
        genome = c10_space.random_genome(rng)
        recovered = genome_from_dict(genome_to_dict(genome))
        assert recovered == genome

    def test_dict_is_json_safe(self, c10_space, rng):
        import json
        payload = genome_to_dict(c10_space.random_genome(rng))
        json.dumps(payload)  # must not raise


class TestSearchResult:
    def test_pareto_trials_nondominated(self, finished_run):
        from repro.bo import dominates
        pareto = finished_run.pareto_trials()
        assert pareto
        for a in pareto:
            for b in pareto:
                if a is not b:
                    assert not dominates((a.accuracy, a.size_kb),
                                         (b.accuracy, b.size_kb))

    def test_score_trajectory_monotone(self, finished_run):
        trajectory = finished_run.score_trajectory()
        assert len(trajectory) == len(finished_run.trials)
        assert all(a <= b for a, b in zip(trajectory, trajectory[1:]))
        assert trajectory[-1] == finished_run.best_trial().score

    def test_cost_decomposition(self, finished_run):
        assert finished_run.total_gpu_hours() == pytest.approx(
            finished_run.search_gpu_hours()
            + finished_run.final_training_gpu_hours())
        assert finished_run.search_gpu_hours() > 0

    def test_summary_renders(self, finished_run):
        text = finished_run.summary()
        assert "trials" in text
        assert "GPU-hours" in text

    def test_json_roundtrip(self, finished_run, tmp_path):
        path = str(tmp_path / "result.json")
        finished_run.save(path)
        loaded = SearchResult.load(path)
        assert len(loaded.trials) == len(finished_run.trials)
        assert loaded.config.mode.name == finished_run.config.mode.name
        assert loaded.config.scale.name == finished_run.config.scale.name
        for a, b in zip(loaded.trials, finished_run.trials):
            assert a.genome == b.genome
            assert a.score == pytest.approx(b.score)
        assert len(loaded.final_models) == len(finished_run.final_models)
        for a, b in zip(loaded.final_models, finished_run.final_models):
            assert a.genome == b.genome
            assert a.accuracy == pytest.approx(b.accuracy)

    def test_trial_dict_roundtrip(self, finished_run):
        trial = finished_run.trials[0]
        recovered = TrialResult.from_dict(trial.as_dict())
        assert recovered.genome == trial.genome
        assert recovered.score == pytest.approx(trial.score)

    def test_timing_fields_roundtrip(self, finished_run):
        trial = finished_run.trials[0]
        assert trial.wall_time_s is not None
        assert set(trial.phase_times) == {"train", "ptq", "qaft", "eval"}
        recovered = TrialResult.from_dict(trial.as_dict())
        assert recovered.wall_time_s == trial.wall_time_s
        assert recovered.phase_times == trial.phase_times

    def test_from_dict_accepts_pre_timing_records(self, finished_run):
        """Cache files written before the timing fields must still load."""
        legacy = finished_run.trials[0].as_dict()
        del legacy["wall_time_s"]
        del legacy["phase_times"]
        recovered = TrialResult.from_dict(legacy)
        assert recovered.wall_time_s is None
        assert recovered.phase_times is None
        assert recovered.genome == finished_run.trials[0].genome

    def test_fronts_consistent(self, finished_run):
        candidate_front = finished_run.candidate_front()
        assert candidate_front
        sizes = [size for _, size in candidate_front]
        assert sizes == sorted(sizes)

    def test_best_trial_empty_raises(self, finished_run):
        empty = SearchResult(config=finished_run.config, trials=[])
        with pytest.raises(ValueError):
            empty.best_trial()


class TestFinalModels:
    def test_final_models_deployable(self, finished_run):
        for model in finished_run.final_models:
            assert 0.0 <= model.accuracy <= 1.0
            assert model.size_kb > 0
            assert model.gpu_hours > 0
            assert model.candidate_size_kb is not None

    def test_final_size_matches_candidate_size(self, finished_run):
        """Final training does not change the architecture or policy, so
        deployed size must equal the in-search size."""
        for model in finished_run.final_models:
            assert model.size_kb == pytest.approx(model.candidate_size_kb,
                                                  rel=1e-6)
