"""Tests for search configs, modes, scale presets and the cost model."""

import pytest

from repro.nas import (SCALE_PRESETS, SEARCH_MODES, SEED_MACS_32, CostModel,
                       SearchConfig, get_mode, get_scale)


class TestModes:
    def test_all_five_modes_exist(self):
        assert set(SEARCH_MODES) == {"mp_qaft", "mp_ptq", "fixed8_ptq",
                                     "fixed4_qaft", "fp_nas"}

    def test_bomp_mode_shape(self):
        mode = get_mode("mp_qaft")
        assert mode.search_policy
        assert mode.quantize_in_loop
        assert mode.qaft_in_loop
        assert mode.fixed_bits is None

    def test_baseline_mode_shape(self):
        mode = get_mode("fp_nas")
        assert not mode.quantize_in_loop
        assert mode.fixed_bits == 8

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            get_mode("nas_only")

    def test_mode_invariants_enforced(self):
        from repro.nas.config import SearchMode
        with pytest.raises(ValueError):
            SearchMode("bad", search_policy=True, quantize_in_loop=True,
                       qaft_in_loop=False, fixed_bits=8)
        with pytest.raises(ValueError):
            SearchMode("bad", search_policy=False, quantize_in_loop=False,
                       qaft_in_loop=True, fixed_bits=8)


class TestScales:
    def test_paper_scale_matches_protocol(self):
        paper = get_scale("paper")
        assert paper.trials == 100
        assert paper.early_epochs == 20
        assert paper.qaft_epochs == 1
        assert paper.final_epochs == 200
        assert paper.final_qaft_epochs == 5
        assert paper.n_train == 50000

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("BOMP_SCALE", raising=False)
        assert get_scale().name == "smoke"
        monkeypatch.setenv("BOMP_SCALE", "unit")
        assert get_scale().name == "unit"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_all_presets_valid(self):
        for preset in SCALE_PRESETS.values():
            assert preset.trials > 0
            assert preset.n_train > 0


class TestSearchConfig:
    def test_with_mode(self):
        config = SearchConfig().with_mode("mp_ptq")
        assert config.mode.name == "mp_ptq"

    def test_policies_per_trial_needs_mp(self):
        with pytest.raises(ValueError):
            SearchConfig(mode=get_mode("fixed8_ptq"), policies_per_trial=2)

    def test_describe(self):
        assert "mp_qaft" in SearchConfig().describe()

    def test_invalid_dataset(self):
        with pytest.raises(ValueError):
            SearchConfig(dataset="mnist")


class TestCostModel:
    def test_calibration_reproduces_table4_ptq_row(self):
        """100 trials x 20 epochs of the seed net on paper-scale CIFAR-10
        must cost ~10 GPU-hours (8-bit PTQ-aware NAS row of Table IV)."""
        cost = CostModel()
        per_trial = cost.trial_hours(SEED_MACS_32, 50000, early_epochs=20,
                                     qaft_epochs=0)
        total = 100 * per_trial
        assert total == pytest.approx(10.0, rel=0.02)

    def test_qaft_epoch_overhead_reproduces_12n(self):
        """Adding 1 QAFT epoch at the default overhead lands on ~12N."""
        cost = CostModel()
        per_trial = cost.trial_hours(SEED_MACS_32, 50000, early_epochs=20,
                                     qaft_epochs=1)
        assert 100 * per_trial == pytest.approx(12.0, rel=0.02)

    def test_epoch_hours_linear_in_macs(self):
        cost = CostModel()
        assert cost.epoch_hours(2000, 100) == \
            pytest.approx(2 * cost.epoch_hours(1000, 100))

    def test_qaft_overhead_applied(self):
        cost = CostModel(qaft_overhead=3.0)
        fp = cost.epoch_hours(1000, 100)
        qa = cost.epoch_hours(1000, 100, quantization_aware=True)
        assert qa == pytest.approx(3 * fp)

    def test_final_training_hours(self):
        cost = CostModel()
        hours = cost.final_training_hours(SEED_MACS_32, 50000, 200, 5)
        assert hours > cost.final_training_hours(SEED_MACS_32, 50000, 200, 0)

    def test_normalization_identity_at_paper_scale(self):
        cost = CostModel()
        assert cost.normalize_to_paper_protocol(
            12.0, trials=100, early_epochs=20, n_train=50000,
            image_size=32) == pytest.approx(12.0)

    def test_normalization_scales_up_reduced_runs(self):
        cost = CostModel()
        normalized = cost.normalize_to_paper_protocol(
            1.0, trials=10, early_epochs=2, n_train=500, image_size=16)
        assert normalized == pytest.approx(
            1.0 * 10 * 10 * 100 * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(qaft_overhead=0.5)
        with pytest.raises(ValueError):
            CostModel().epoch_hours(0, 100)
        with pytest.raises(ValueError):
            CostModel().trial_hours(100, 100, early_epochs=-1)
