"""Tests for final training of Pareto-optimal candidates."""

import pytest

from repro.nas import BOMPNAS, SearchConfig, get_mode
from repro.nas.final_training import train_final_model, train_final_models


@pytest.fixture(scope="module")
def searched(unit_scale):
    from repro.data import make_synthetic_dataset
    dataset = make_synthetic_dataset(
        "ft", 10, unit_scale.n_train, unit_scale.n_test,
        image_size=unit_scale.image_size, seed=8)
    config = SearchConfig(scale=unit_scale, seed=3)
    nas = BOMPNAS(config, dataset)
    result = nas.run(final_training=False)
    return nas, result


class TestFinalTraining:
    def test_final_model_fields(self, searched):
        nas, result = searched
        trial = result.pareto_trials()[0]
        final = train_final_model(nas, trial)
        assert final.trial_index == trial.index
        assert final.genome == trial.genome
        assert 0.0 <= final.accuracy <= 1.0
        assert final.size_bits > 0
        assert final.gpu_hours > 0
        assert final.candidate_accuracy == trial.accuracy

    def test_qaft_mode_applies_final_qaft_cost(self, searched):
        nas, result = searched
        trial = result.pareto_trials()[0]
        with_qaft = train_final_model(nas, trial, force_qaft=True)
        without = train_final_model(nas, trial, force_qaft=False)
        assert with_qaft.gpu_hours > without.gpu_hours

    def test_force_qaft_false_keeps_size(self, searched):
        nas, result = searched
        trial = result.pareto_trials()[0]
        final = train_final_model(nas, trial, force_qaft=False)
        assert final.size_kb == pytest.approx(trial.size_kb, rel=1e-6)

    def test_train_all(self, searched):
        nas, result = searched
        finals = train_final_models(nas, result.pareto_trials())
        assert len(finals) == len(result.pareto_trials())

    def test_fp_baseline_deploys_8bit(self, unit_scale):
        from repro.data import make_synthetic_dataset
        dataset = make_synthetic_dataset(
            "ft2", 10, unit_scale.n_train, unit_scale.n_test,
            image_size=unit_scale.image_size, seed=8)
        config = SearchConfig(mode=get_mode("fp_nas"), scale=unit_scale,
                              seed=3)
        nas = BOMPNAS(config, dataset)
        result = nas.run(final_training=False)
        final = train_final_model(nas, result.pareto_trials()[0])
        # deployed at homogeneous 8-bit: size matches the trial's 8-bit
        # scoring size
        assert final.size_kb == pytest.approx(
            result.pareto_trials()[0].size_kb, rel=1e-6)
