"""Tests for kernels and the Gaussian process surrogate."""

import numpy as np
import pytest

from repro.bo import (RBF, Exponential, GaussianProcess, Matern32, Matern52,
                      make_kernel)


def l1_pairwise(a, b=None):
    b = a if b is None else b
    return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)


class TestKernels:
    @pytest.mark.parametrize("kernel_cls",
                             [Matern52, Matern32, Exponential, RBF])
    def test_one_at_zero_distance(self, kernel_cls):
        kernel = kernel_cls(length_scale=0.7)
        assert kernel(np.zeros((2, 2)))[0, 0] == pytest.approx(1.0)

    @pytest.mark.parametrize("kernel_cls",
                             [Matern52, Matern32, Exponential, RBF])
    def test_monotone_decreasing(self, kernel_cls):
        kernel = kernel_cls(length_scale=1.0)
        d = np.linspace(0, 5, 50).reshape(1, -1)
        values = kernel(d)[0]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert (values > 0).all()

    def test_length_scale_controls_decay(self):
        d = np.array([[1.0]])
        short = Matern52(length_scale=0.1)(d)[0, 0]
        long = Matern52(length_scale=10.0)(d)[0, 0]
        assert short < long

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            Matern52()(np.array([[-1.0]]))

    def test_factory(self):
        assert isinstance(make_kernel("matern52"), Matern52)
        assert isinstance(make_kernel("rbf", length_scale=2.0), RBF)
        with pytest.raises(ValueError):
            make_kernel("linear")

    def test_invalid_length_scale(self):
        with pytest.raises(ValueError):
            Matern52(length_scale=0.0)


class TestGaussianProcess:
    def make_gp(self, noise=1e-6):
        return GaussianProcess(Matern52(length_scale=1.0), l1_pairwise,
                               noise=noise)

    def test_interpolates_training_points(self, rng):
        gp = self.make_gp()
        x = rng.uniform(0, 1, size=(8, 3))
        y = rng.normal(size=8)
        gp.fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-2)
        assert (std < 0.2).all()

    def test_uncertainty_grows_away_from_data(self, rng):
        gp = self.make_gp()
        x = rng.uniform(0, 0.2, size=(6, 2))
        gp.fit(x, rng.normal(size=6))
        _, std_near = gp.predict(x[:1] + 0.01)
        _, std_far = gp.predict(np.full((1, 2), 5.0))
        assert std_far[0] > std_near[0]

    def test_mean_reverts_to_prior_far_away(self, rng):
        gp = self.make_gp()
        x = rng.uniform(0, 0.2, size=(6, 2))
        y = rng.normal(loc=3.0, size=6)
        gp.fit(x, y)
        mean_far, _ = gp.predict(np.full((1, 2), 50.0))
        assert mean_far[0] == pytest.approx(y.mean(), abs=0.5)

    def test_single_observation(self):
        gp = self.make_gp()
        gp.fit(np.zeros((1, 2)), np.array([1.5]))
        mean, _ = gp.predict(np.zeros((1, 2)))
        assert mean[0] == pytest.approx(1.5, abs=1e-3)

    def test_constant_targets_handled(self, rng):
        gp = self.make_gp()
        x = rng.uniform(size=(5, 2))
        gp.fit(x, np.full(5, 2.0))
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, 2.0, atol=1e-6)

    def test_refit_replaces_data(self, rng):
        gp = self.make_gp()
        gp.fit(rng.uniform(size=(4, 2)), rng.normal(size=4))
        x2 = rng.uniform(size=(6, 2))
        y2 = rng.normal(size=6)
        gp.fit(x2, y2)
        assert gp.n_observations == 6
        mean, _ = gp.predict(x2)
        np.testing.assert_allclose(mean, y2, atol=5e-2)

    def test_jitter_ladder_rescues_duplicates(self, rng):
        gp = self.make_gp(noise=0.0)
        x = np.zeros((4, 2))  # identical points: singular Gram
        y = np.array([1.0, 1.1, 0.9, 1.0])
        gp.fit(x, y)  # must not raise
        mean, _ = gp.predict(np.zeros((1, 2)))
        assert np.isfinite(mean[0])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            self.make_gp().predict(np.zeros((1, 2)))

    def test_shape_validation(self, rng):
        gp = self.make_gp()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        gp.fit(rng.uniform(size=(3, 2)), rng.normal(size=3))
        with pytest.raises(ValueError):
            gp.predict(np.zeros(2))

    def test_std_skippable(self, rng):
        gp = self.make_gp()
        gp.fit(rng.uniform(size=(3, 2)), rng.normal(size=3))
        mean, std = gp.predict(rng.uniform(size=(2, 2)), return_std=False)
        np.testing.assert_array_equal(std, 0.0)
