"""Tests for Pareto-front utilities."""

import pytest

from repro.bo import (best_accuracy_under, dominates,
                      front_dominates_at_size, hypervolume, pareto_front,
                      pareto_indices)


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates((0.9, 10.0), (0.8, 20.0))

    def test_better_one_equal_other(self):
        assert dominates((0.9, 10.0), (0.8, 10.0))
        assert dominates((0.9, 10.0), (0.9, 20.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((0.9, 10.0), (0.9, 10.0))

    def test_tradeoff_points_incomparable(self):
        assert not dominates((0.9, 20.0), (0.8, 10.0))
        assert not dominates((0.8, 10.0), (0.9, 20.0))


class TestParetoIndices:
    def test_extracts_non_dominated(self):
        acc = [0.5, 0.9, 0.7, 0.6]
        size = [10, 100, 20, 50]
        front = pareto_indices(acc, size)
        assert set(front) == {0, 1, 2}  # index 3 dominated by index 2

    def test_sorted_by_size(self):
        acc = [0.9, 0.5, 0.7]
        size = [100, 10, 20]
        front = pareto_indices(acc, size)
        assert front == [1, 2, 0]

    def test_all_on_front(self):
        acc = [0.5, 0.7, 0.9]
        size = [10, 20, 30]
        assert len(pareto_indices(acc, size)) == 3

    def test_single_point(self):
        assert pareto_indices([0.5], [10]) == [0]

    def test_empty(self):
        assert pareto_indices([], []) == []

    def test_duplicates_keep_one(self):
        acc = [0.5, 0.5]
        size = [10, 10]
        assert len(pareto_indices(acc, size)) == 1

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pareto_indices([0.5], [10, 20])

    def test_front_points_mutually_nondominated(self, rng):
        acc = rng.uniform(0, 1, 50).tolist()
        size = rng.uniform(1, 100, 50).tolist()
        front = pareto_front(acc, size)
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not dominates(a, b)

    def test_every_point_dominated_or_on_front(self, rng):
        acc = rng.uniform(0, 1, 40).tolist()
        size = rng.uniform(1, 100, 40).tolist()
        front = pareto_front(acc, size)
        for point in zip(acc, size):
            on_front = any(abs(point[0] - f[0]) < 1e-12
                           and abs(point[1] - f[1]) < 1e-12 for f in front)
            dominated = any(dominates(f, point) for f in front)
            assert on_front or dominated


class TestHypervolume:
    def test_single_point_with_reference(self):
        volume = hypervolume([(0.5, 10.0)], ref_accuracy=0.0, ref_size=20.0)
        assert volume == pytest.approx(0.5 * 10.0)

    def test_staircase(self):
        front = [(0.4, 10.0), (0.8, 20.0)]
        volume = hypervolume(front, ref_accuracy=0.0, ref_size=30.0)
        assert volume == pytest.approx(0.4 * 10 + 0.8 * 10)

    def test_better_front_bigger_volume(self):
        worse = [(0.4, 10.0), (0.6, 20.0)]
        better = [(0.5, 10.0), (0.8, 20.0)]
        ref = dict(ref_accuracy=0.0, ref_size=30.0)
        assert hypervolume(better, **ref) > hypervolume(worse, **ref)

    def test_empty_front(self):
        assert hypervolume([]) == 0.0

    def test_points_beyond_reference_ignored(self):
        front = [(0.5, 10.0), (0.9, 100.0)]
        volume = hypervolume(front, ref_accuracy=0.0, ref_size=20.0)
        assert volume == pytest.approx(0.5 * 10.0)


class TestBudgetHelpers:
    FRONT_A = [(0.5, 5.0), (0.8, 50.0)]
    FRONT_B = [(0.4, 5.0), (0.9, 50.0)]

    def test_best_accuracy_under(self):
        assert best_accuracy_under(self.FRONT_A, 10.0) == 0.5
        assert best_accuracy_under(self.FRONT_A, 100.0) == 0.8

    def test_empty_budget(self):
        assert best_accuracy_under(self.FRONT_A, 1.0) == float("-inf")

    def test_front_dominates_at_size(self):
        assert front_dominates_at_size(self.FRONT_A, self.FRONT_B, 10.0)
        assert front_dominates_at_size(self.FRONT_B, self.FRONT_A, 100.0)
