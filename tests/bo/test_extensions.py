"""Tests for the BO extensions: length-scale tuning, MACs objective."""

import numpy as np
import pytest

from repro.bo import (GaussianProcess, Matern52, ScalarizationConfig,
                      scalarize)


def l1_pairwise(a, b=None):
    b = a if b is None else b
    return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)


class TestLengthScaleTuning:
    def test_returns_candidate_and_refits(self, rng):
        gp = GaussianProcess(Matern52(1.0), l1_pairwise, noise=1e-3)
        x = np.linspace(0, 1, 15).reshape(-1, 1)
        y = np.sin(4 * x[:, 0])
        candidates = np.array([0.05, 0.2, 1.0])
        chosen = gp.tune_length_scale(x, y, candidates)
        assert chosen in candidates
        assert gp.kernel.length_scale == chosen
        assert gp.fitted

    def test_prefers_scale_matching_data(self, rng):
        """Rapidly-varying targets should pick a shorter length scale than
        nearly-constant targets."""
        x = np.linspace(0, 1, 20).reshape(-1, 1)
        candidates = np.array([0.05, 2.0])
        gp = GaussianProcess(Matern52(1.0), l1_pairwise, noise=1e-4)
        wiggly = gp.tune_length_scale(x, np.sin(20 * x[:, 0]), candidates)
        smooth = gp.tune_length_scale(x, 0.1 * x[:, 0], candidates)
        assert wiggly <= smooth

    def test_default_grid(self, rng):
        gp = GaussianProcess(Matern52(1.0), l1_pairwise, noise=1e-3)
        chosen = gp.tune_length_scale(rng.uniform(size=(8, 2)),
                                      rng.normal(size=8))
        assert 0.02 <= chosen <= 2.0


class TestMacsObjective:
    def test_disabled_by_default(self):
        config = ScalarizationConfig()
        base = scalarize(0.8, 1e5, config)
        with_macs = scalarize(0.8, 1e5, config, macs=1e9)
        assert base == with_macs  # macs ignored when ref_macs unset

    def test_macs_term_added(self):
        config = ScalarizationConfig(ref_macs=4.0)
        score = scalarize(0.8, 1e5, config, macs=1e6)
        base = scalarize(0.8, 1e5, ScalarizationConfig())
        assert score == pytest.approx(base + 4.0 / 6.0)

    def test_fewer_macs_higher_score(self):
        config = ScalarizationConfig(ref_macs=4.0)
        small = scalarize(0.8, 1e5, config, macs=1e5)
        big = scalarize(0.8, 1e5, config, macs=1e8)
        assert small > big

    def test_missing_macs_raises(self):
        config = ScalarizationConfig(ref_macs=4.0)
        with pytest.raises(ValueError):
            scalarize(0.8, 1e5, config)

    def test_invalid_ref(self):
        with pytest.raises(ValueError):
            ScalarizationConfig(ref_macs=0.0)

    def test_search_loop_threads_macs(self, unit_config, tiny_dataset):
        """A search configured with ref_macs must produce scores that
        include the MAC term."""
        from dataclasses import replace
        from repro.nas import BOMPNAS
        config = replace(
            unit_config,
            scalarization=ScalarizationConfig(ref_macs=4.0))
        result = BOMPNAS(config, tiny_dataset).run(final_training=False)
        for trial in result.trials:
            expected = scalarize(trial.accuracy, trial.size_bits,
                                 config.scalarization, macs=trial.macs)
            assert trial.score == pytest.approx(expected)
