"""Extra GP coverage: marginal likelihood and kernel interplay."""

import numpy as np
import pytest

from repro.bo import Exponential, GaussianProcess, Matern52


def l1_pairwise(a, b=None):
    b = a if b is None else b
    return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)


class TestLogMarginalLikelihood:
    def test_finite_after_fit(self, rng):
        gp = GaussianProcess(Matern52(1.0), l1_pairwise, noise=1e-3)
        gp.fit(rng.uniform(size=(6, 2)), rng.normal(size=6))
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_unfitted_raises(self):
        gp = GaussianProcess(Matern52(1.0), l1_pairwise)
        with pytest.raises(RuntimeError):
            gp.log_marginal_likelihood()

    def test_smooth_data_likelier_than_noise(self, rng):
        """Targets that vary smoothly with the metric should be more likely
        under the smooth prior than shuffled targets."""
        x = np.linspace(0, 1, 12).reshape(-1, 1)
        y_smooth = np.sin(3 * x[:, 0])
        y_shuffled = y_smooth.copy()
        rng.shuffle(y_shuffled)
        gp = GaussianProcess(Matern52(0.5), l1_pairwise, noise=1e-3)
        gp.fit(x, y_smooth)
        lml_smooth = gp.log_marginal_likelihood()
        gp.fit(x, y_shuffled)
        lml_shuffled = gp.log_marginal_likelihood()
        assert lml_smooth > lml_shuffled


class TestKernelChoiceEffects:
    def test_exponential_kernel_psd_on_l1(self, rng):
        """The Laplacian kernel is provably PSD for L1 metrics: the Gram
        matrix of random points must have non-negative eigenvalues."""
        x = rng.uniform(size=(20, 5))
        gram = Exponential(0.5)(l1_pairwise(x))
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-10

    def test_shorter_length_scale_localizes_posterior(self, rng):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        probe = np.array([[0.5]])
        means = {}
        for ls in (0.05, 5.0):
            gp = GaussianProcess(Matern52(ls), l1_pairwise, noise=1e-6)
            gp.fit(x, y)
            _, std = gp.predict(probe)
            means[ls] = std[0]
        # short length scale: the probe is "far" from both points ->
        # larger posterior uncertainty
        assert means[0.05] > means[5.0]
