"""Tests for acquisition functions and the Eq. (1) scalarization."""

import numpy as np
import pytest

from repro.bo import (ExpectedImprovement, PosteriorMean,
                      ScalarizationConfig, UpperConfidenceBound,
                      equal_score_accuracy, make_acquisition, scalarize)


class TestUCB:
    def test_tradeoff(self):
        ucb = UpperConfidenceBound(beta=2.0)
        mean = np.array([1.0, 0.5])
        std = np.array([0.0, 1.0])
        scores = ucb.score(mean, std, best_observed=0.0)
        assert scores[1] > scores[0]  # exploration bonus wins

    def test_beta_zero_is_mean(self):
        ucb = UpperConfidenceBound(beta=0.0)
        mean = np.array([1.0, 2.0])
        np.testing.assert_array_equal(
            ucb.score(mean, np.ones(2), 0.0), mean)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            UpperConfidenceBound(beta=-1.0)


class TestEI:
    def test_zero_std_no_improvement(self):
        ei = ExpectedImprovement(xi=0.0)
        scores = ei.score(np.array([1.0]), np.array([0.0]),
                          best_observed=2.0)
        assert scores[0] == pytest.approx(0.0, abs=1e-9)

    def test_prefers_high_mean_at_equal_std(self):
        ei = ExpectedImprovement()
        scores = ei.score(np.array([1.0, 2.0]), np.array([0.5, 0.5]),
                          best_observed=1.5)
        assert scores[1] > scores[0]

    def test_prefers_high_std_at_equal_mean(self):
        ei = ExpectedImprovement()
        scores = ei.score(np.array([1.0, 1.0]), np.array([0.1, 1.0]),
                          best_observed=1.5)
        assert scores[1] > scores[0]

    def test_nonnegative(self, rng):
        ei = ExpectedImprovement()
        scores = ei.score(rng.normal(size=50), rng.uniform(0.01, 1, 50),
                          best_observed=1.0)
        assert (scores >= 0).all()


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_acquisition("ucb"), UpperConfidenceBound)
        assert isinstance(make_acquisition("ei"), ExpectedImprovement)
        assert isinstance(make_acquisition("mean"), PosteriorMean)
        with pytest.raises(ValueError):
            make_acquisition("thompson")


class TestScalarization:
    CONFIG = ScalarizationConfig(ref_accuracy=0.8, ref_model_size=8.0)

    def test_higher_accuracy_higher_score(self):
        size = 50 * 8 * 1024
        assert scalarize(0.9, size, self.CONFIG) > \
            scalarize(0.8, size, self.CONFIG)

    def test_smaller_model_higher_score(self):
        assert scalarize(0.8, 10 * 8 * 1024, self.CONFIG) > \
            scalarize(0.8, 100 * 8 * 1024, self.CONFIG)

    def test_matches_equation_1(self):
        accuracy, size_bits = 0.85, 123456.0
        expected = 0.85 / 0.8 + 8.0 / np.log10(size_bits)
        assert scalarize(accuracy, size_bits, self.CONFIG) == \
            pytest.approx(expected)

    def test_reference_values_shift_weighting(self):
        size_small, size_big = 5 * 8 * 1024, 500 * 8 * 1024
        size_heavy = ScalarizationConfig(ref_accuracy=0.8,
                                         ref_model_size=16.0)
        # with a heavier size reference, shrinking the model buys more score
        gain_default = (scalarize(0.8, size_small, self.CONFIG)
                        - scalarize(0.8, size_big, self.CONFIG))
        gain_heavy = (scalarize(0.8, size_small, size_heavy)
                      - scalarize(0.8, size_big, size_heavy))
        assert gain_heavy > gain_default

    def test_accuracy_bounds(self):
        with pytest.raises(ValueError):
            scalarize(1.5, 1000.0, self.CONFIG)
        with pytest.raises(ValueError):
            scalarize(-0.1, 1000.0, self.CONFIG)

    def test_tiny_size_rejected(self):
        with pytest.raises(ValueError):
            scalarize(0.5, 5.0, self.CONFIG)

    def test_invalid_references(self):
        with pytest.raises(ValueError):
            ScalarizationConfig(ref_accuracy=0.0)
        with pytest.raises(ValueError):
            ScalarizationConfig(ref_model_size=-1.0)


class TestEqualScoreContour:
    def test_inverts_scalarize(self):
        config = ScalarizationConfig()
        accuracy, size_bits = 0.7, 80000.0
        score = scalarize(accuracy, size_bits, config)
        recovered = equal_score_accuracy(score, np.array([size_bits]),
                                         config)
        assert recovered[0] == pytest.approx(accuracy, abs=1e-9)

    def test_contour_rises_with_size(self):
        """Along an equal-score line, bigger models must be more accurate."""
        config = ScalarizationConfig()
        sizes = np.geomspace(1e4, 1e7, 10)
        contour = equal_score_accuracy(2.5, sizes, config)
        assert all(a < b for a, b in zip(contour, contour[1:]))
