"""Tests for the ask/tell Bayesian optimizer over genomes."""

import numpy as np
import pytest

from repro.bo import BayesianOptimizer, scalarize, ScalarizationConfig
from repro.quant import model_size_bits
from repro.space import MixedPrecisionGenome, build_model


def synthetic_objective(space):
    """A cheap deterministic stand-in for a trial: Eq. (1) with a proxy
    accuracy that grows with mean bitwidth and model capacity."""
    config = ScalarizationConfig()

    def objective(genome):
        capacity = sum(b.width_multiplier * b.repetitions
                       for b in genome.arch.blocks)
        accuracy = min(0.95, 0.2 + 0.3 * capacity
                       + 0.05 * (genome.policy.mean_bits() - 4))
        model = build_model(genome.arch, 10)
        size = model_size_bits(model, genome.policy)
        return scalarize(max(0.0, accuracy), size, config)

    return objective


class TestBayesianOptimizer:
    def make(self, space, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        kwargs.setdefault("pool_size", 30)
        kwargs.setdefault("n_initial_random", 3)
        return BayesianOptimizer(space, rng, **kwargs)

    def test_first_ask_is_seed_arch(self, c10_space):
        opt = self.make(c10_space)
        first = opt.ask()
        assert first.arch == c10_space.seed_arch()

    def test_ask_tell_loop_runs(self, c10_space):
        opt = self.make(c10_space)
        objective = synthetic_objective(c10_space)
        for _ in range(8):
            genome = opt.ask()
            opt.tell(genome, objective(genome))
        assert opt.n_observations == 8

    def test_never_reproposes_evaluated(self, c10_space):
        opt = self.make(c10_space)
        objective = synthetic_objective(c10_space)
        seen = set()
        for _ in range(10):
            genome = opt.ask()
            assert genome.as_key() not in seen
            seen.add(genome.as_key())
            opt.tell(genome, objective(genome))

    def test_beats_random_search_on_synthetic(self, c10_space):
        """BO should find better scores than pure random sampling with the
        same budget (averaged over seeds to damp noise)."""
        objective = synthetic_objective(c10_space)
        budget = 16
        bo_bests, random_bests = [], []
        for seed in range(3):
            opt = self.make(c10_space, seed=seed)
            for _ in range(budget):
                genome = opt.ask()
                opt.tell(genome, objective(genome))
            bo_bests.append(opt.best()[1])
            rng = np.random.default_rng(100 + seed)
            scores = [objective(c10_space.random_genome(rng))
                      for _ in range(budget)]
            random_bests.append(max(scores))
        assert np.mean(bo_bests) >= np.mean(random_bests) - 0.05

    def test_best_returns_max(self, c10_space, rng):
        opt = self.make(c10_space)
        genomes = [c10_space.random_genome(rng) for _ in range(5)]
        for i, genome in enumerate(genomes):
            opt.tell(genome, float(i))
        best_genome, best_score = opt.best()
        assert best_score == 4.0
        assert best_genome == genomes[4]

    def test_best_empty_raises(self, c10_space):
        with pytest.raises(RuntimeError):
            self.make(c10_space).best()

    def test_tell_rejects_nonfinite(self, c10_space, rng):
        opt = self.make(c10_space)
        with pytest.raises(ValueError):
            opt.tell(c10_space.random_genome(rng), float("nan"))

    def test_custom_sample_fn_respected(self, c10_space):
        fixed_policy = c10_space.seed_policy(4)

        def sample(rng_):
            return MixedPrecisionGenome(c10_space.random_arch(rng_),
                                        fixed_policy)

        opt = self.make(c10_space, sample_fn=sample,
                        mutate_fn=lambda g, r: MixedPrecisionGenome(
                            c10_space.mutate_arch(g.arch, r), fixed_policy))
        objective = synthetic_objective(c10_space)
        for _ in range(8):
            genome = opt.ask()
            assert genome.policy == fixed_policy
            opt.tell(genome, objective(genome))

    def test_parameter_validation(self, c10_space, rng):
        with pytest.raises(ValueError):
            BayesianOptimizer(c10_space, rng, n_initial_random=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(c10_space, rng, pool_size=1)
        with pytest.raises(ValueError):
            BayesianOptimizer(c10_space, rng, elite_fraction=2.0)

    def test_observations_property(self, c10_space, rng):
        opt = self.make(c10_space)
        genome = c10_space.random_genome(rng)
        opt.tell(genome, 1.0)
        assert opt.observations == [(genome, 1.0)]


class TestAskBatch:
    def make(self, space, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        kwargs.setdefault("pool_size", 30)
        kwargs.setdefault("n_initial_random", 3)
        return BayesianOptimizer(space, rng, **kwargs)

    def test_batch_of_one_degenerates_to_ask(self, c10_space):
        assert self.make(c10_space).ask_batch(1) == \
            [self.make(c10_space).ask()]

    def test_batch_candidates_distinct(self, c10_space):
        genomes = self.make(c10_space).ask_batch(4)
        assert len(genomes) == 4
        assert len({g.as_key() for g in genomes}) == 4

    def test_fantasies_retracted(self, c10_space):
        opt = self.make(c10_space)
        objective = synthetic_objective(c10_space)
        genomes = opt.ask_batch(4)
        # constant-liar fantasies must not count as real observations...
        assert opt.n_observations == 0
        assert opt.observations == []
        for genome in genomes:
            opt.tell(genome, objective(genome))
        # ...and telling the real scores afterwards must work normally
        assert opt.n_observations == 4

    def test_batched_loop_runs_past_warmup(self, c10_space):
        opt = self.make(c10_space)
        objective = synthetic_objective(c10_space)
        seen = set()
        for _ in range(4):
            for genome in opt.ask_batch(3):
                assert genome.as_key() not in seen
                seen.add(genome.as_key())
                opt.tell(genome, objective(genome))
        assert opt.n_observations == 12

    def test_invalid_batch_size_rejected(self, c10_space):
        with pytest.raises(ValueError):
            self.make(c10_space).ask_batch(0)
