"""Unit tests for the deterministic fault-injection plans and ledger."""

import pytest

from repro.resilience.faults import (FAULT_KINDS, FaultPlan, FaultPlanError,
                                     InjectedFault, active_plan,
                                     corrupt_outcome_due, inject_trial_fault)


class TestPlanParsing:
    def test_basic_entries(self, tmp_path):
        plan = FaultPlan.parse("crash@3,hang@5,error@2x2,corrupt@7",
                               str(tmp_path))
        assert plan.faults == {("crash", 3): 1, ("hang", 5): 1,
                               ("error", 2): 2, ("corrupt", 7): 1}
        assert bool(plan)

    def test_counts_accumulate_across_entries(self, tmp_path):
        plan = FaultPlan.parse("error@2x2, error@2", str(tmp_path))
        assert plan.faults == {("error", 2): 3}

    def test_semicolons_and_blanks_tolerated(self, tmp_path):
        plan = FaultPlan.parse(" crash@1 ; ; hang@2 ", str(tmp_path))
        assert plan.faults == {("crash", 1): 1, ("hang", 2): 1}

    def test_checkpoint_kinds_accepted(self, tmp_path):
        plan = FaultPlan.parse("ckpt-tear@1,ckpt-kill@2", str(tmp_path))
        assert ("ckpt-tear", 1) in plan.faults
        assert ("ckpt-kill", 2) in plan.faults

    def test_missing_ledger_rejected(self):
        with pytest.raises(FaultPlanError, match="ledger"):
            FaultPlan.parse("crash@1", None)
        with pytest.raises(FaultPlanError, match="ledger"):
            FaultPlan.parse("crash@1", "")

    @pytest.mark.parametrize("spec", [
        "crash3", "crash@", "crash@x2", "@1", "oops@1", "crash@-1",
        "crash@1x0", "crash@1.5",
    ])
    def test_malformed_entries_rejected(self, spec, tmp_path):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(spec, str(tmp_path))


class TestLedger:
    def test_fires_exactly_budgeted_count(self, tmp_path):
        plan = FaultPlan.parse("error@4x3", str(tmp_path))
        fired = [plan.fires("error", 4) for _ in range(5)]
        assert fired == [True, True, True, False, False]

    def test_unscripted_fault_never_fires(self, tmp_path):
        plan = FaultPlan.parse("error@4", str(tmp_path))
        assert not plan.fires("error", 5)
        assert not plan.fires("crash", 4)

    def test_budget_shared_across_plan_instances(self, tmp_path):
        """Two processes parsing the same env share one firing budget."""
        first = FaultPlan.parse("crash@0x2", str(tmp_path))
        second = FaultPlan.parse("crash@0x2", str(tmp_path))
        assert first.fires("crash", 0)
        assert second.fires("crash", 0)
        assert not first.fires("crash", 0)
        assert not second.fires("crash", 0)

    def test_marker_files_record_firings(self, tmp_path):
        plan = FaultPlan.parse("hang@2x2", str(tmp_path))
        plan.fires("hang", 2)
        assert (tmp_path / "hang-2-0").exists()
        plan.fires("hang", 2)
        assert (tmp_path / "hang-2-1").exists()


class TestActivePlan:
    def test_none_when_unset(self, monkeypatch):
        monkeypatch.delenv("BOMP_FAULTS", raising=False)
        assert active_plan() is None

    def test_env_plan_parsed_and_cached(self, fault_env):
        fault_env("error@1")
        plan = active_plan()
        assert plan is not None and plan.faults == {("error", 1): 1}
        assert active_plan() is plan  # same env -> cached object

    def test_plan_without_ledger_env_raises(self, monkeypatch):
        monkeypatch.setenv("BOMP_FAULTS", "crash@1")
        monkeypatch.delenv("BOMP_FAULT_DIR", raising=False)
        with pytest.raises(FaultPlanError, match="ledger"):
            active_plan()


class TestInjectionHooks:
    def test_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv("BOMP_FAULTS", raising=False)
        inject_trial_fault(0)
        assert not corrupt_outcome_due(0)

    def test_error_fault_raises_once(self, fault_env):
        fault_env("error@3")
        with pytest.raises(InjectedFault, match="trial 3"):
            inject_trial_fault(3)
        inject_trial_fault(3)  # budget exhausted: no-op

    def test_corrupt_fault_reports_once(self, fault_env):
        fault_env("corrupt@2")
        assert corrupt_outcome_due(2)
        assert not corrupt_outcome_due(2)

    def test_kind_list_is_closed(self):
        assert set(FAULT_KINDS) == {"crash", "hang", "error", "corrupt",
                                    "ckpt-tear", "ckpt-kill"}
