"""Shared fixtures for the fault-injection / checkpoint-resume tests."""

from __future__ import annotations

import pytest

from repro.resilience.faults import (FAULT_DIR_ENV, FAULTS_ENV,
                                     HANG_SECONDS_ENV)


@pytest.fixture
def fault_env(monkeypatch, tmp_path):
    """Arm a ``BOMP_FAULTS`` plan with a fresh ledger; returns the ledger.

    Usage::

        ledger = fault_env("crash@2")            # default hang seconds
        ledger = fault_env("hang@0", hang_s=60)  # short injected hang
    """

    def arm(spec: str, hang_s=None):
        ledger = tmp_path / "fault-ledger"
        monkeypatch.setenv(FAULTS_ENV, spec)
        monkeypatch.setenv(FAULT_DIR_ENV, str(ledger))
        if hang_s is not None:
            monkeypatch.setenv(HANG_SECONDS_ENV, str(hang_s))
        return ledger

    return arm
