"""TrialEngine fault handling: retry, timeout-kill, respawn, degradation.

Every test injects a scripted fault into the worker path and asserts the
engine still returns the exact outcomes of an undisturbed serial run —
the per-trial deterministic seeding is what makes recovery invisible.
"""

import multiprocessing

import numpy as np
import pytest

from repro.data import make_synthetic_dataset
from repro.nas import BOMPNAS, SearchConfig, get_mode
from repro.obs.console import ConsoleReporter
from repro.obs.trace import TraceRecorder, use_recorder
from repro.parallel import (RetryPolicy, TrialEngine, TrialEvaluationError,
                            TrialSpec, trial_seed)

pytestmark = [
    pytest.mark.faults,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable"),
]

QUIET = ConsoleReporter(quiet=True)


def fast_policy(**overrides):
    defaults = dict(trial_timeout_s=30.0, max_retries=2, backoff_s=0.01,
                    max_pool_respawns=2)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


@pytest.fixture(scope="module")
def engine_setup(unit_scale):
    dataset = make_synthetic_dataset(
        "tiny-engine-faults", num_classes=10, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=3)
    config = SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                          scale=unit_scale, seed=0)
    nas = BOMPNAS(config, dataset)
    sampler = np.random.default_rng(5)
    specs = [TrialSpec(index=i, genome=nas.space.random_genome(sampler),
                       seed=trial_seed(config.seed, i))
             for i in range(3)]
    with TrialEngine(config, dataset, workers=1, evaluator=nas,
                     reporter=QUIET) as engine:
        expected = engine.evaluate(specs)
    scores = [[r.score for r in batch] for batch in expected]
    return config, dataset, specs, scores


def run_pooled(config, dataset, specs, policy, workers=2):
    recorder = TraceRecorder()
    with use_recorder(recorder):
        with TrialEngine(config, dataset, workers=workers,
                         retry_policy=policy, reporter=QUIET) as engine:
            batches = engine.evaluate(specs)
            state = (engine.parallel, engine.degraded)
    scores = [[r.score for r in batch] for batch in batches]
    counters = [e["name"] for e in recorder.events
                if e.get("type") == "counter"]
    return scores, state, counters


class TestWorkerFaultRecovery:
    def test_injected_error_retried_to_identical_result(
            self, engine_setup, fault_env):
        config, dataset, specs, expected = engine_setup
        fault_env("error@1")
        scores, (parallel, degraded), counters = run_pooled(
            config, dataset, specs, fast_policy())
        assert scores == expected
        assert parallel and not degraded
        assert "pool.retries" in counters

    def test_persistent_error_exhausts_retries(self, engine_setup,
                                               fault_env):
        config, dataset, specs, _ = engine_setup
        fault_env("error@1x9")
        with pytest.raises(TrialEvaluationError,
                           match="failed after 3 attempts"):
            run_pooled(config, dataset, specs,
                       fast_policy(max_retries=2))

    def test_corrupt_outcome_retried_to_identical_result(
            self, engine_setup, fault_env):
        config, dataset, specs, expected = engine_setup
        fault_env("corrupt@1")
        scores, (parallel, degraded), counters = run_pooled(
            config, dataset, specs, fast_policy())
        assert scores == expected
        assert parallel and not degraded
        assert "pool.retries" in counters

    def test_worker_crash_respawns_pool(self, engine_setup, fault_env):
        config, dataset, specs, expected = engine_setup
        fault_env("crash@2")
        scores, (parallel, degraded), counters = run_pooled(
            config, dataset, specs, fast_policy())
        assert scores == expected
        assert parallel and not degraded
        assert "pool.crashes" in counters
        assert "pool.respawns" in counters

    def test_hung_worker_timed_out_and_recovered(self, engine_setup,
                                                 fault_env):
        config, dataset, specs, expected = engine_setup
        fault_env("hang@0", hang_s=120)
        scores, (parallel, degraded), counters = run_pooled(
            config, dataset, specs, fast_policy(trial_timeout_s=4.0))
        assert scores == expected
        assert not degraded
        assert "pool.timeout_kills" in counters
        assert "pool.respawns" in counters

    def test_repeated_crashes_degrade_to_serial(self, engine_setup,
                                                fault_env):
        config, dataset, specs, expected = engine_setup
        fault_env("crash@0x6")
        with pytest.warns(RuntimeWarning, match="degrading"):
            scores, (parallel, degraded), counters = run_pooled(
                config, dataset, specs,
                fast_policy(max_pool_respawns=1))
        assert scores == expected  # serial fill-in completed the batch
        assert degraded and not parallel
        assert "pool.degraded" in counters


class TestPoolStartFailureSurfaced:
    def test_reason_reported_and_counted(self, engine_setup, monkeypatch):
        """The serial fallback is loud: warning + obs counter with cause."""
        config, dataset, specs, expected = engine_setup
        monkeypatch.setenv("BOMP_MP_START", "bogus-method")
        recorder = TraceRecorder()
        with use_recorder(recorder):
            with pytest.warns(RuntimeWarning, match="falling back"):
                with TrialEngine(config, dataset, workers=2,
                                 retry_policy=fast_policy(),
                                 reporter=QUIET) as engine:
                    assert not engine.parallel
                    scores = [[r.score for r in batch]
                              for batch in engine.evaluate(specs)]
        assert scores == expected
        failures = [e for e in recorder.events
                    if e.get("type") == "counter"
                    and e["name"] == "pool.start_failures"]
        assert failures and "bogus-method" in failures[0]["tags"]["reason"]
