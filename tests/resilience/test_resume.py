"""Kill-and-resume integration tests: the tentpole bit-identity contract.

A search SIGKILLed between (or during) checkpoint writes, then resumed
with ``resume_from`` / ``repro search --resume``, must produce exactly
the trials, scores, and incumbent of an uninterrupted run — serial and
parallel alike.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.data import make_synthetic_dataset
from repro.nas import BOMPNAS, SearchConfig, get_mode
from repro.resilience.checkpoint import (CheckpointError, has_checkpoint,
                                         load_checkpoint)


@pytest.fixture(scope="module")
def setup(unit_scale):
    dataset = make_synthetic_dataset(
        "tiny-resume", num_classes=10, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=3)
    config = SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                          scale=unit_scale, seed=0)
    baseline = BOMPNAS(config, dataset).run(final_training=False,
                                            workers=1, batch_size=2)
    return config, dataset, baseline


def assert_bit_identical(resumed, baseline):
    assert [t.index for t in resumed.trials] == \
        [t.index for t in baseline.trials]
    assert [t.genome for t in resumed.trials] == \
        [t.genome for t in baseline.trials]
    assert [t.score for t in resumed.trials] == \
        [t.score for t in baseline.trials]
    assert [t.accuracy for t in resumed.trials] == \
        [t.accuracy for t in baseline.trials]
    assert [t.size_bits for t in resumed.trials] == \
        [t.size_bits for t in baseline.trials]
    assert resumed.best_trial().index == baseline.best_trial().index
    assert resumed.best_trial().score == baseline.best_trial().score
    assert resumed.pareto_trial_indices() == baseline.pareto_trial_indices()


def _run_until_killed(config, dataset, ckpt_dir, env):
    """Child-process body: run a checkpointed search into a scripted kill."""
    os.environ.update(env)
    BOMPNAS(config, dataset).run(final_training=False, workers=1,
                                 batch_size=2, checkpoint_dir=ckpt_dir)


class _Interrupt(Exception):
    pass


def run_interrupted(config, dataset, ckpt_dir, stop_after=2, workers=1):
    """In-process interruption: abort the run after ``stop_after`` trials.

    The exception fires during the batch *after* the checkpoint landed, so
    the checkpoint covers exactly the first ``stop_after`` trials.
    """
    calls = {"n": 0}

    def progress(trial):
        calls["n"] += 1
        if calls["n"] > stop_after:
            raise _Interrupt

    nas = BOMPNAS(config, dataset, progress=progress)
    with pytest.raises(_Interrupt):
        nas.run(final_training=False, workers=workers, batch_size=2,
                checkpoint_dir=ckpt_dir)


def fork_and_wait(target, *args):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=target, args=args)
    process.start()
    process.join(timeout=300)
    assert not process.is_alive(), "child search did not terminate"
    return process.exitcode


@pytest.mark.faults
class TestKillResume:
    def test_sigkill_after_first_checkpoint_resumes_identical(
            self, setup, tmp_path):
        config, dataset, baseline = setup
        ckpt_dir = tmp_path / "run"
        exitcode = fork_and_wait(
            _run_until_killed, config, dataset, ckpt_dir,
            {"BOMP_FAULTS": "ckpt-kill@1",
             "BOMP_FAULT_DIR": str(tmp_path / "ledger")})
        assert exitcode == -signal.SIGKILL
        interrupted = load_checkpoint(ckpt_dir)
        assert interrupted.batch_index == 1
        assert len(interrupted.trials) == 2
        resumed = BOMPNAS(config, dataset).run(
            final_training=False, workers=1, resume_from=ckpt_dir)
        assert_bit_identical(resumed, baseline)
        # the final checkpoint now covers the whole run
        final = load_checkpoint(ckpt_dir)
        assert len(final.trials) == len(baseline.trials)

    def test_sigkill_mid_checkpoint_write_resumes_identical(
            self, setup, tmp_path):
        """Die *during* the batch-2 checkpoint write: the batch-1 file must
        survive the tear and carry the resume."""
        config, dataset, baseline = setup
        ckpt_dir = tmp_path / "run"
        exitcode = fork_and_wait(
            _run_until_killed, config, dataset, ckpt_dir,
            {"BOMP_FAULTS": "ckpt-tear@2",
             "BOMP_FAULT_DIR": str(tmp_path / "ledger")})
        assert exitcode == -signal.SIGKILL
        survivor = load_checkpoint(ckpt_dir)
        assert survivor.batch_index == 1
        assert len(survivor.trials) == 2
        resumed = BOMPNAS(config, dataset).run(
            final_training=False, workers=1, resume_from=ckpt_dir)
        assert_bit_identical(resumed, baseline)

    def test_resume_with_two_workers_identical(self, setup, tmp_path):
        config, dataset, baseline = setup
        ckpt_dir = tmp_path / "run"
        run_interrupted(config, dataset, ckpt_dir, stop_after=2, workers=2)
        assert has_checkpoint(ckpt_dir)
        resumed = BOMPNAS(config, dataset).run(
            final_training=False, workers=2, resume_from=ckpt_dir)
        assert_bit_identical(resumed, baseline)


class TestResumeSemantics:
    def test_resume_of_completed_run_is_identity(self, setup, tmp_path):
        config, dataset, baseline = setup
        ckpt_dir = tmp_path / "run"
        BOMPNAS(config, dataset).run(final_training=False, workers=1,
                                     batch_size=2, checkpoint_dir=ckpt_dir)
        resumed = BOMPNAS(config, dataset).run(
            final_training=False, workers=1, resume_from=ckpt_dir)
        assert_bit_identical(resumed, baseline)

    def test_config_mismatch_rejected(self, setup, tmp_path):
        config, dataset, _ = setup
        ckpt_dir = tmp_path / "run"
        run_interrupted(config, dataset, ckpt_dir)
        import dataclasses
        other = dataclasses.replace(config, seed=config.seed + 1)
        with pytest.raises(CheckpointError, match="seed"):
            BOMPNAS(other, dataset).run(final_training=False,
                                        resume_from=ckpt_dir)

    def test_batch_size_mismatch_rejected(self, setup, tmp_path):
        config, dataset, _ = setup
        ckpt_dir = tmp_path / "run"
        run_interrupted(config, dataset, ckpt_dir)  # batch_size=2
        with pytest.raises(CheckpointError, match="batch_size"):
            BOMPNAS(config, dataset).run(final_training=False,
                                         batch_size=3, resume_from=ckpt_dir)

    def test_missing_checkpoint_rejected(self, setup, tmp_path):
        config, dataset, _ = setup
        with pytest.raises(CheckpointError, match="no checkpoint"):
            BOMPNAS(config, dataset).run(final_training=False,
                                         resume_from=tmp_path / "nowhere")


class TestCliResume:
    def test_search_checkpoint_then_resume_identical(self, tmp_path):
        from repro.cli import main
        ckpt_dir = tmp_path / "ckpt"
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["search", "--scale", "unit", "--no-final-training",
                     "--quiet", "--workers", "1", "--trial-batch", "2",
                     "--checkpoint-dir", str(ckpt_dir),
                     "--out", str(first)]) == 0
        assert has_checkpoint(ckpt_dir)
        # --resume restores config + dataset from the checkpoint alone
        assert main(["search", "--resume", str(ckpt_dir),
                     "--no-final-training", "--quiet", "--workers", "1",
                     "--out", str(second)]) == 0
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        assert a["trials"] == b["trials"]
        assert a["config"] == b["config"]

    def test_resume_without_checkpoint_fails(self, tmp_path):
        from repro.cli import main
        with pytest.raises(CheckpointError, match="no checkpoint"):
            main(["search", "--resume", str(tmp_path / "empty"),
                  "--quiet"])
