"""Checkpoint persistence: atomic writes, validation, schema dispatch."""

import json
import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.resilience.checkpoint import (CHECKPOINT_FILENAME,
                                         CHECKPOINT_SCHEMA_VERSION,
                                         CheckpointError, SearchCheckpoint,
                                         checkpoint_path, has_checkpoint,
                                         load_checkpoint, save_checkpoint,
                                         validate_checkpoint,
                                         validate_checkpoint_file)


def make_checkpoint(batch_index=1, n_trials=2):
    rng_state = json.loads(json.dumps(
        np.random.default_rng(0).bit_generator.state))
    return SearchCheckpoint(
        config={"dataset": "cifar10", "mode": "mp_qaft", "seed": 0},
        batch_size=2, total_trials=4, batch_index=batch_index,
        trials=[{"index": i, "genome": {"blocks": []}, "score": 0.5 + i}
                for i in range(n_trials)],
        optimizer={"seed_given": True, "rng_state": rng_state},
        dataset_spec={"name": "tiny", "num_classes": 10, "n_train": 96,
                      "n_test": 48, "seed": 3})


class TestRoundTrip:
    def test_dict_round_trip(self):
        checkpoint = make_checkpoint()
        clone = SearchCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.as_dict())))
        assert clone == checkpoint

    def test_file_round_trip(self, tmp_path):
        checkpoint = make_checkpoint()
        path = save_checkpoint(tmp_path, checkpoint)
        assert path == tmp_path / CHECKPOINT_FILENAME
        assert has_checkpoint(tmp_path)
        assert load_checkpoint(tmp_path) == checkpoint
        # loading by direct file path works too
        assert load_checkpoint(path) == checkpoint

    def test_rng_state_round_trips_exactly(self, tmp_path):
        rng = np.random.default_rng(1234)
        rng.random(17)  # advance mid-stream
        state = rng.bit_generator.state
        checkpoint = make_checkpoint()
        checkpoint.optimizer["rng_state"] = json.loads(json.dumps(state))
        save_checkpoint(tmp_path, checkpoint)
        restored = np.random.default_rng(0)
        restored.bit_generator.state = \
            load_checkpoint(tmp_path).optimizer["rng_state"]
        assert list(rng.random(8)) == list(restored.random(8))

    def test_missing_checkpoint_raises(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path)

    def test_unreadable_json_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_FILENAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(tmp_path)

    def test_checkpoint_path_shapes(self, tmp_path):
        assert checkpoint_path(tmp_path) == tmp_path / CHECKPOINT_FILENAME
        direct = tmp_path / "other.json"
        assert checkpoint_path(direct) == direct


class TestValidation:
    def test_valid_payload(self):
        assert validate_checkpoint(make_checkpoint().as_dict()) == []

    def test_non_object_rejected(self):
        assert validate_checkpoint([1, 2]) == \
            ["checkpoint payload is not a JSON object"]

    @pytest.mark.parametrize("field", ["schema", "config", "batch_size",
                                       "total_trials", "batch_index",
                                       "trials", "optimizer"])
    def test_missing_field_flagged(self, field):
        payload = make_checkpoint().as_dict()
        del payload[field]
        assert any(field in p for p in validate_checkpoint(payload))

    def test_wrong_schema_flagged(self):
        payload = make_checkpoint().as_dict()
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        assert any("schema" in p for p in validate_checkpoint(payload))

    def test_bad_batch_size_flagged(self):
        payload = make_checkpoint().as_dict()
        payload["batch_size"] = 0
        assert any("batch_size" in p for p in validate_checkpoint(payload))
        payload["batch_size"] = "two"
        assert any("batch_size" in p for p in validate_checkpoint(payload))

    def test_trial_missing_fields_flagged(self):
        payload = make_checkpoint().as_dict()
        del payload["trials"][0]["score"]
        assert any("score" in p for p in validate_checkpoint(payload))

    def test_optimizer_state_flagged(self):
        payload = make_checkpoint().as_dict()
        del payload["optimizer"]["rng_state"]
        assert any("rng_state" in p for p in validate_checkpoint(payload))
        payload = make_checkpoint().as_dict()
        payload["optimizer"]["rng_state"] = {"no": "bit_generator"}
        assert any("bit_generator" in p
                   for p in validate_checkpoint(payload))

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(CheckpointError, match="invalid checkpoint"):
            SearchCheckpoint.from_dict({"schema": 1})

    def test_validate_file(self, tmp_path):
        save_checkpoint(tmp_path, make_checkpoint())
        assert validate_checkpoint_file(tmp_path) == []
        assert validate_checkpoint_file(tmp_path / "missing") != []

    def test_obs_schema_dispatch(self, tmp_path):
        """obs.schema.validate_path routes checkpoint.json files here."""
        from repro.obs.schema import validate_path
        path = save_checkpoint(tmp_path, make_checkpoint())
        assert validate_path(path) == []
        payload = json.loads(path.read_text())
        del payload["optimizer"]
        path.write_text(json.dumps(payload))
        assert any("optimizer" in p for p in validate_path(path))


def _write_with_faults(run_dir, checkpoint, env):
    os.environ.update(env)
    save_checkpoint(run_dir, checkpoint)


@pytest.mark.faults
class TestAtomicity:
    """A process killed mid-write must never tear the previous checkpoint."""

    def _fork(self, target, *args):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(target=target, args=args)
        process.start()
        process.join(timeout=60)
        assert not process.is_alive()
        return process.exitcode

    def test_kill_before_rename_keeps_previous(self, tmp_path):
        save_checkpoint(tmp_path, make_checkpoint(batch_index=1))
        env = {"BOMP_FAULTS": "ckpt-tear@2",
               "BOMP_FAULT_DIR": str(tmp_path / "ledger")}
        exitcode = self._fork(_write_with_faults, tmp_path,
                              make_checkpoint(batch_index=2, n_trials=4),
                              env)
        assert exitcode == -signal.SIGKILL
        survivor = load_checkpoint(tmp_path)
        assert survivor.batch_index == 1
        assert len(survivor.trials) == 2
        # the torn temp file is left behind but never read
        assert list(tmp_path.glob(f"{CHECKPOINT_FILENAME}.tmp.*"))

    def test_kill_after_rename_keeps_new(self, tmp_path):
        save_checkpoint(tmp_path, make_checkpoint(batch_index=1))
        env = {"BOMP_FAULTS": "ckpt-kill@2",
               "BOMP_FAULT_DIR": str(tmp_path / "ledger")}
        exitcode = self._fork(_write_with_faults, tmp_path,
                              make_checkpoint(batch_index=2, n_trials=4),
                              env)
        assert exitcode == -signal.SIGKILL
        survivor = load_checkpoint(tmp_path)
        assert survivor.batch_index == 2
        assert len(survivor.trials) == 4
