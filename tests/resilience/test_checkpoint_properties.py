"""Property tests: checkpoint round-trips restore search state *exactly*.

Resume correctness rests on three invariants, each checked over random
seeds/histories via hypothesis:

- RNG streams survive a JSON round trip of the bit-generator state;
- the GP surrogate rebuilt by replaying serialized trials produces
  bit-identical posterior predictions (and therefore identical proposals);
- Pareto fronts are preserved by trial-result serialization.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bo.optimizer import BayesianOptimizer
from repro.nas.trial import TrialResult, genome_from_dict, genome_to_dict
from repro.space import SearchSpace

SPACE = SearchSpace("cifar10")

seeds = st.integers(0, 2**32 - 1)
scores = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


def json_round_trip(payload):
    return json.loads(json.dumps(payload))


def make_optimizer(seed):
    return BayesianOptimizer(SPACE, np.random.default_rng(seed),
                             pool_size=20, n_initial_random=3)


def serialized_history(genome_seed, score_list):
    """A trial history as it would come back out of a checkpoint file."""
    sampler = np.random.default_rng(genome_seed)
    history = []
    for score in score_list:
        genome = SPACE.random_genome(sampler)
        history.append(json_round_trip(
            {"genome": genome_to_dict(genome), "score": score}))
    return history


class TestRngStateRoundTrip:
    @given(seed=seeds, n_consumed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_streams_identical_after_round_trip(self, seed, n_consumed):
        rng = np.random.default_rng(seed)
        rng.random(n_consumed)
        snapshot = json_round_trip(rng.bit_generator.state)
        clone = np.random.default_rng(0)
        clone.bit_generator.state = snapshot
        assert list(rng.random(16)) == list(clone.random(16))
        assert list(rng.integers(0, 1000, 8)) == \
            list(clone.integers(0, 1000, 8))

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_optimizer_state_dict_round_trips(self, seed):
        optimizer = make_optimizer(seed)
        optimizer.ask()  # consume the seed anchor + some RNG
        state = json_round_trip(optimizer.state_dict())
        clone = make_optimizer(0)
        clone.restore_state(state)
        assert clone._seed_given == optimizer._seed_given
        assert list(clone.rng.random(8)) == list(optimizer.rng.random(8))


class TestReplayedSurrogate:
    @given(seed=seeds, genome_seed=seeds,
           score_list=st.lists(scores, min_size=1, max_size=7))
    @settings(max_examples=10, deadline=None)
    def test_posterior_predictions_exact(self, seed, genome_seed,
                                         score_list):
        history = serialized_history(genome_seed, score_list)
        original = make_optimizer(seed)
        replayed = make_optimizer(seed)
        sampler = np.random.default_rng(genome_seed)
        for entry in history:
            original.tell(SPACE.random_genome(sampler), entry["score"])
            replayed.tell(genome_from_dict(entry["genome"]),
                          entry["score"])
        for optimizer in (original, replayed):
            optimizer.gp.fit(np.stack(optimizer._encodings),
                             np.asarray(optimizer._scores))
        probes = np.stack([
            original.distance.encode(SPACE.random_genome(
                np.random.default_rng(7)))
            for _ in range(3)])
        mean_a, std_a = original.gp.predict(probes)
        mean_b, std_b = replayed.gp.predict(probes)
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(std_a, std_b)

    @given(seed=seeds, genome_seed=seeds,
           score_list=st.lists(scores, unique=True, min_size=1,
                               max_size=7))
    @settings(max_examples=10, deadline=None)
    def test_next_proposal_identical_after_restore(self, seed, genome_seed,
                                                   score_list):
        """The property resume rests on: replay + state restore => the
        next ask() proposes exactly what an uninterrupted run would."""
        original = make_optimizer(seed)
        sampler = np.random.default_rng(genome_seed)
        told = [(SPACE.random_genome(sampler), score)
                for score in score_list]
        for genome, score in told:
            original.tell(genome, score)
        state = json_round_trip(original.state_dict())
        history = [json_round_trip({"genome": genome_to_dict(g),
                                    "score": s}) for g, s in told]

        resumed = make_optimizer(0)  # different construction seed on purpose
        for entry in history:
            resumed.tell(genome_from_dict(entry["genome"]), entry["score"])
        resumed.restore_state(state)
        assert resumed.ask().as_key() == original.ask().as_key()


class TestParetoRoundTrip:
    @given(genome_seed=seeds,
           objectives=st.lists(st.tuples(st.floats(0, 1), st.floats(1, 64)),
                               min_size=1, max_size=10))
    @settings(max_examples=10, deadline=None)
    def test_front_preserved(self, genome_seed, objectives):
        from repro.nas.results import SearchResult
        from repro.nas.config import SearchConfig, get_mode, get_scale
        sampler = np.random.default_rng(genome_seed)
        trials = []
        for index, (accuracy, size_kb) in enumerate(objectives):
            trials.append(TrialResult(
                index=index, genome=SPACE.random_genome(sampler),
                accuracy=accuracy, fp_accuracy=accuracy,
                size_bits=int(size_kb * 8 * 1024), size_kb=size_kb,
                score=accuracy - size_kb / 64, macs=1, params=1,
                train_seconds=0.0, gpu_hours=0.0))
        config = SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                              scale=get_scale("unit"), seed=0)
        result = SearchResult(config=config, trials=trials)
        restored = SearchResult.from_dict(
            json.loads(json.dumps(result.as_dict())))
        assert restored.pareto_trial_indices() == \
            result.pareto_trial_indices()
        assert restored.candidate_front() == result.candidate_front()
        assert [t.score for t in restored.trials] == \
            [t.score for t in result.trials]
