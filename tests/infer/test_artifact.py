"""Deployable artifact: serialization round-trip, bit-identical rebuild,
error paths, and the export/infer CLI round-trip from a real run."""

import struct

import numpy as np
import pytest

from repro.cli import main
from repro.infer import (ArtifactError, build_artifact, load_artifact,
                         save_artifact)
from repro.infer.artifact import (ARTIFACT_MAGIC, artifact_from_bytes,
                                  artifact_to_bytes, collect_bn_stats,
                                  restore_bn_stats, _pick_trial)
from repro.nas.trial import genome_to_dict
from repro.space import MixedPrecisionGenome, build_model

from .conftest import make_quantized_model


@pytest.fixture(scope="module")
def genome(c10_space):
    return MixedPrecisionGenome(c10_space.seed_arch(),
                                c10_space.seed_policy(8))


@pytest.fixture(scope="module")
def cheap_model(c10_space, infer_dataset):
    """Quantized seed model without the (slow) confidence training —
    serialization fidelity does not care about accuracy."""
    return make_quantized_model(c10_space, c10_space.seed_policy(8),
                                infer_dataset, float_epochs=0,
                                qaft_epochs=0)


@pytest.fixture(scope="module")
def artifact(cheap_model, genome, infer_dataset):
    return build_artifact(
        cheap_model, genome, num_classes=10,
        image_size=infer_dataset.x_train.shape[1],
        dataset_spec=infer_dataset.spec,
        meta={"trial_index": 3, "accuracy": 0.5})


class TestRoundTrip:
    def test_bytes_round_trip(self, artifact):
        back = artifact_from_bytes(artifact_to_bytes(artifact))
        assert genome_to_dict(back.genome) == genome_to_dict(
            artifact.genome)
        assert back.num_classes == artifact.num_classes
        assert back.image_size == artifact.image_size
        assert back.in_channels == artifact.in_channels
        assert back.container == artifact.container
        assert back.dataset_spec == artifact.dataset_spec
        assert back.meta == artifact.meta
        assert set(back.bn_stats) == set(artifact.bn_stats)
        for key, value in artifact.bn_stats.items():
            assert np.array_equal(back.bn_stats[key], value)

    def test_save_and_load_file(self, artifact, tmp_path):
        path = save_artifact(artifact, tmp_path / "model.bomp")
        assert path.exists()
        back = load_artifact(path)
        assert back.container == artifact.container
        assert back.meta == artifact.meta

    def test_rebuild_bit_identical_logits(self, artifact, cheap_model,
                                          infer_dataset):
        """The rebuilt fake-quant model must reproduce the original's
        logits exactly — not approximately."""
        rebuilt = artifact_from_bytes(
            artifact_to_bytes(artifact)).rebuild()
        x = infer_dataset.x_test[:16]
        assert np.array_equal(rebuilt.forward(x), cheap_model.forward(x))

    def test_compile_from_artifact(self, artifact, infer_dataset):
        program = artifact.compile(name="from-artifact")
        logits = program.run(infer_dataset.x_test[:8], batch_size=8)
        assert logits.shape == (8, 10)

    def test_test_set_regenerates_evaluation_split(self, artifact,
                                                   infer_dataset):
        x, y = artifact.test_set()
        assert np.array_equal(x, infer_dataset.x_test)
        assert np.array_equal(y, infer_dataset.y_test)


class TestErrorPaths:
    def test_bad_magic_rejected(self, artifact):
        data = b"NOTBOMP!" + artifact_to_bytes(artifact)[8:]
        with pytest.raises(ArtifactError, match="not a BOMP"):
            artifact_from_bytes(data)

    def test_unsupported_version_rejected(self):
        data = ARTIFACT_MAGIC + struct.pack("<I", 99)
        with pytest.raises(ArtifactError, match="version 99"):
            artifact_from_bytes(data)

    def test_truncated_artifact_rejected(self, artifact):
        data = artifact_to_bytes(artifact)
        with pytest.raises(ArtifactError, match="truncated"):
            artifact_from_bytes(data[:len(data) - 16])

    def test_missing_dataset_spec(self, cheap_model, genome):
        bare = build_artifact(cheap_model, genome, num_classes=10,
                              image_size=8)
        with pytest.raises(ArtifactError, match="no dataset spec"):
            bare.test_set()

    def test_bn_stat_count_mismatch(self, cheap_model, genome, rng):
        stats = collect_bn_stats(cheap_model)
        stats.pop(sorted(stats)[0])
        target = build_model(genome.arch, 10, rng=rng)
        with pytest.raises(ArtifactError, match="BatchNorm"):
            restore_bn_stats(target, stats)


class TestPickTrial:
    class _Trial:
        def __init__(self, index, score):
            self.index, self.score = index, score

    def test_default_is_highest_score(self):
        trials = [self._Trial(0, 0.1), self._Trial(1, 0.9),
                  self._Trial(2, 0.4)]
        assert _pick_trial(trials, None).index == 1

    def test_explicit_index(self):
        trials = [self._Trial(0, 0.1), self._Trial(4, 0.9)]
        assert _pick_trial(trials, 4).score == 0.9

    def test_unknown_index_lists_available(self):
        with pytest.raises(ArtifactError, match=r"\[0, 4\]"):
            _pick_trial([self._Trial(0, 0.1), self._Trial(4, 0.9)], 7)


class TestCliRoundTrip:
    def test_export_then_infer(self, tmp_path, capsys):
        """search --out, then export + infer, with no access to anything
        but the saved run and the artifact file."""
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        out_path = str(run_dir / "result.json")
        assert main(["search", "--scale", "unit", "--seed", "2",
                     "--no-final-training", "--quiet",
                     "--out", out_path]) == 0
        assert main(["export", out_path]) == 0
        out = capsys.readouterr().out
        assert "exported trial #" in out
        artifacts = list(run_dir.glob("*.bomp"))
        assert len(artifacts) == 1
        assert main(["infer", str(artifacts[0]), "--limit", "16"]) == 0
        out = capsys.readouterr().out
        assert "deployed top-1 accuracy" in out
        assert "peak INT8 activation memory" in out

    def test_parity_stage_budgets_on_exported_run(self, tmp_path, capsys):
        """Every requant segment of an exported model stays within its
        LSB budget.  Top-1 agreement is not asserted here: the unit-scale
        model is barely trained, so argmax flips on near-zero margins are
        legitimate (see conftest docstring); a *stage*-level FAIL would be
        a genuine engine bug."""
        out_path = str(tmp_path / "result.json")
        assert main(["search", "--scale", "unit", "--seed", "2",
                     "--no-final-training", "--quiet",
                     "--out", out_path]) == 0
        artifact_path = str(tmp_path / "model.bomp")
        assert main(["export", out_path, "--out", artifact_path]) == 0
        main(["infer", artifact_path, "--limit", "16", "--parity"])
        out = capsys.readouterr().out
        stage_lines = [line for line in out.splitlines()
                       if "(budget" in line]
        assert stage_lines
        assert all(line.strip().startswith("ok") for line in stage_lines)

    def test_export_bad_source_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="export failed"):
            main(["export", str(tmp_path)])
