"""Compiler tests: stage structure, error paths, grid plumbing."""

import numpy as np
import pytest

from repro.infer import CompileError, compile_model
from repro.infer.compile import INT32_MAX, INT32_MIN
from repro.nn.conv import Conv2D
from repro.nn.layers import BatchNorm2D, Dense, Flatten, ReLU
from repro.nn.network import Sequential
from repro.nn.pooling import AvgPool2D, Dropout, MaxPool2D
from repro.quant import QuantizationPolicy, apply_policy, calibrate
from repro.space import build_model

from .conftest import make_quantized_model


def _tagged(layer):
    layer.quant_slot = "w"
    return layer


@pytest.fixture
def custom_model(rng):
    """Bare-layer graph: conv+BN+ReLU, maxpool, biased conv feeding an
    avgpool (deferred clamp), dropout, flatten, classifier."""
    model = Sequential([
        _tagged(Conv2D(3, 4, 3, rng=rng, name="c1")),
        BatchNorm2D(4, name="bn1"),
        ReLU(name="r1"),
        MaxPool2D(2),
        _tagged(Conv2D(4, 6, 3, use_bias=True, rng=rng, name="c2")),
        AvgPool2D(2),
        Dropout(0.2),
        Flatten(),
        _tagged(Dense(24, 10, rng=rng, name="fc")),
    ])
    # nonzero conv bias so compilation must fold it into the accumulator
    model.layers[4].bias.data = np.random.default_rng(7).normal(
        0.0, 0.5, 6).astype(np.float32)
    apply_policy(model, QuantizationPolicy({"w": 8}))
    x = np.random.default_rng(3).normal(
        size=(32, 8, 8, 3)).astype(np.float32)
    calibrate(model, x)
    model.set_training(False)
    return model, x


class TestCompile:
    def test_stage_graph_shape(self, program8, model8):
        from repro.quant.apply import quantizable_layers
        kinds = [s.kind for s in program8.stages]
        assert kinds[-1] == "dense"
        assert "gap" in kinds
        weighted = [k for k in kinds if k in ("conv", "dw", "dense")]
        assert len(weighted) == len(quantizable_layers(model8))
        # shapes chain: each stage consumes its predecessor's output
        for prev, cur in zip(program8.stages, program8.stages[1:]):
            assert cur.in_shape == prev.out_shape

    def test_macs_match_builder_accounting(self, program8, model8,
                                           infer_dataset):
        from repro.space.builder import count_macs
        size = infer_dataset.x_test.shape[1]
        assert program8.total_macs() == count_macs(model8, (size, size))

    def test_residual_stages_save_inputs(self, program8):
        sources = {s.residual_from for s in program8.stages
                   if s.residual_from is not None}
        assert sources  # the seed arch has residual bottlenecks
        for src in sources:
            assert program8.stages[src].save_input
            assert program8.stages[src].kind in ("conv", "dw")

    def test_residual_stages_get_wider_budget(self, program8):
        for stage in program8.stages:
            if stage.residual_from is not None:
                assert stage.round_steps == 4
            elif stage.kind in ("conv", "dw"):
                assert stage.round_steps == 2

    def test_gap_reapplies_range_clamp(self, program8):
        gap = next(s for s in program8.stages if s.kind == "gap")
        assert gap.clamp_lo == 0
        assert 0 < gap.clamp_hi <= 2 ** 16

    def test_weights_are_integer_codes(self, program8):
        for stage in program8.stages:
            if stage.weight is not None:
                assert stage.weight.dtype.kind == "i"
                qmax = 2 ** (stage.weight_bits - 1) - 1
                assert np.abs(stage.weight).max() <= qmax

    def test_uncalibrated_model_rejected(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        apply_policy(model, c10_space.seed_policy(8))
        with pytest.raises(CompileError):
            compile_model(model, 8)

    def test_unquantized_model_rejected(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        with pytest.raises(CompileError):
            compile_model(model, 8)

    def test_wide_bits_rejected(self, c10_space, infer_dataset):
        space_16 = type(c10_space)("cifar10", bitwidth_choices=(4, 16))
        model = make_quantized_model(space_16, space_16.seed_policy(16),
                                     infer_dataset, float_epochs=0,
                                     qaft_epochs=0)
        with pytest.raises(CompileError, match="8-bit"):
            compile_model(model, infer_dataset.x_test.shape[1])

    def test_non_classifier_graph_rejected(self, rng):
        model = Sequential([Dense(8, 4, rng=rng), Dense(4, 2, rng=rng)])
        with pytest.raises(CompileError):
            compile_model(model, 8)


class TestCustomGraph:
    """Bare-layer peephole path: conv [+BN] [+ReLU], explicit pools,
    dropout elision, layer-bias folding, and genuine clamp deferral."""

    def test_flattening_and_stage_kinds(self, custom_model):
        model, _ = custom_model
        program = compile_model(model, 8, name="custom")
        kinds = [s.kind for s in program.stages]
        # dropout vanishes; everything else maps one-to-one
        assert kinds == ["conv", "maxpool", "conv", "avgpool", "flatten",
                        "dense"]
        assert program.stages[-1].out_shape == (10,)

    def test_relu_clamps_at_zero_point_only(self, custom_model):
        model, _ = custom_model
        program = compile_model(model, 8, name="custom")
        c1 = program.stages[0]
        # plain ReLU: floor at the output zero-point, no 6/s_y ceiling
        assert c1.clamp_lo == c1.out_zp
        assert c1.clamp_hi == 2 ** 8 - 1

    def test_deferred_clamp_before_avgpool(self, custom_model):
        model, _ = custom_model
        program = compile_model(model, 8, name="custom")
        c2 = program.stages[2]
        # activation-free conv feeding a pool: range clamp fully deferred
        assert (c2.clamp_lo, c2.clamp_hi) == (INT32_MIN, INT32_MAX)
        pool = program.stages[3]
        assert pool.kind == "avgpool"
        assert (pool.clamp_lo, pool.clamp_hi) == (0, 2 ** 8 - 1)
        assert pool.round_steps == 1
        maxpool = program.stages[1]
        assert maxpool.round_steps == 0

    def test_layer_bias_is_folded(self, custom_model):
        model, _ = custom_model
        program = compile_model(model, 8, name="custom")
        c2 = program.stages[2]
        assert np.abs(c2.bias_acc).max() > 0

    def test_integer_run_tracks_fake_quant(self, custom_model):
        from repro.infer import check_parity
        model, x = custom_model
        program = compile_model(model, 8, name="custom")
        report = check_parity(model, program, x)
        assert report.ok(min_agreement=0.99), report.format()
