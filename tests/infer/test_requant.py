"""Unit tests for the fixed-point requantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infer import (quantize_multiplier, quantize_multipliers,
                         requantize, rounding_doubling_high_mul,
                         rounding_right_shift)


class TestQuantizeMultiplier:
    def test_reconstructs_multiplier(self):
        for m in (0.5, 0.123456, 1.0, 1.7, 1e-6, 3.75, 2.0 ** -20):
            q, shift = quantize_multiplier(m)
            assert 2 ** 30 <= q < 2 ** 31
            assert q * 2.0 ** (shift - 31) == pytest.approx(m, rel=2e-9)

    def test_exact_powers_of_two(self):
        for exp in (-8, -1, 0, 1, 5):
            q, shift = quantize_multiplier(2.0 ** exp)
            assert q == 2 ** 30
            assert shift == exp + 1
            assert q * 2.0 ** (shift - 31) == 2.0 ** exp

    def test_degenerate_zero(self):
        assert quantize_multiplier(0.0) == (0, 0)
        assert quantize_multiplier(-1.0) == (0, 0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            quantize_multiplier(float("inf"))
        with pytest.raises(ValueError):
            quantize_multiplier(float("nan"))

    def test_vector_form_matches_scalar(self):
        ms = np.array([0.25, 0.7, 1.3, 0.0, 1e-4])
        qs, shifts = quantize_multipliers(ms)
        for m, q, shift in zip(ms, qs, shifts):
            assert (int(q), int(shift)) == quantize_multiplier(float(m))


class TestRoundingPrimitives:
    def test_high_mul_is_rounded_product(self):
        x = np.array([0, 1, -1, 1000, -1000, 2 ** 30], dtype=np.int64)
        q = (1 << 30) + 12345
        # round-half-up(x*q / 2^31), in exact (Python int) arithmetic
        expected = [(int(xi) * q + 2 ** 30) // 2 ** 31 for xi in x]
        np.testing.assert_array_equal(rounding_doubling_high_mul(x, q),
                                      expected)

    def test_right_shift_rounds_half_up(self):
        v = np.array([5, 6, 7, -5, -6, -7], dtype=np.int64)
        np.testing.assert_array_equal(rounding_right_shift(v, 2),
                                      [1, 2, 2, -1, -1, -2])

    def test_right_shift_zero_is_identity(self):
        v = np.array([3, -3], dtype=np.int64)
        np.testing.assert_array_equal(rounding_right_shift(v, 0), v)

    def test_right_shift_rejects_negative(self):
        with pytest.raises(ValueError):
            rounding_right_shift(np.array([1]), -1)


class TestRequantize:
    def test_multiplier_one_is_exact(self):
        """M = 1 (dead-BN-channel substitution) must be the identity."""
        q, shift = quantize_multiplier(1.0)
        acc = np.array([-1000, -1, 0, 1, 7, 123456], dtype=np.int64)
        np.testing.assert_array_equal(requantize(acc, q, shift), acc)

    @given(m=st.floats(1e-6, 8.0), acc=st.integers(-2 ** 24, 2 ** 24))
    @settings(max_examples=200, deadline=None)
    def test_within_one_lsb_of_float(self, m, acc):
        """requantize(acc, M) stays within 1 of round(acc * M)."""
        q, shift = quantize_multiplier(m)
        got = int(requantize(np.array([acc], dtype=np.int64), q, shift)[0])
        assert abs(got - round(acc * m)) <= 1

    def test_per_channel_broadcast(self):
        acc = np.ones((2, 3), dtype=np.int64) * 1024
        qs, shifts = quantize_multipliers(np.array([0.5, 1.0, 2.0]))
        out = requantize(acc, qs, shifts)
        np.testing.assert_array_equal(out, [[512, 1024, 2048]] * 2)

    def test_zero_multiplier_zeroes_output(self):
        acc = np.array([123, -456], dtype=np.int64)
        np.testing.assert_array_equal(requantize(acc, 0, 0), [0, 0])


class TestVectorScalarParity:
    """quantize_multipliers must be element-wise identical to the scalar
    decomposition over the whole multiplier range the compiler emits."""

    def test_wide_sweep_matches_scalar(self):
        rng = np.random.default_rng(17)
        ms = np.concatenate([
            np.geomspace(2.0 ** -40, 8.0, 1501),       # 48 octaves, dense
            2.0 ** np.arange(-35.0, 4.0),              # exact powers of two
            np.nextafter(2.0 ** np.arange(-20.0, 3.0), np.inf),
            np.nextafter(2.0 ** np.arange(-20.0, 3.0), -np.inf),
            rng.uniform(1e-9, 4.0, 500),               # typical M range
            [0.0, -1.0, -0.25, 2.0 ** -45, 1.0 - 2.0 ** -53],
        ])
        qs, shifts = quantize_multipliers(ms)
        for m, q, shift in zip(ms, qs, shifts):
            assert (int(q), int(shift)) == quantize_multiplier(float(m)), m

    def test_mantissa_range_invariant(self):
        ms = np.geomspace(1e-12, 8.0, 4001)
        qs, _ = quantize_multipliers(ms)
        assert np.all(qs >= 2 ** 30) and np.all(qs < 2 ** 31)

    def test_rejects_non_finite_vector(self):
        with pytest.raises(ValueError):
            quantize_multipliers(np.array([0.5, np.inf]))
        with pytest.raises(ValueError):
            quantize_multipliers(np.array([np.nan]))


class TestRequantizeInto:
    """The fused in-place kernel must match requantize() bit-for-bit."""

    def _plan(self, ms):
        from repro.infer.requant import RequantPlan
        qs, shifts = quantize_multipliers(ms)
        return RequantPlan.build(qs, shifts), qs, shifts

    def test_matches_reference_per_channel(self):
        from repro.infer.requant import requantize_into
        rng = np.random.default_rng(5)
        ms = np.concatenate([rng.uniform(1e-6, 0.9, 13), [1.0, 2.0, 3.5]])
        plan, qs, shifts = self._plan(ms)
        # respect the gemmlowp input contract |acc << spos| < 2**31:
        # the largest positive pre-shift here is 2 (m = 3.5)
        acc = rng.integers(-(2 ** 28), 2 ** 28,
                           size=(64, ms.size)).astype(np.int32)
        work = np.empty(acc.shape, dtype=np.int64)
        got = requantize_into(acc, plan, work)
        np.testing.assert_array_equal(
            got, requantize(acc.astype(np.int64), qs, shifts))
        assert got is work                     # truly in place

    @given(m=st.floats(1e-6, 8.0), acc=st.integers(-2 ** 27, 2 ** 27))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_property(self, m, acc):
        from repro.infer.requant import requantize_into
        plan, qs, shifts = self._plan(np.array([m]))
        accs = np.array([[acc]], dtype=np.int32)
        work = np.empty((1, 1), dtype=np.int64)
        got = int(requantize_into(accs, plan, work)[0, 0])
        ref = int(requantize(accs.astype(np.int64), qs, shifts)[0, 0])
        assert got == ref

    def test_in_place_on_int64_residual_workspace(self):
        """The residual path requantizes its own int64 workspace in
        place (acc is work): must still match the reference."""
        from repro.infer.requant import requantize_into
        rng = np.random.default_rng(8)
        ms = rng.uniform(1e-4, 1.5, 6)
        plan, qs, shifts = self._plan(ms)
        vals = rng.integers(-(2 ** 28), 2 ** 28, size=(32, 6))
        work = vals.astype(np.int64)
        got = requantize_into(work, plan, work)
        np.testing.assert_array_equal(got, requantize(vals, qs, shifts))
