"""Unit tests for the fixed-point requantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infer import (quantize_multiplier, quantize_multipliers,
                         requantize, rounding_doubling_high_mul,
                         rounding_right_shift)


class TestQuantizeMultiplier:
    def test_reconstructs_multiplier(self):
        for m in (0.5, 0.123456, 1.0, 1.7, 1e-6, 3.75, 2.0 ** -20):
            q, shift = quantize_multiplier(m)
            assert 2 ** 30 <= q < 2 ** 31
            assert q * 2.0 ** (shift - 31) == pytest.approx(m, rel=2e-9)

    def test_exact_powers_of_two(self):
        for exp in (-8, -1, 0, 1, 5):
            q, shift = quantize_multiplier(2.0 ** exp)
            assert q == 2 ** 30
            assert shift == exp + 1
            assert q * 2.0 ** (shift - 31) == 2.0 ** exp

    def test_degenerate_zero(self):
        assert quantize_multiplier(0.0) == (0, 0)
        assert quantize_multiplier(-1.0) == (0, 0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            quantize_multiplier(float("inf"))
        with pytest.raises(ValueError):
            quantize_multiplier(float("nan"))

    def test_vector_form_matches_scalar(self):
        ms = np.array([0.25, 0.7, 1.3, 0.0, 1e-4])
        qs, shifts = quantize_multipliers(ms)
        for m, q, shift in zip(ms, qs, shifts):
            assert (int(q), int(shift)) == quantize_multiplier(float(m))


class TestRoundingPrimitives:
    def test_high_mul_is_rounded_product(self):
        x = np.array([0, 1, -1, 1000, -1000, 2 ** 30], dtype=np.int64)
        q = (1 << 30) + 12345
        # round-half-up(x*q / 2^31), in exact (Python int) arithmetic
        expected = [(int(xi) * q + 2 ** 30) // 2 ** 31 for xi in x]
        np.testing.assert_array_equal(rounding_doubling_high_mul(x, q),
                                      expected)

    def test_right_shift_rounds_half_up(self):
        v = np.array([5, 6, 7, -5, -6, -7], dtype=np.int64)
        np.testing.assert_array_equal(rounding_right_shift(v, 2),
                                      [1, 2, 2, -1, -1, -2])

    def test_right_shift_zero_is_identity(self):
        v = np.array([3, -3], dtype=np.int64)
        np.testing.assert_array_equal(rounding_right_shift(v, 0), v)

    def test_right_shift_rejects_negative(self):
        with pytest.raises(ValueError):
            rounding_right_shift(np.array([1]), -1)


class TestRequantize:
    def test_multiplier_one_is_exact(self):
        """M = 1 (dead-BN-channel substitution) must be the identity."""
        q, shift = quantize_multiplier(1.0)
        acc = np.array([-1000, -1, 0, 1, 7, 123456], dtype=np.int64)
        np.testing.assert_array_equal(requantize(acc, q, shift), acc)

    @given(m=st.floats(1e-6, 8.0), acc=st.integers(-2 ** 24, 2 ** 24))
    @settings(max_examples=200, deadline=None)
    def test_within_one_lsb_of_float(self, m, acc):
        """requantize(acc, M) stays within 1 of round(acc * M)."""
        q, shift = quantize_multiplier(m)
        got = int(requantize(np.array([acc], dtype=np.int64), q, shift)[0])
        assert abs(got - round(acc * m)) <= 1

    def test_per_channel_broadcast(self):
        acc = np.ones((2, 3), dtype=np.int64) * 1024
        qs, shifts = quantize_multipliers(np.array([0.5, 1.0, 2.0]))
        out = requantize(acc, qs, shifts)
        np.testing.assert_array_equal(out, [[512, 1024, 2048]] * 2)

    def test_zero_multiplier_zeroes_output(self):
        acc = np.array([123, -456], dtype=np.int64)
        np.testing.assert_array_equal(requantize(acc, 0, 0), [0, 0])
