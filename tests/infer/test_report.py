"""Deployment report: packed sizes vs the analytic accounting, and
liveness-based peak activation memory."""

import numpy as np
import pytest

from repro.infer import deployment_report, format_report
from repro.infer.compile import Grid, Stage
from repro.infer.engine import Program
from repro.infer.report import activation_liveness
from repro.quant import model_size_bits
from repro.quant.apply import BIAS_BITS, quantizable_layers
from repro.quant.size import FLOAT_BITS, layer_sizes


class TestWeightAccounting:
    def test_weight_bytes_are_packed_and_padded(self, program8):
        report = deployment_report(program8)
        assert report.layers  # one entry per weighted stage
        for layer in report.layers:
            expected = -(-layer.weight_count * layer.weight_bits // 8)
            assert layer.weight_bytes == expected
            assert layer.weight_bits == 8

    def test_overhead_matches_size_model_formula(self, program8):
        for layer in deployment_report(program8).layers:
            out_channels = layer.out_shape[-1]
            bits = out_channels * BIAS_BITS
            if layer.weight_bits < FLOAT_BITS:
                bits += out_channels * FLOAT_BITS + 2 * FLOAT_BITS
            assert layer.overhead_bytes == bits // 8

    def test_totals_agree_with_analytic_accounting(self, model8,
                                                   program8):
        """Packed bytes == quant.size analytic bits, up to the <=1 byte
        per layer of bit-packing padding."""
        report = deployment_report(program8)
        analytic_bits = model_size_bits(model8)
        padding = report.total_bytes - analytic_bits / 8
        assert 0 <= padding < len(report.layers)

    def test_per_layer_counts_match_model(self, model8, program8):
        by_name = {s.name: s for s in layer_sizes(model8)}
        for layer in deployment_report(program8).layers:
            assert layer.weight_count == by_name[layer.name].n_weights

    def test_macs_total(self, program8):
        report = deployment_report(program8)
        assert report.total_macs == program8.total_macs()
        assert report.total_macs == sum(l.macs for l in report.layers)

    def test_mixed_policy_smaller_than_8bit(self, model8, model_mixed,
                                            infer_dataset):
        from repro.infer import compile_model
        size = infer_dataset.x_train.shape[1]
        full = deployment_report(compile_model(model8, size))
        mixed = deployment_report(compile_model(model_mixed, size))
        assert mixed.weight_bytes < full.weight_bytes


class TestLiveness:
    def _program(self, stages):
        return Program(stages=stages, input_grid=Grid(1.0, 0, 255),
                       image_size=4, in_channels=3, name="fake")

    def test_hand_computed_peak_with_residual(self):
        """in/out live during each stage; a residual source's input stays
        live from the stage after the source until its consumer."""
        stages = [
            Stage("s0", "conv", (4, 4, 3), (4, 4, 8)),    # 48 + 128
            Stage("s1", "conv", (4, 4, 8), (4, 4, 8),     # 128 + 128
                  save_input=True),
            Stage("s2", "conv", (4, 4, 8), (4, 4, 8),     # 128+128+128
                  residual_from=1),
            Stage("s3", "gap", (4, 4, 8), (8,)),          # 128 + 8
        ]
        peak, peak_stage = activation_liveness(self._program(stages))
        assert (peak, peak_stage) == (384, "s2")

    def test_hand_computed_peak_without_residual(self):
        stages = [
            Stage("wide", "conv", (4, 4, 3), (4, 4, 16)),  # 48 + 256
            Stage("narrow", "conv", (4, 4, 16), (2, 2, 16)),  # 256 + 64
        ]
        peak, peak_stage = activation_liveness(self._program(stages))
        assert (peak, peak_stage) == (320, "narrow")

    def test_residual_not_double_counted_at_source(self):
        """During the source stage itself the saved tensor IS its input
        operand — it must not be counted twice."""
        stages = [
            Stage("src", "conv", (4, 4, 8), (2, 2, 4), save_input=True),
            Stage("mid", "conv", (2, 2, 4), (2, 2, 4)),
            Stage("snk", "conv", (2, 2, 4), (2, 2, 4), residual_from=0),
        ]
        peak, peak_stage = activation_liveness(self._program(stages))
        # src: 128+16 = 144; mid: 16+16+128 = 160; snk: 16+16+128 = 160
        assert peak == 160
        assert peak_stage == "mid"

    def test_real_program_peak(self, program8):
        report = deployment_report(program8)
        biggest = max(int(np.prod(s.in_shape)) + int(np.prod(s.out_shape))
                      for s in program8.stages)
        assert report.peak_activation_bytes >= biggest
        assert report.peak_stage in {s.name for s in program8.stages}


class TestFormatting:
    def test_format_report_renders_all_layers(self, model8, program8):
        text = format_report(deployment_report(program8))
        for layer in quantizable_layers(model8):
            assert layer.name in text
        assert "TOTAL" in text
        assert "peak INT8 activation memory" in text

    def test_total_kb_property(self, program8):
        report = deployment_report(program8)
        assert report.total_kb == pytest.approx(report.total_bytes / 1024)
