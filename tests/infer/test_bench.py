"""Inference-throughput bench: record shape, the ``BENCH_infer.json``
schema contract, and the trajectory-script entry point."""

import json

import pytest

from repro.infer.bench import (BENCH_SCHEMA_VERSION, RECORD_FIELDS,
                               append_bench_record, measure_inference)
from repro.obs.schema import validate_bench, validate_path


@pytest.fixture(scope="module")
def record():
    """One tiny measurement — untrained model, 8 images, 8x8 inputs."""
    return measure_inference(dataset="cifar10", bits=8, image_size=8,
                             n_images=8, batch_size=8, seed=3,
                             calibration_images=8)


class TestMeasureInference:
    def test_record_carries_every_contract_field(self, record):
        for field in RECORD_FIELDS:
            assert field in record, field

    def test_record_values_sane(self, record):
        assert record["n_images"] == 8
        assert record["bits"] == 8
        assert record["stages"] > 0
        assert record["macs_per_image"] > 0
        assert record["float_s"] >= 0 and record["int_s"] >= 0
        assert 0.0 <= record["top1_agreement"] <= 1.0

    def test_validates_under_infer_contract(self, record):
        payload = {"schema": BENCH_SCHEMA_VERSION, "runs": [record]}
        assert validate_bench(payload, "BENCH_infer.json") == []

    def test_infer_record_fails_parallel_contract(self, record):
        """The two bench families are distinct contracts: an infer record
        must not silently pass as a parallel-engine record."""
        payload = {"schema": BENCH_SCHEMA_VERSION, "runs": [record]}
        assert validate_bench(payload, "BENCH_parallel.json")

    def test_missing_field_flagged(self, record):
        broken = {k: v for k, v in record.items() if k != "int_ips"}
        payload = {"schema": BENCH_SCHEMA_VERSION, "runs": [broken]}
        problems = validate_bench(payload, "BENCH_infer.json")
        assert any("int_ips" in p for p in problems)

    def test_wrong_schema_version_flagged(self, record):
        payload = {"schema": 99, "runs": [record]}
        assert validate_bench(payload, "BENCH_infer.json")


class TestAppendAndValidatePath:
    def test_append_creates_and_accumulates(self, record, tmp_path):
        path = tmp_path / "BENCH_infer.json"
        append_bench_record(path, record)
        append_bench_record(path, record)
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert len(payload["runs"]) == 2
        # validate_path dispatches on the BENCH_infer filename
        assert validate_path(path) == []

    def test_unknown_extra_fields_are_kept(self, record, tmp_path):
        path = tmp_path / "BENCH_infer.json"
        append_bench_record(path, dict(record, commit="abc123"))
        payload = json.loads(path.read_text())
        assert payload["runs"][0]["commit"] == "abc123"
        assert validate_path(path) == []


class TestTrajectoryScript:
    def test_infer_flag_appends_to_bench_log(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path
        spec = importlib.util.spec_from_file_location(
            "bench_trajectory",
            Path(__file__).resolve().parents[2]
            / "scripts/bench_trajectory.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        out = tmp_path / "BENCH_infer.json"
        assert module.main(["--infer", "--n-images", "8",
                            "--out", str(out)]) == 0
        assert validate_path(out) == []
        assert "appended to" in capsys.readouterr().out


class TestSchemaV2:
    def test_record_carries_v2_fields(self, record):
        assert record["arena_bytes"] > 0
        assert record["allocs_per_image"] == 0
        for field in ("platform", "python", "numpy", "cpus"):
            assert field in record["host"]

    def test_v1_file_is_migrated_on_append(self, record, tmp_path):
        """Appending to a schema-1 file bumps the stamp and backfills the
        v2 fields of pre-existing runs with null."""
        from repro.infer.bench import V2_FIELDS
        path = tmp_path / "BENCH_infer.json"
        v1_run = {k: v for k, v in record.items() if k not in V2_FIELDS}
        path.write_text(json.dumps({"schema": 1, "runs": [v1_run]}))
        append_bench_record(path, record)
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION == 2
        assert len(payload["runs"]) == 2
        migrated, fresh = payload["runs"]
        for field in V2_FIELDS:
            assert migrated[field] is None
        assert fresh["arena_bytes"] == record["arena_bytes"]
        from repro.obs.schema import validate_path
        assert validate_path(path) == []

    def test_bad_v2_values_flagged(self, record):
        bad = dict(record, arena_bytes=-5, allocs_per_image="lots",
                   host={"platform": "x"})
        payload = {"schema": BENCH_SCHEMA_VERSION, "runs": [bad]}
        problems = validate_bench(payload, "BENCH_infer.json")
        assert any("arena_bytes" in p for p in problems)
        assert any("allocs_per_image" in p for p in problems)
        assert any("host missing" in p for p in problems)

    def test_null_v2_values_accepted(self, record):
        nulled = dict(record, arena_bytes=None, allocs_per_image=None,
                      host=None)
        payload = {"schema": BENCH_SCHEMA_VERSION, "runs": [nulled]}
        assert validate_bench(payload, "BENCH_infer.json") == []
