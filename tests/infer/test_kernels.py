"""Integer kernels vs naive references, plus the no-float contract."""

import numpy as np
import pytest

from repro.infer import (avg_pool_int, conv2d_int, dense_int,
                         depthwise_conv2d_int, global_avg_pool_int,
                         max_pool_int)
from repro.infer.kernels import rounded_mean_int
from repro.nn import functional as F


def naive_conv(x, weight, stride, padding):
    """Loop reference for standard convolution on integer arrays."""
    kernel = weight.shape[0]
    padded, _, _ = F.pad_input(x, kernel, stride, padding)
    out_h = F.conv_output_size(x.shape[1], kernel, stride, padding)
    out_w = F.conv_output_size(x.shape[2], kernel, stride, padding)
    out = np.zeros((x.shape[0], out_h, out_w, weight.shape[3]),
                   dtype=np.int64)
    for n in range(x.shape[0]):
        for i in range(out_h):
            for j in range(out_w):
                patch = padded[n, i * stride:i * stride + kernel,
                               j * stride:j * stride + kernel, :]
                for co in range(weight.shape[3]):
                    out[n, i, j, co] = int(
                        (patch.astype(np.int64)
                         * weight[:, :, :, co].astype(np.int64)).sum())
    return out


@pytest.fixture
def int_rng():
    return np.random.default_rng(17)


class TestConv:
    @pytest.mark.parametrize("kernel,stride", [(1, 1), (1, 2), (3, 1),
                                               (3, 2), (5, 1)])
    def test_matches_naive(self, int_rng, kernel, stride):
        x = int_rng.integers(-128, 128, size=(2, 7, 7, 3)).astype(np.int32)
        w = int_rng.integers(-8, 8, size=(kernel, kernel, 3, 5)).astype(
            np.int32)
        got = conv2d_int(x, w, stride, "same")
        np.testing.assert_array_equal(got, naive_conv(x, w, stride, "same"))

    def test_rejects_float_input(self, int_rng):
        x = int_rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        w = np.ones((3, 3, 2, 2), dtype=np.int32)
        with pytest.raises(TypeError):
            conv2d_int(x, w, 1, "same")
        with pytest.raises(TypeError):
            conv2d_int(x.astype(np.int32), w.astype(np.float32), 1, "same")

    def test_depthwise_matches_per_channel_conv(self, int_rng):
        x = int_rng.integers(-64, 64, size=(2, 6, 6, 4)).astype(np.int32)
        w = int_rng.integers(-8, 8, size=(3, 3, 4)).astype(np.int32)
        got = depthwise_conv2d_int(x, w, 2, "same")
        # each channel is an independent 1-in-1-out convolution
        for c in range(4):
            expected = naive_conv(x[..., c:c + 1],
                                  w[:, :, c][..., None, None], 2, "same")
            np.testing.assert_array_equal(got[..., c], expected[..., 0])

    def test_dense(self, int_rng):
        x = int_rng.integers(-100, 100, size=(5, 8)).astype(np.int32)
        w = int_rng.integers(-8, 8, size=(8, 3)).astype(np.int32)
        np.testing.assert_array_equal(
            dense_int(x, w), x.astype(np.int64) @ w.astype(np.int64))


class TestPooling:
    def test_rounded_mean_rounds_half_up(self):
        x = np.array([[1, 2], [2, 2]], dtype=np.int32)  # mean 7/4 = 1.75
        assert rounded_mean_int(x, axis=(0, 1)) == 2
        x = np.array([[1, 1], [2, 2]], dtype=np.int32)  # mean 6/4 = 1.5
        assert rounded_mean_int(x, axis=(0, 1)) == 2
        x = np.array([[1, 1], [1, 2]], dtype=np.int32)  # mean 5/4 = 1.25
        assert rounded_mean_int(x, axis=(0, 1)) == 1

    def test_global_avg_pool(self, int_rng):
        x = int_rng.integers(0, 255, size=(3, 4, 4, 6)).astype(np.int32)
        got = global_avg_pool_int(x)
        assert got.shape == (3, 6)
        expected = np.floor(x.mean(axis=(1, 2)) + 0.5).astype(np.int64)
        np.testing.assert_array_equal(got, expected)

    def test_avg_pool(self, int_rng):
        x = int_rng.integers(0, 255, size=(2, 4, 4, 3)).astype(np.int32)
        got = avg_pool_int(x, 2)
        assert got.shape == (2, 2, 2, 3)
        tile = x[0, :2, :2, 0]
        assert got[0, 0, 0, 0] == (int(tile.sum()) + 2) // 4

    def test_max_pool(self, int_rng):
        x = int_rng.integers(-50, 50, size=(2, 6, 6, 3)).astype(np.int32)
        got = max_pool_int(x, 3)
        assert got.shape == (2, 2, 2, 3)
        assert got[1, 1, 1, 2] == x[1, 3:6, 3:6, 2].max()

    def test_pools_reject_float(self):
        x = np.zeros((1, 4, 4, 1), dtype=np.float32)
        for fn in (global_avg_pool_int,
                   lambda a: avg_pool_int(a, 2),
                   lambda a: max_pool_int(a, 2)):
            with pytest.raises(TypeError):
                fn(x)
