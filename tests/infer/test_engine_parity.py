"""End-to-end parity of the integer engine against the fake-quant
reference, the no-float-on-hot-path contract, and obs instrumentation."""

import numpy as np
import pytest

from repro.infer import check_parity, compile_model
from repro.obs.trace import TraceRecorder, use_recorder


class TestParity:
    def test_homogeneous_8bit(self, model8, program8, infer_dataset):
        """Every requant segment within its LSB budget, >= 99% top-1
        agreement, on the full 256-image batch."""
        report = check_parity(model8, program8, infer_dataset.x_train)
        assert report.n_images == 256
        for stage in report.stages:
            assert stage.max_abs_diff <= stage.tolerance, report.format()
        assert report.top1_agreement >= 0.99, report.format()
        assert report.ok(min_agreement=0.99)

    def test_teacher_forced_logits_near_exact(self, model8, program8,
                                              infer_dataset):
        """With reference input codes, the final dense accumulates exactly;
        only float32-vs-float64 dequantization noise remains."""
        report = check_parity(model8, program8, infer_dataset.x_train[:64])
        assert report.max_logit_diff < 1e-3

    def test_mixed_precision_policy(self, model_mixed, infer_dataset):
        """The parity contract holds for a mixed {4..8}-bit policy too."""
        program = compile_model(model_mixed,
                                infer_dataset.x_train.shape[1],
                                name="mixed")
        report = check_parity(model_mixed, program, infer_dataset.x_train)
        assert report.n_images == 256
        assert report.ok(min_agreement=0.99), report.format()

    def test_mismatched_model_rejected(self, model8, model_mixed,
                                       infer_dataset):
        size = infer_dataset.x_train.shape[1]
        program = compile_model(model_mixed, size, name="mixed")
        x = infer_dataset.x_train[:8]
        # same architecture but different grids: budget must catch it, or
        # at minimum the report must not silently claim perfection
        report = check_parity(model8, program, x)
        assert not report.ok() or report.top1_agreement < 1.0


class TestNoFloatHotPath:
    def test_run_never_matmuls_floats(self, program8, infer_dataset,
                                      monkeypatch):
        """Monkeypatch np.matmul to forbid float operands during run().

        The only float arithmetic allowed is at the program boundary
        (input quantize, dense dequantize) and neither uses matmul.
        """
        real_matmul = np.matmul
        calls = []

        def guarded(a, b, *args, **kwargs):
            for operand in (a, b):
                dtype = np.asarray(operand).dtype
                if dtype.kind not in ("i", "u"):
                    raise AssertionError(
                        f"float matmul on the hot path: {dtype}")
            calls.append(1)
            return real_matmul(a, b, *args, **kwargs)

        monkeypatch.setattr(np, "matmul", guarded)
        logits = program8.run(infer_dataset.x_test[:32], batch_size=16)
        assert logits.shape == (32, 10)
        assert calls  # the guard actually saw the GEMMs

    def test_guard_fires_on_float(self, monkeypatch):
        """Sanity: the guard in the previous test is not a no-op."""
        real_matmul = np.matmul

        def guarded(a, b, *args, **kwargs):
            for operand in (a, b):
                if np.asarray(operand).dtype.kind not in ("i", "u"):
                    raise AssertionError("float matmul")
            return real_matmul(a, b, *args, **kwargs)

        monkeypatch.setattr(np, "matmul", guarded)
        with pytest.raises(AssertionError):
            np.matmul(np.ones((2, 2)), np.ones((2, 2)))


class TestInstrumentation:
    def test_spans_and_counters(self, program8, infer_dataset):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            program8.run(infer_dataset.x_test[:32], batch_size=16)
        spans = [e for e in recorder.events if e.get("type") == "span"]
        batch_spans = [s for s in spans if s["name"] == "infer.batch"]
        assert len(batch_spans) == 2  # 32 images / batch 16
        stage_spans = [s for s in spans if s["name"].startswith("infer.")
                       and s["name"] != "infer.batch"]
        # one span per stage per batch, tagged with the op kind
        assert len(stage_spans) == 2 * len(program8.stages)
        kinds = {s["tags"]["op"] for s in stage_spans}
        assert {"conv", "dense", "gap"} <= kinds

        counters = [e for e in recorder.events
                    if e.get("type") == "counter"]
        images = sum(c["value"] for c in counters
                     if c["name"] == "infer.images")
        assert images == 32
        macs = sum(c["value"] for c in counters
                   if c["name"] == "infer.macs")
        assert macs == 32 * program8.total_macs()

    def test_silent_without_recorder(self, program8, infer_dataset):
        """With the null recorder, run() must not grow any event list."""
        logits = program8.run(infer_dataset.x_test[:8], batch_size=8)
        assert logits.shape == (8, 10)
