"""Content-hash artifact cache: hits, staleness eviction, LRU bound."""

import threading

import numpy as np
import pytest

from repro.infer import build_artifact, save_artifact
from repro.infer.artifact import (ArtifactCache, default_artifact_cache,
                                  load_artifact_cached)
from repro.space import MixedPrecisionGenome

from .conftest import make_quantized_model


@pytest.fixture(scope="module")
def artifact_file(c10_space, infer_dataset, tmp_path_factory):
    model = make_quantized_model(c10_space, c10_space.seed_policy(8),
                                 infer_dataset, float_epochs=0,
                                 qaft_epochs=0)
    genome = MixedPrecisionGenome(c10_space.seed_arch(),
                                  c10_space.seed_policy(8))
    artifact = build_artifact(model, genome, num_classes=10,
                              image_size=infer_dataset.x_train.shape[1])
    path = tmp_path_factory.mktemp("cache") / "model.bomp"
    return save_artifact(artifact, path)


@pytest.fixture(scope="module")
def artifact_file_4bit(c10_space, infer_dataset, tmp_path_factory):
    model = make_quantized_model(c10_space, c10_space.seed_policy(4),
                                 infer_dataset, float_epochs=0,
                                 qaft_epochs=0)
    genome = MixedPrecisionGenome(c10_space.seed_arch(),
                                  c10_space.seed_policy(4))
    artifact = build_artifact(model, genome, num_classes=10,
                              image_size=infer_dataset.x_train.shape[1])
    path = tmp_path_factory.mktemp("cache4") / "model4.bomp"
    return save_artifact(artifact, path)


class TestCacheHits:
    def test_second_load_reuses_program(self, artifact_file):
        cache = ArtifactCache()
        first = cache.load(artifact_file)
        second = cache.load(artifact_file)
        assert first.program is second.program
        assert first.artifact is second.artifact
        assert cache.hits == 1 and cache.misses == 1

    def test_same_bytes_other_path_hits(self, artifact_file, tmp_path):
        copy = tmp_path / "elsewhere.bomp"
        copy.write_bytes(artifact_file.read_bytes())
        cache = ArtifactCache()
        assert cache.load(artifact_file).program \
            is cache.load(copy).program
        assert cache.hits == 1

    def test_cached_program_still_correct(self, artifact_file,
                                          infer_dataset):
        cache = ArtifactCache()
        entry = cache.load(artifact_file)
        x = infer_dataset.x_train[:8]
        expected = entry.artifact.compile(name="fresh").run(
            x, batch_size=8)
        again = cache.load(artifact_file)
        assert np.array_equal(again.program.run(x, batch_size=8),
                              expected)


class TestStaleness:
    def test_changed_file_drops_stale_entry(self, artifact_file,
                                            artifact_file_4bit,
                                            tmp_path):
        target = tmp_path / "model.bomp"
        target.write_bytes(artifact_file.read_bytes())
        cache = ArtifactCache()
        old = cache.load(target)
        target.write_bytes(artifact_file_4bit.read_bytes())
        new = cache.load(target)
        assert new.digest != old.digest
        assert cache.misses == 2
        # the stale entry is gone, not merely demoted
        assert len(cache) == 1

    def test_invalidate_forces_recompile(self, artifact_file):
        cache = ArtifactCache()
        old = cache.load(artifact_file)
        cache.invalidate(artifact_file)
        assert len(cache) == 0
        new = cache.load(artifact_file)
        assert new.program is not old.program
        assert new.digest == old.digest


class TestBounds:
    def test_lru_evicts_oldest(self, artifact_file, artifact_file_4bit,
                               tmp_path):
        cache = ArtifactCache(capacity=1)
        cache.load(artifact_file)
        cache.load(artifact_file_4bit)
        assert len(cache) == 1
        cache.load(artifact_file)               # evicted -> miss again
        assert cache.misses == 3 and cache.hits == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ArtifactCache(capacity=0)

    def test_concurrent_loads_share_one_program(self, artifact_file):
        cache = ArtifactCache()
        seen = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            seen.append(cache.load(artifact_file))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 1
        # losers of a compile race are discarded: later loads all serve
        # the single cached entry
        assert cache.load(artifact_file).program \
            is cache.load(artifact_file).program


class TestDefaultCache:
    def test_module_level_helper_uses_shared_cache(self, artifact_file):
        shared = default_artifact_cache()
        shared.invalidate(artifact_file)
        before = shared.misses
        entry = load_artifact_cached(artifact_file)
        again = load_artifact_cached(artifact_file)
        assert entry.program is again.program
        assert shared.misses == before + 1
