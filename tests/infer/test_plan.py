"""Arena-planner tests: liveness intervals, packing, aliasing."""

import numpy as np
import pytest

from repro.infer.compile import Stage
from repro.infer.plan import (liveness_intervals, peak_liveness, plan_arena)


def _chain(shapes, kinds=None):
    """A linear stage list with the given per-image shapes."""
    stages = []
    for i in range(len(shapes) - 1):
        kind = kinds[i] if kinds else "conv"
        stages.append(Stage(f"s{i}", kind, shapes[i], shapes[i + 1]))
    return stages


class TestLivenessIntervals:
    def test_linear_chain_lifetimes(self):
        stages = _chain([(4, 4, 3), (4, 4, 8), (2, 2, 8), (10,)])
        by_value = {iv.value: iv for iv in liveness_intervals(stages)}
        # input codes live only during stage 0
        assert (by_value[-1].start, by_value[-1].end) == (0, 0)
        # each intermediate dies at its consumer
        assert (by_value[0].start, by_value[0].end) == (0, 1)
        assert (by_value[1].start, by_value[1].end) == (1, 2)
        # the final value's interval is clamped to the last stage
        assert by_value[2].end == 2

    def test_residual_pins_source_value(self):
        stages = _chain([(4, 4, 8)] * 5)
        stages[1].save_input = True          # saved tensor = value 0
        stages[3].residual_from = 1
        by_value = {iv.value: iv for iv in liveness_intervals(stages)}
        # value 0 stays live from its producer through the project stage
        assert (by_value[0].start, by_value[0].end) == (0, 3)
        assert by_value[1].end == 2          # un-pinned neighbour unchanged

    def test_interval_elems_match_shapes(self):
        stages = _chain([(4, 4, 3), (2, 2, 16), (64,), (10,)],
                        kinds=["conv", "flatten", "dense"])
        for iv in liveness_intervals(stages):
            assert iv.elems == int(np.prod(iv.shape))


class TestPeakLiveness:
    def test_matches_bruteforce_sum(self):
        stages = _chain([(8, 8, 3), (8, 8, 16), (4, 4, 24), (2, 2, 24),
                         (96,), (10,)],
                        kinds=["conv", "conv", "avgpool", "flatten",
                               "dense"])
        intervals = liveness_intervals(stages)
        expected = max(
            sum(iv.elems for iv in intervals if iv.start <= t <= iv.end)
            for t in range(len(stages)))
        peak, stage_name = peak_liveness(stages)
        assert peak == expected
        assert stage_name in [s.name for s in stages]

    def test_residual_raises_peak(self):
        shapes = [(4, 4, 8)] * 5
        plain = _chain(shapes)
        pinned = _chain(shapes)
        pinned[1].save_input = True
        pinned[3].residual_from = 1
        assert peak_liveness(pinned)[0] > peak_liveness(plain)[0]


class TestPlanArena:
    def _assert_no_live_overlap(self, stages, plan):
        """Temporally overlapping values must occupy disjoint ranges."""
        intervals = {iv.value: iv for iv in liveness_intervals(stages)}
        slots = [s for s in plan.slots.values() if s.alias_of is None]
        for a in slots:
            for b in slots:
                if a.value >= b.value:
                    continue
                iva, ivb = intervals[a.value], intervals[b.value]
                if iva.start <= ivb.end and ivb.start <= iva.end:
                    disjoint = (a.offset + a.elems <= b.offset
                                or b.offset + b.elems <= a.offset)
                    assert disjoint, (a, b)

    def test_no_overlap_linear(self):
        stages = _chain([(8, 8, 3), (8, 8, 16), (4, 4, 32), (2, 2, 32),
                         (128,), (10,)],
                        kinds=["conv", "conv", "maxpool", "flatten",
                               "dense"])
        plan = plan_arena(stages)
        self._assert_no_live_overlap(stages, plan)
        assert plan.total_elems <= plan.naive_elems
        assert plan.total_elems >= plan.peak_elems

    def test_no_overlap_with_residual(self):
        stages = _chain([(4, 4, 8)] * 6)
        stages[1].save_input = True
        stages[4].residual_from = 1
        plan = plan_arena(stages)
        self._assert_no_live_overlap(stages, plan)
        # the pinned tensor coexists with every in-between value
        source = plan.slots[0]
        for value in (1, 2, 3):
            other = plan.slots[value]
            assert (source.offset + source.elems <= other.offset
                    or other.offset + other.elems <= source.offset)

    def test_flatten_aliases_producer(self):
        stages = _chain([(4, 4, 3), (2, 2, 16), (64,), (10,)],
                        kinds=["conv", "flatten", "dense"])
        plan = plan_arena(stages)
        alias = plan.slots[1]
        assert alias.alias_of == 0
        assert alias.offset == plan.slots[0].offset
        assert alias.shape == (64,)
        # aliasing adds no memory: arena fits input + conv output
        assert plan.total_elems == 4 * 4 * 3 + 2 * 2 * 16

    def test_final_value_owns_no_slot(self):
        stages = _chain([(4, 4, 3), (48,), (10,)],
                        kinds=["flatten", "dense"])
        plan = plan_arena(stages)
        assert len(stages) - 1 not in plan.slots

    def test_arena_bytes_scale_with_batch(self):
        stages = _chain([(4, 4, 3), (4, 4, 8), (10,)])
        plan = plan_arena(stages)
        assert plan.arena_bytes(4) == 4 * plan.arena_bytes(1)
        assert "arena plan" in plan.describe()

    def test_program_plan_consistent_with_report(self, program8):
        """The report's liveness figure is the planner's lower bound."""
        from repro.infer.report import activation_liveness
        plan = plan_arena(program8.stages)
        peak_elems, _ = activation_liveness(program8)
        assert plan.peak_elems == peak_elems
        assert plan.total_elems >= peak_elems
        self._assert_no_live_overlap(program8.stages, plan)
