"""Fixtures for the integer-inference suite.

The parity contract (>= 99% top-1 agreement) is only meaningful for a
confident classifier: an untrained network has near-zero logit margins,
so the engine's legitimate sub-LSB rounding drift flips argmax on a
large fraction of images.  The fixtures therefore overfit a small
single-mode synthetic set (float phase + QAFT phase), then re-impose the
BN structure the compiler must fold — a dead channel (multiplier-1
constant path) in every BN and one negative gamma (sign folded into the
weight codes).  Parity runs on the training images, where the overfit
model is maximally confident; parity is a numerical-equivalence
property, not a generalization property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_dataset
from repro.infer import compile_model
from repro.nn.layers import BatchNorm2D
from repro.nn.optim import SGD, ConstantLR
from repro.nn.trainer import Trainer
from repro.quant import apply_policy, calibrate
from repro.space import build_model


@pytest.fixture(scope="module")
def infer_dataset():
    """256 train images — the parity batch the issue specifies."""
    return make_synthetic_dataset(
        "infer-c10", num_classes=10, n_train=256, n_test=64,
        image_size=8, seed=11, n_modes=1, noise_sigma=0.3,
        label_noise=0.0)


def make_quantized_model(space, policy, dataset, seed=5,
                         float_epochs=15, qaft_epochs=6):
    model = build_model(space.seed_arch(), 10,
                        rng=np.random.default_rng(seed))
    trainer = Trainer(model, SGD(model.parameters(), ConstantLR(0.1)))
    trainer.fit(dataset.x_train, dataset.y_train, epochs=float_epochs,
                batch_size=32, rng=np.random.default_rng(seed + 2))
    # impose the BN paths the compiler must fold, then calibrate so the
    # activation grids see the edited network
    norms = [m for m in model.modules() if isinstance(m, BatchNorm2D)]
    for index, module in enumerate(norms):
        module.gamma.data[0] = 0.0
        if index == 0:
            module.gamma.data[1] = -module.gamma.data[1]
    apply_policy(model, policy)
    calibrate(model, dataset.x_train[:64])
    if qaft_epochs:
        tuner = Trainer(model, SGD(model.parameters(), ConstantLR(0.02)))
        tuner.fit(dataset.x_train, dataset.y_train, epochs=qaft_epochs,
                  batch_size=32, rng=np.random.default_rng(seed + 3))
        # QAFT drifts gamma[0] off exactly zero; re-pin the dead channel
        for module in norms:
            module.gamma.data[0] = 0.0
    assert any((module.gamma.data < 0).any() for module in norms)
    model.set_training(False)
    return model


@pytest.fixture(scope="module")
def model8(c10_space, infer_dataset):
    """Seed architecture, homogeneous 8-bit policy, trained + QAFT."""
    return make_quantized_model(c10_space, c10_space.seed_policy(8),
                                infer_dataset)


@pytest.fixture(scope="module")
def model_mixed(c10_space, infer_dataset):
    """Seed architecture with a random mixed {4..8}-bit policy."""
    policy = c10_space.random_policy(np.random.default_rng(9))
    assert policy.min_bits() < policy.max_bits()  # genuinely mixed
    return make_quantized_model(c10_space, policy, infer_dataset)


@pytest.fixture(scope="module")
def program8(model8, infer_dataset):
    return compile_model(model8, infer_dataset.x_train.shape[1],
                         name="model8")


@pytest.fixture(scope="module")
def program_mixed(model_mixed, infer_dataset):
    return compile_model(model_mixed, infer_dataset.x_train.shape[1],
                         name="model_mixed")
