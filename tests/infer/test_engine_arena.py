"""Arena-executor tests: bit-identity against the fresh-allocation
reference across policies, stage types and batch shapes, plus the
allocation-free steady-state contract and its observability counters."""

import numpy as np
import pytest

from repro.infer import compile_model
from repro.infer.engine import ArenaExecutor, Program
from repro.nn.conv import Conv2D, DepthwiseConv2D
from repro.nn.layers import BatchNorm2D, Dense, Flatten, ReLU, ReLU6
from repro.nn.network import Sequential
from repro.nn.pooling import AvgPool2D, MaxPool2D
from repro.quant import QuantizationPolicy, apply_policy, calibrate


def _tagged(layer, slot):
    layer.quant_slot = slot
    return layer


@pytest.fixture(scope="module")
def zoo_program():
    """A stage zoo the search space never emits in one network: strided
    same-pad conv, depthwise, avg/max pool, valid-pad conv, strided 1x1,
    flatten — at mixed {4..8}-bit weights."""
    rng = np.random.default_rng(21)
    model = Sequential([
        _tagged(Conv2D(3, 8, 3, stride=2, rng=rng, name="c1"), "a"),
        BatchNorm2D(8, name="bn1"),
        ReLU6(name="r1"),
        AvgPool2D(2),
        _tagged(DepthwiseConv2D(8, 3, rng=rng, name="dw"), "b"),
        BatchNorm2D(8, name="bn2"),
        ReLU(name="r2"),
        MaxPool2D(2),
        _tagged(Conv2D(8, 10, 2, padding="valid", use_bias=True,
                       rng=rng, name="c2"), "c"),
        _tagged(Conv2D(10, 12, 1, stride=2, rng=rng, name="c3"), "d"),
        Flatten(),
        _tagged(Dense(12, 10, rng=rng, name="fc"), "e"),
    ])
    model.layers[8].bias.data = rng.normal(0.0, 0.5, 10).astype(np.float32)
    apply_policy(model, QuantizationPolicy(
        {"a": 7, "b": 5, "c": 8, "d": 6, "e": 4}))
    calibrate(model, rng.normal(size=(64, 16, 16, 3)).astype(np.float32))
    model.set_training(False)
    return compile_model(model, 16, name="zoo")


def _reference(program, x, batch_size):
    return np.concatenate(
        [program.run_batch_reference(x[s:s + batch_size])
         for s in range(0, x.shape[0], batch_size)])


class TestBitIdentity:
    """Arena execution must be bit-identical to the reference path."""

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 32, 96])
    def test_program8(self, program8, infer_dataset, batch_size):
        x = infer_dataset.x_train[:13 if batch_size < 16 else 256]
        hot = program8.run(x, batch_size=batch_size)
        np.testing.assert_array_equal(hot,
                                      _reference(program8, x, batch_size))

    @pytest.mark.parametrize("batch_size", [5, 64])
    def test_mixed_policy(self, program_mixed, infer_dataset, batch_size):
        x = infer_dataset.x_train[:160]
        np.testing.assert_array_equal(
            program_mixed.run(x, batch_size=batch_size),
            _reference(program_mixed, x, batch_size))

    @pytest.mark.parametrize("batch_size", [1, 4, 11, 64])
    def test_stage_zoo(self, zoo_program, batch_size):
        x = np.random.default_rng(3).normal(
            size=(89, 16, 16, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            zoo_program.run(x, batch_size=batch_size),
            _reference(zoo_program, x, batch_size))

    def test_short_final_batch(self, program8, infer_dataset):
        """256 images at batch 96 -> a 64-image tail on prefix views."""
        x = infer_dataset.x_train
        hot = program8.run(x, batch_size=96)
        np.testing.assert_array_equal(hot, _reference(program8, x, 96))
        assert 96 in program8._executors    # one executor serves the tail

    def test_residual_coverage(self, program8, program_mixed):
        """The fixtures genuinely exercise the residual-ADD fused path."""
        for program in (program8, program_mixed):
            assert any(stage.residual_from is not None
                       for stage in program.stages)

    def test_run_batch_matches_reference(self, program8, infer_dataset):
        x = infer_dataset.x_train[:17]
        np.testing.assert_array_equal(program8.run_batch(x),
                                      program8.run_batch_reference(x))


class TestAllocationFree:
    """Steady-state batches perform zero ndarray allocations."""

    def test_no_allocations_in_steady_state(self, program8, infer_dataset,
                                            monkeypatch):
        x = infer_dataset.x_train[:64]
        executor = program8.executor(32)
        logits = np.empty((32, 10), dtype=np.float32)
        executor.run_batch_into(x[:32], logits)     # warm the view cache
        executor.run_batch_into(x[:17], logits[:17])

        counter = {"n": 0}

        def counting(factory):
            def wrapper(*args, **kwargs):
                counter["n"] += 1
                return factory(*args, **kwargs)
            return wrapper

        for name in ("empty", "zeros", "ones", "full", "pad",
                     "concatenate", "ascontiguousarray", "copy"):
            monkeypatch.setattr(np, name, counting(getattr(np, name)))
        executor.run_batch_into(x[:32], logits)
        executor.run_batch_into(x[32:49], logits[:17])
        assert counter["n"] == 0
        assert executor.runtime_allocs == 0

    def test_executor_is_cached_and_buffers_fixed(self, program8,
                                                  infer_dataset):
        executor = program8.executor(24)
        assert program8.executor(24) is executor
        before = executor.alloc_count
        x = infer_dataset.x_train[:24]
        logits = np.empty((24, 10), dtype=np.float32)
        executor.run_batch_into(x, logits)
        executor.run_batch_into(x, logits)
        assert executor.alloc_count == before

    def test_arena_matches_plan(self, program8):
        executor = program8.executor(16)
        assert executor.acts.nbytes == executor.plan.arena_bytes(16)
        assert executor.alloc_bytes >= executor.acts.nbytes


class TestExecutorContract:
    def test_batch_beyond_capacity_rejected(self, program8, infer_dataset):
        executor = program8.executor(8)
        logits = np.empty((9, 10), dtype=np.float32)
        with pytest.raises(ValueError, match="exceeds"):
            executor.run_batch_into(infer_dataset.x_train[:9], logits)

    def test_requires_dense_tail(self, program8):
        headless = Program(stages=program8.stages[:-1],
                           input_grid=program8.input_grid,
                           image_size=program8.image_size,
                           in_channels=program8.in_channels,
                           name="headless")
        with pytest.raises(ValueError, match="Dense"):
            ArenaExecutor(headless, 4)

    def test_headless_program_falls_back(self, program8, infer_dataset):
        """run()/run_batch() on a non-dense-tailed program still work,
        via the reference path (int codes out)."""
        headless = Program(stages=program8.stages[:-1],
                           input_grid=program8.input_grid,
                           image_size=program8.image_size,
                           in_channels=program8.in_channels,
                           name="headless")
        x = infer_dataset.x_train[:7]
        codes = headless.run(x, batch_size=4)
        assert codes.dtype == np.int32
        saved = {}
        expected = headless.run_range(headless.quantize_input(x), 0,
                                     len(headless.stages), saved)
        np.testing.assert_array_equal(codes, expected)

    def test_fused_requant_counted(self, program8, infer_dataset):
        executor = program8.executor(16)
        before = executor.fused_requant_calls
        logits = np.empty((16, 10), dtype=np.float32)
        executor.run_batch_into(infer_dataset.x_train[:16], logits)
        requant_stages = [s for s in program8.stages
                          if s.kind in ("conv", "dw")]
        assert executor.fused_requant_calls - before >= len(requant_stages)


class TestArenaObservability:
    def test_run_emits_arena_counters(self, program8, infer_dataset):
        from repro.obs.trace import TraceRecorder, use_recorder

        # a fresh Program (same compiled stages, empty executor cache) so
        # the executor-build gauge fires inside the recorded window
        fresh = Program(stages=program8.stages,
                        input_grid=program8.input_grid,
                        image_size=program8.image_size,
                        in_channels=program8.in_channels, name="obs")
        recorder = TraceRecorder()
        with use_recorder(recorder):
            fresh.run(infer_dataset.x_train[:32], batch_size=16)
        gauges = [e for e in recorder.events if e.get("type") == "gauge"
                  and e.get("name") == "infer.arena_bytes"]
        assert gauges and gauges[0]["value"] > 0
        fused = [e for e in recorder.events
                 if e.get("type") == "counter"
                 and e.get("name") == "infer.requant_fused"]
        assert fused and sum(c["value"] for c in fused) > 0
        allocs = [e for e in recorder.events
                  if e.get("type") == "counter"
                  and e.get("name") == "infer.allocs"]
        assert allocs and all(c["value"] == 0 for c in allocs)
