"""Save/load coverage for weight snapshots, including quantized models.

The resilience contract extends to model persistence: a PTQ'd or QAFT'd
network written to disk and reloaded into a freshly built model (same
genome, same policy) must produce bit-identical forwards — which requires
the frozen activation-quantizer ranges to travel with the weights.
"""

import numpy as np
import pytest

from repro.nn.serialization import (load_state_dict, load_weights,
                                    save_weights, state_dict)
from repro.quant.apply import apply_policy, calibrate, quantizable_layers
from repro.quant.qaft import quantization_aware_finetune
from repro.space.builder import build_model
from repro.space.space import SearchSpace

SPACE = SearchSpace("cifar10")


@pytest.fixture(scope="module")
def genome():
    return SPACE.random_genome(np.random.default_rng(11))


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(12)
    x = rng.normal(size=(24, 8, 8, 3)).astype(np.float32)
    labels = rng.integers(0, 10, size=24)
    return x, labels


def fresh_model(genome, seed):
    return build_model(genome.arch, 10, rng=np.random.default_rng(seed))


class TestFullPrecisionRoundTrip:
    def test_state_dict_round_trip_bit_identical(self, genome, batch):
        x, _ = batch
        model = fresh_model(genome, seed=1)
        model.set_training(False)
        reference = model.forward(x)
        clone = fresh_model(genome, seed=99)  # different init on purpose
        load_state_dict(clone, state_dict(model))
        clone.set_training(False)
        assert np.array_equal(clone.forward(x), reference)

    def test_npz_round_trip(self, genome, batch, tmp_path):
        x, _ = batch
        model = fresh_model(genome, seed=1)
        model.set_training(False)
        reference = model.forward(x)
        path = str(tmp_path / "weights.npz")
        save_weights(model, path)
        clone = fresh_model(genome, seed=99)
        load_weights(clone, path)
        clone.set_training(False)
        assert np.array_equal(clone.forward(x), reference)

    def test_shape_mismatch_rejected(self, genome):
        model = fresh_model(genome, seed=1)
        snapshot = state_dict(model)
        snapshot["param_0"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(fresh_model(genome, seed=1), snapshot)

    def test_missing_params_rejected(self, genome):
        model = fresh_model(genome, seed=1)
        snapshot = state_dict(model)
        del snapshot["param_0"]
        with pytest.raises(ValueError, match="missing parameters"):
            load_state_dict(fresh_model(genome, seed=1), snapshot)


class TestQuantizedRoundTrip:
    def quantized_model(self, genome, x, seed, finetune=False, labels=None):
        model = fresh_model(genome, seed=seed)
        apply_policy(model, genome.policy)
        calibrate(model, x, batch_size=8)
        if finetune:
            quantization_aware_finetune(model, x, labels, epochs=1,
                                        batch_size=8,
                                        rng=np.random.default_rng(7))
        model.set_training(False)
        return model

    def test_ptq_model_round_trip_bit_identical(self, genome, batch,
                                                tmp_path):
        x, _ = batch
        model = self.quantized_model(genome, x, seed=1)
        reference = model.forward(x)
        path = str(tmp_path / "ptq.npz")
        save_weights(model, path)

        clone = fresh_model(genome, seed=99)
        apply_policy(clone, genome.policy)  # fresh quantizers, uncalibrated
        load_weights(clone, path)
        clone.set_training(False)
        for layer in quantizable_layers(clone):
            assert layer.input_quantizer.frozen  # ranges restored, no calib
        assert np.array_equal(clone.forward(x), reference)

    def test_qaft_model_round_trip_bit_identical(self, genome, batch,
                                                 tmp_path):
        x, labels = batch
        model = self.quantized_model(genome, x, seed=1, finetune=True,
                                     labels=labels)
        reference = model.forward(x)
        path = str(tmp_path / "qaft.npz")
        save_weights(model, path)

        clone = fresh_model(genome, seed=99)
        apply_policy(clone, genome.policy)
        load_weights(clone, path)
        clone.set_training(False)
        assert np.array_equal(clone.forward(x), reference)

    def test_snapshot_records_one_range_per_quantizer(self, genome, batch):
        x, _ = batch
        model = self.quantized_model(genome, x, seed=1)
        snapshot = state_dict(model)
        aq_keys = [k for k in snapshot if k.startswith("aq_")]
        assert len(aq_keys) == len(quantizable_layers(model))
        for key in aq_keys:
            lo, hi = snapshot[key]
            assert np.isfinite(lo) and np.isfinite(hi) and lo <= hi

    def test_calibrating_model_refused(self, genome, batch):
        x, _ = batch
        model = fresh_model(genome, seed=1)
        apply_policy(model, genome.policy)  # attached but never calibrated
        with pytest.raises(ValueError, match="still calibrating"):
            state_dict(model)

    def test_quantized_snapshot_needs_quantized_model(self, genome, batch):
        x, _ = batch
        model = self.quantized_model(genome, x, seed=1)
        snapshot = state_dict(model)
        bare = fresh_model(genome, seed=1)  # no quantizers attached
        with pytest.raises(ValueError, match="quantizer"):
            load_state_dict(bare, snapshot)

    def test_full_precision_snapshot_leaves_quantizers_alone(self, genome,
                                                             batch):
        x, _ = batch
        plain = fresh_model(genome, seed=1)
        snapshot = state_dict(plain)  # no aq_* keys
        model = self.quantized_model(genome, x, seed=2)
        ranges = [layer.input_quantizer._range
                  for layer in quantizable_layers(model)]
        load_state_dict(model, snapshot)
        assert [layer.input_quantizer._range
                for layer in quantizable_layers(model)] == ranges
