"""Tests for pooling layers and dropout."""

import numpy as np
import pytest

from repro.nn import AvgPool2D, Dropout, MaxPool2D, check_module_gradients


class TestAvgPool2D:
    def test_averages_windows(self):
        pool = AvgPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = pool.forward(x)
        assert out.shape == (1, 2, 2, 1)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_gradients(self, rng):
        pool = AvgPool2D(2)
        x = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)
        check_module_gradients(pool, x)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            AvgPool2D(3).forward(np.zeros((1, 4, 4, 1), dtype=np.float32))

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            AvgPool2D(0)


class TestMaxPool2D:
    def test_takes_maxima(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = pool.forward(x)
        assert out[0, 0, 0, 0] == 5.0
        assert out[0, 1, 1, 0] == 15.0

    def test_gradient_routes_to_max(self):
        pool = MaxPool2D(2)
        x = np.zeros((1, 2, 2, 1), dtype=np.float32)
        x[0, 1, 1, 0] = 5.0
        pool.forward(x)
        dx = pool.backward(np.ones((1, 1, 1, 1), dtype=np.float32))
        assert dx[0, 1, 1, 0] == 1.0
        assert dx.sum() == pytest.approx(1.0)

    def test_tied_maxima_split_gradient(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 2, 2, 1), dtype=np.float32)
        pool.forward(x)
        dx = pool.backward(np.ones((1, 1, 1, 1), dtype=np.float32))
        np.testing.assert_allclose(dx, 0.25)

    def test_gradients_numeric(self, rng):
        pool = MaxPool2D(2)
        # distinct values avoid kinks at ties
        x = rng.permutation(32).astype(np.float32).reshape(1, 4, 4, 2)
        check_module_gradients(pool, x)


class TestDropout:
    def test_identity_in_eval(self, rng):
        drop = Dropout(0.5)
        drop.set_training(False)
        x = rng.normal(size=(8, 8)).astype(np.float32)
        np.testing.assert_array_equal(drop.forward(x), x)

    def test_zeros_fraction_in_training(self, rng):
        drop = Dropout(0.5, seed=1)
        drop.set_training(True)
        x = np.ones((100, 100), dtype=np.float32)
        out = drop.forward(x)
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6

    def test_inverted_scaling_preserves_mean(self, rng):
        drop = Dropout(0.3, seed=2)
        drop.set_training(True)
        x = np.ones((200, 200), dtype=np.float32)
        out = drop.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self, rng):
        drop = Dropout(0.5, seed=3)
        drop.set_training(True)
        x = np.ones((10, 10), dtype=np.float32)
        out = drop.forward(x)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal((out == 0), (grad == 0))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
