"""Tests for losses and metrics."""

import numpy as np
import pytest

from repro.nn import (SoftmaxCrossEntropy, accuracy, softmax,
                      top_k_accuracy)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    def test_numerically_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0, :2], 0.5, atol=1e-6)

    def test_invariant_to_shift(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0),
                                   rtol=1e-6)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.array([[20.0, 0.0, 0.0]], dtype=np.float32)
        assert loss_fn.forward(logits, np.array([0])) < 1e-6

    def test_uniform_prediction_is_log_classes(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10), dtype=np.float32)
        labels = np.arange(4)
        assert loss_fn.forward(logits, labels) == pytest.approx(
            np.log(10), rel=1e-5)

    def test_gradient_matches_probs_minus_onehot(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 5)).astype(np.float32)
        labels = np.array([0, 2, 4])
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        probs = softmax(logits)
        onehot = np.zeros_like(probs)
        onehot[np.arange(3), labels] = 1
        np.testing.assert_allclose(grad, (probs - onehot) / 3,
                                   rtol=1e-4, atol=1e-6)

    def test_gradient_finite_difference(self, rng):
        loss_fn = SoftmaxCrossEntropy(label_smoothing=0.1)
        logits = rng.normal(size=(2, 4)).astype(np.float64)
        labels = np.array([1, 3])
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        eps = 1e-5
        for i in range(2):
            for j in range(4):
                logits[i, j] += eps
                plus = loss_fn.forward(logits, labels)
                logits[i, j] -= 2 * eps
                minus = loss_fn.forward(logits, labels)
                logits[i, j] += eps
                numeric = (plus - minus) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_label_smoothing_raises_floor(self):
        smooth = SoftmaxCrossEntropy(label_smoothing=0.2)
        sharp = SoftmaxCrossEntropy()
        logits = np.array([[50.0, 0.0, 0.0]], dtype=np.float32)
        labels = np.array([0])
        assert smooth.forward(logits, labels) > sharp.forward(logits, labels)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.zeros(3,
                                          dtype=int))

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(label_smoothing=1.0)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_top_k(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([1]), k=1) == 0.0
        assert top_k_accuracy(logits, np.array([1]), k=2) == 1.0

    def test_top_k_caps_at_num_classes(self):
        logits = np.array([[1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([1]), k=10) == 1.0

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int))
