"""Tests for Sequential, Trainer, Module traversal and serialization."""

import numpy as np
import pytest

from repro.nn import (SGD, BatchNorm2D, ConstantLR, Conv2D, Dense, Flatten,
                      GlobalAvgPool2D, Module, Parameter, ReLU6, Sequential,
                      Trainer, load_state_dict, load_weights, save_weights,
                      state_dict)


def tiny_net(rng, in_ch=3, classes=4):
    return Sequential([
        Conv2D(in_ch, 6, kernel=3, rng=rng),
        BatchNorm2D(6),
        ReLU6(),
        GlobalAvgPool2D(),
        Dense(6, classes, rng=rng),
    ])


class TestModuleTraversal:
    def test_parameters_collected_recursively(self, rng):
        net = tiny_net(rng)
        # conv weight + bn gamma/beta + dense weight/bias
        assert len(net.parameters()) == 5

    def test_modules_iterates_all(self, rng):
        net = tiny_net(rng)
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Conv2D") == 1
        assert kinds.count("BatchNorm2D") == 1
        assert "Sequential" in kinds

    def test_set_training_propagates(self, rng):
        net = tiny_net(rng)
        net.set_training(True)
        assert all(m.training for m in net.modules())
        net.set_training(False)
        assert not any(m.training for m in net.modules())

    def test_zero_grad(self, rng):
        net = tiny_net(rng)
        for p in net.parameters():
            p.grad = np.ones_like(p.data)
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_num_parameters(self, rng):
        net = tiny_net(rng)
        expected = sum(p.size for p in net.parameters())
        assert net.num_parameters() == expected

    def test_base_module_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))


class TestSequential:
    def test_forward_backward_shapes(self, rng):
        net = tiny_net(rng)
        net.set_training(True)
        x = rng.normal(size=(5, 8, 8, 3)).astype(np.float32)
        out = net.forward(x)
        assert out.shape == (5, 4)
        dx = net.backward(np.ones_like(out))
        assert dx.shape == x.shape

    def test_predict_batches_match_single(self, rng):
        net = tiny_net(rng)
        x = rng.normal(size=(7, 8, 8, 3)).astype(np.float32)
        full = net.predict(x, batch_size=7)
        batched = net.predict(x, batch_size=3)
        np.testing.assert_allclose(full, batched, rtol=1e-5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_indexing_and_len(self, rng):
        net = tiny_net(rng)
        assert len(net) == 5
        assert isinstance(net[0], Conv2D)

    def test_summary_mentions_totals(self, rng):
        text = tiny_net(rng).summary()
        assert "total params" in text


class TestTrainer:
    def test_loss_decreases_on_learnable_task(self, rng):
        net = tiny_net(rng, classes=2)
        x = rng.normal(size=(64, 8, 8, 3)).astype(np.float32)
        labels = (x.mean(axis=(1, 2, 3)) > 0).astype(np.int64)
        trainer = Trainer(net, SGD(net.parameters(), ConstantLR(0.05)))
        history = trainer.fit(x, labels, epochs=8, batch_size=16, rng=rng)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.train_accuracy[-1] > 0.6

    def test_validation_recorded(self, rng, tiny_dataset):
        net = tiny_net(rng, classes=10)
        trainer = Trainer(net, SGD(net.parameters(), ConstantLR(0.01)))
        history = trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train,
                              epochs=2, batch_size=32,
                              x_val=tiny_dataset.x_test,
                              labels_val=tiny_dataset.y_test, rng=rng)
        assert history.epochs == 2
        assert len(history.val_accuracy) == 2
        assert history.best_val_accuracy() == max(history.val_accuracy)

    def test_augment_called(self, rng, tiny_dataset):
        calls = []

        def augment(x, rng_):
            calls.append(x.shape[0])
            return x

        net = tiny_net(rng, classes=10)
        trainer = Trainer(net, SGD(net.parameters(), ConstantLR(0.01)),
                          augment=augment)
        trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train, epochs=1,
                    batch_size=32, rng=rng)
        assert sum(calls) == tiny_dataset.n_train

    def test_zero_epochs_is_noop(self, rng, tiny_dataset):
        net = tiny_net(rng, classes=10)
        trainer = Trainer(net, SGD(net.parameters(), ConstantLR(0.01)))
        history = trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train,
                              epochs=0, rng=rng)
        assert history.epochs == 0

    def test_invalid_args(self, rng, tiny_dataset):
        net = tiny_net(rng, classes=10)
        trainer = Trainer(net, SGD(net.parameters(), ConstantLR(0.01)))
        with pytest.raises(ValueError):
            trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train,
                        epochs=-1)
        with pytest.raises(ValueError):
            trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train[:-1],
                        epochs=1)

    def test_history_as_dict(self, rng, tiny_dataset):
        net = tiny_net(rng, classes=10)
        trainer = Trainer(net, SGD(net.parameters(), ConstantLR(0.01)))
        history = trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train,
                              epochs=1, rng=rng)
        as_dict = history.as_dict()
        assert set(as_dict) == {"train_loss", "train_accuracy", "val_loss",
                                "val_accuracy"}


class TestSerialization:
    def test_state_roundtrip(self, rng):
        net = tiny_net(rng)
        net.set_training(True)
        net.forward(rng.normal(size=(8, 8, 8, 3)).astype(np.float32))
        snapshot = state_dict(net)
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        net.set_training(False)
        before = net.forward(x)
        # perturb and restore
        for p in net.parameters():
            p.data += 1.0
        load_state_dict(net, snapshot)
        np.testing.assert_allclose(net.forward(x), before, rtol=1e-6)

    def test_running_stats_restored(self, rng):
        net = tiny_net(rng)
        bn = net[1]
        bn.running_mean[:] = 3.0
        snapshot = state_dict(net)
        bn.running_mean[:] = 0.0
        load_state_dict(net, snapshot)
        np.testing.assert_allclose(bn.running_mean, 3.0)

    def test_shape_mismatch_raises(self, rng):
        net = tiny_net(rng)
        other = tiny_net(rng, in_ch=4)
        with pytest.raises(ValueError):
            load_state_dict(other, state_dict(net))

    def test_missing_key_raises(self, rng):
        net = tiny_net(rng)
        snapshot = state_dict(net)
        del snapshot["param_0"]
        with pytest.raises(ValueError):
            load_state_dict(net, snapshot)

    def test_file_roundtrip(self, rng, tmp_path):
        net = tiny_net(rng)
        path = str(tmp_path / "weights.npz")
        save_weights(net, path)
        for p in net.parameters():
            p.data += 2.0
        load_weights(net, path)
        snapshot = state_dict(net)
        assert all(np.isfinite(v).all() for v in snapshot.values())


class TestParameter:
    def test_accumulate(self):
        p = Parameter(np.zeros(3))
        p.accumulate_grad(np.ones(3))
        p.accumulate_grad(np.ones(3))
        np.testing.assert_allclose(p.grad, 2.0)

    def test_repr(self):
        assert "shape" in repr(Parameter(np.zeros((2, 3)), name="w"))
