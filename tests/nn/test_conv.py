"""Tests for Conv2D and DepthwiseConv2D, including reference checks."""

import numpy as np
import pytest

from repro.nn import Conv2D, DepthwiseConv2D, check_module_gradients


def naive_conv2d(x, weight, stride, pad_h, pad_w):
    """Straightforward loop reference for cross-checking the im2col path."""
    x = np.pad(x, ((0, 0), pad_h, pad_w, (0, 0)))
    n, h, w, c_in = x.shape
    kh, kw, _, c_out = weight.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    out = np.zeros((n, out_h, out_w, c_out), dtype=np.float64)
    for b in range(n):
        for i in range(out_h):
            for j in range(out_w):
                patch = x[b, i * stride:i * stride + kh,
                          j * stride:j * stride + kw, :]
                for f in range(c_out):
                    out[b, i, j, f] = (patch * weight[:, :, :, f]).sum()
    return out


class TestConv2D:
    def test_matches_naive_reference(self, rng):
        conv = Conv2D(3, 4, kernel=3, stride=2, rng=rng)
        x = rng.normal(size=(2, 7, 7, 3)).astype(np.float32)
        out = conv.forward(x)
        from repro.nn.functional import same_padding
        expected = naive_conv2d(x, conv.weight.data, 2,
                                same_padding(7, 3, 2), same_padding(7, 3, 2))
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_output_shape_same_padding(self, rng):
        conv = Conv2D(2, 5, kernel=3, stride=1, rng=rng)
        out = conv.forward(rng.normal(size=(1, 9, 9, 2)).astype(np.float32))
        assert out.shape == (1, 9, 9, 5)

    def test_output_shape_stride2(self, rng):
        conv = Conv2D(2, 5, kernel=3, stride=2, rng=rng)
        out = conv.forward(rng.normal(size=(1, 9, 9, 2)).astype(np.float32))
        assert out.shape == (1, 5, 5, 5)

    def test_1x1_conv_is_channel_mix(self, rng):
        conv = Conv2D(3, 2, kernel=1, rng=rng)
        x = rng.normal(size=(1, 4, 4, 3)).astype(np.float32)
        out = conv.forward(x)
        expected = x.reshape(-1, 3) @ conv.weight.data.reshape(3, 2)
        np.testing.assert_allclose(out.reshape(-1, 2), expected, rtol=1e-5)

    def test_bias_added(self, rng):
        conv = Conv2D(1, 2, kernel=1, use_bias=True, rng=rng)
        conv.weight.data[:] = 0
        conv.bias.data[:] = np.array([1.5, -2.0])
        out = conv.forward(np.zeros((1, 3, 3, 1), dtype=np.float32))
        np.testing.assert_allclose(out[0, 0, 0], [1.5, -2.0])

    def test_gradients(self, rng):
        conv = Conv2D(2, 3, kernel=3, stride=2, use_bias=True, rng=rng)
        x = rng.normal(size=(2, 5, 5, 2)).astype(np.float32)
        check_module_gradients(conv, x)

    def test_gradients_even_kernel(self, rng):
        conv = Conv2D(2, 2, kernel=2, stride=1, rng=rng)
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        check_module_gradients(conv, x)

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2D(1, 1, kernel=3, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 4, 4, 1), dtype=np.float32))

    def test_wrong_channels_raises(self, rng):
        conv = Conv2D(3, 4, kernel=3, rng=rng)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 4, 4, 2), dtype=np.float32))

    def test_macs(self, rng):
        conv = Conv2D(3, 8, kernel=3, stride=1, rng=rng)
        # 16*16 output positions * 3*3 kernel * 3 in * 8 out
        assert conv.macs(16, 16) == 16 * 16 * 9 * 3 * 8

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            Conv2D(0, 4, kernel=3)
        with pytest.raises(ValueError):
            Conv2D(3, 4, kernel=0)


class TestDepthwiseConv2D:
    def test_channels_kept_independent(self, rng):
        dw = DepthwiseConv2D(2, kernel=3, rng=rng)
        x = np.zeros((1, 5, 5, 2), dtype=np.float32)
        x[..., 0] = rng.normal(size=(1, 5, 5))
        out = dw.forward(x)
        # channel 1 input is zero -> channel 1 output must be zero
        np.testing.assert_array_equal(out[..., 1],
                                      np.zeros((1, 5, 5), dtype=np.float32))
        assert np.abs(out[..., 0]).sum() > 0

    def test_matches_conv_with_diagonal_weights(self, rng):
        """A depthwise conv equals a full conv with block-diagonal kernel."""
        c = 3
        dw = DepthwiseConv2D(c, kernel=3, stride=1, rng=rng)
        full = Conv2D(c, c, kernel=3, stride=1, rng=rng)
        full.weight.data[:] = 0
        for ch in range(c):
            full.weight.data[:, :, ch, ch] = dw.weight.data[:, :, ch]
        x = rng.normal(size=(2, 6, 6, c)).astype(np.float32)
        np.testing.assert_allclose(dw.forward(x), full.forward(x),
                                   rtol=1e-4, atol=1e-5)

    def test_gradients(self, rng):
        dw = DepthwiseConv2D(3, kernel=3, stride=2, rng=rng)
        x = rng.normal(size=(2, 5, 5, 3)).astype(np.float32)
        check_module_gradients(dw, x)

    def test_output_shape(self, rng):
        dw = DepthwiseConv2D(4, kernel=5, stride=2, rng=rng)
        out = dw.forward(rng.normal(size=(1, 10, 10, 4)).astype(np.float32))
        assert out.shape == (1, 5, 5, 4)

    def test_macs(self, rng):
        dw = DepthwiseConv2D(8, kernel=3, stride=1, rng=rng)
        assert dw.macs(16, 16) == 16 * 16 * 9 * 8

    def test_alias_channels(self, rng):
        dw = DepthwiseConv2D(6, kernel=3, rng=rng)
        assert dw.in_channels == 6
        assert dw.out_channels == 6
