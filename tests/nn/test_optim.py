"""Tests for optimizers, schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (SGD, Adam, ConstantLR, CosineDecayLR, Parameter,
                      StepDecayLR, clip_gradients)


def quadratic_params(rng, n=3):
    """Parameters initialized away from the optimum of f(w) = |w|^2 / 2."""
    return [Parameter(rng.normal(size=(4,)) * 3, name=f"p{i}")
            for i in range(n)]


def quadratic_grads(params):
    for p in params:
        p.grad = p.data.copy()  # grad of |w|^2/2


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.1)
        assert sched.lr_at(0) == sched.lr_at(1000) == 0.1

    def test_cosine_endpoints(self):
        sched = CosineDecayLR(0.1, total_steps=100, min_lr=0.01)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(100) == pytest.approx(0.01)
        assert sched.lr_at(50) == pytest.approx(0.055, rel=1e-6)

    def test_cosine_monotone_decreasing(self):
        sched = CosineDecayLR(1.0, total_steps=50)
        lrs = [sched.lr_at(s) for s in range(51)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_past_total(self):
        sched = CosineDecayLR(1.0, total_steps=10)
        assert sched.lr_at(100) == pytest.approx(0.0)

    def test_step_decay(self):
        sched = StepDecayLR(1.0, step_size=10, factor=0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            CosineDecayLR(0.1, total_steps=0)
        with pytest.raises(ValueError):
            StepDecayLR(0.1, step_size=10, factor=1.5)


class TestSGD:
    def test_converges_on_quadratic(self, rng):
        params = quadratic_params(rng)
        opt = SGD(params, ConstantLR(0.1), momentum=0.9)
        for _ in range(200):
            quadratic_grads(params)
            opt.step()
        for p in params:
            assert np.abs(p.data).max() < 1e-3

    def test_plain_sgd_single_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], ConstantLR(0.5), momentum=0.0)
        p.grad = np.array([2.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.0)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], ConstantLR(1.0), momentum=0.5)
        for _ in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        # v1 = -1, v2 = -1.5 -> w = -2.5
        assert p.data[0] == pytest.approx(-2.5)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], ConstantLR(0.1), momentum=0.0, weight_decay=0.1)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 10.0

    def test_frozen_param_untouched(self):
        p = Parameter(np.array([1.0]), trainable=False)
        opt = SGD([p], ConstantLR(0.5))
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == 1.0

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], ConstantLR(0.5))
        opt.step()  # must not raise
        assert p.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        params = quadratic_params(rng)
        opt = Adam(params, ConstantLR(0.1))
        for _ in range(300):
            quadratic_grads(params)
            opt.step()
        for p in params:
            assert np.abs(p.data).max() < 1e-2

    def test_first_step_size_is_lr(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], ConstantLR(0.01))
        p.grad = np.array([100.0], dtype=np.float32)
        opt.step()
        # bias-corrected first step is ~lr regardless of grad magnitude
        assert p.data[0] == pytest.approx(1.0 - 0.01, abs=1e-4)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], ConstantLR(0.1), beta1=1.0)


class TestClipGradients:
    def test_clips_large_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_gradients([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1, dtype=np.float32)
        clip_gradients([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1, rtol=1e-6)

    def test_handles_none_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_gradients([p], max_norm=1.0) == 0.0

    def test_optimizer_needs_params(self):
        with pytest.raises(ValueError):
            SGD([], ConstantLR(0.1))
