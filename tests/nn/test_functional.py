"""Tests for padding and patch-extraction helpers."""

import numpy as np
import pytest

from repro.nn import functional as F


class TestSamePadding:
    def test_stride1_odd_kernel_is_symmetric(self):
        assert F.same_padding(8, 3, 1) == (1, 1)
        assert F.same_padding(8, 5, 1) == (2, 2)

    def test_stride1_even_kernel_pads_more_after(self):
        before, after = F.same_padding(8, 2, 1)
        assert (before, after) == (0, 1)
        before, after = F.same_padding(8, 4, 1)
        assert (before, after) == (1, 2)

    def test_stride2_output_is_ceil(self):
        for in_size in (7, 8, 9, 16):
            before, after = F.same_padding(in_size, 3, 2)
            out = (in_size + before + after - 3) // 2 + 1
            assert out == -(-in_size // 2)

    def test_kernel1_no_padding(self):
        assert F.same_padding(10, 1, 1) == (0, 0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            F.same_padding(0, 3, 1)
        with pytest.raises(ValueError):
            F.same_padding(8, 3, 0)


class TestConvOutputSize:
    def test_same_is_ceil_division(self):
        assert F.conv_output_size(16, 3, 1, "same") == 16
        assert F.conv_output_size(16, 3, 2, "same") == 8
        assert F.conv_output_size(15, 3, 2, "same") == 8
        assert F.conv_output_size(15, 7, 2, "same") == 8

    def test_valid(self):
        assert F.conv_output_size(16, 3, 1, "valid") == 14
        assert F.conv_output_size(16, 3, 2, "valid") == 7

    def test_valid_too_small_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 3, 1, "valid")

    def test_unknown_padding_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(16, 3, 1, "reflect")


class TestPatches:
    def test_extract_shape(self, rng):
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        patches = F.extract_patches(x, kernel=3, stride=1)
        assert patches.shape == (2, 4, 4, 3, 3, 3)

    def test_extract_with_stride(self, rng):
        x = rng.normal(size=(1, 8, 8, 2)).astype(np.float32)
        patches = F.extract_patches(x, kernel=2, stride=2)
        assert patches.shape == (1, 4, 4, 2, 2, 2)

    def test_extract_values_match_slices(self, rng):
        x = rng.normal(size=(1, 5, 5, 1)).astype(np.float32)
        patches = F.extract_patches(x, kernel=3, stride=1)
        np.testing.assert_array_equal(patches[0, 1, 2, 0],
                                      x[0, 1:4, 2:5, 0])

    def test_scatter_is_adjoint_of_extract(self, rng):
        """<extract(x), g> == <x, scatter(g)> — the defining property of
        the backward pass."""
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        patches = F.extract_patches(x, kernel=3, stride=2)
        g = rng.normal(size=patches.shape).astype(np.float32)
        lhs = float((patches * g).sum())
        scattered = F.scatter_patches(g, x.shape, kernel=3, stride=2)
        rhs = float((x * scattered).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)

    def test_pad_and_crop_roundtrip(self, rng):
        x = rng.normal(size=(1, 7, 9, 2)).astype(np.float32)
        padded, pad_h, pad_w = F.pad_input(x, kernel=5, stride=2,
                                           padding="same")
        cropped = F.crop_padding(padded, pad_h, pad_w)
        np.testing.assert_array_equal(cropped, x)

    def test_pad_input_valid_is_identity(self, rng):
        x = rng.normal(size=(1, 7, 7, 1)).astype(np.float32)
        padded, pad_h, pad_w = F.pad_input(x, 3, 1, "valid")
        assert padded is x
        assert pad_h == (0, 0) and pad_w == (0, 0)

    def test_pad_input_rejects_non_nhwc(self, rng):
        with pytest.raises(ValueError):
            F.pad_input(np.zeros((3, 3)), 3, 1, "same")
