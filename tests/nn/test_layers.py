"""Tests for dense, batch norm, activations and pooling layers."""

import numpy as np
import pytest

from repro.nn import (BatchNorm2D, Dense, Flatten, GlobalAvgPool2D, ReLU,
                      ReLU6, check_module_gradients)


class TestDense:
    def test_linear_map(self, rng):
        dense = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        expected = x @ dense.weight.data + dense.bias.data
        np.testing.assert_allclose(dense.forward(x), expected, rtol=1e-5)

    def test_no_bias(self, rng):
        dense = Dense(3, 2, use_bias=False, rng=rng)
        assert dense.bias is None
        x = np.zeros((2, 3), dtype=np.float32)
        np.testing.assert_array_equal(dense.forward(x),
                                      np.zeros((2, 2), dtype=np.float32))

    def test_gradients(self, rng):
        dense = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        check_module_gradients(dense, x)

    def test_shape_validation(self, rng):
        dense = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError):
            dense.forward(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            dense.forward(np.zeros((2, 3, 1), dtype=np.float32))

    def test_macs(self, rng):
        assert Dense(10, 7, rng=rng).macs() == 70


class TestBatchNorm2D:
    def test_training_normalizes_batch(self, rng):
        bn = BatchNorm2D(3)
        bn.set_training(True)
        x = rng.normal(2.0, 3.0, size=(8, 4, 4, 3)).astype(np.float32)
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 1, 2)), 0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 1, 2)), 1, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        bn = BatchNorm2D(2)
        bn.set_training(True)
        bn.gamma.data[:] = [2.0, 3.0]
        bn.beta.data[:] = [1.0, -1.0]
        x = rng.normal(size=(16, 2, 2, 2)).astype(np.float32)
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 1, 2)), [1.0, -1.0],
                                   atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 1, 2)), [2.0, 3.0],
                                   rtol=2e-2)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm2D(1, momentum=0.5)
        bn.set_training(True)
        for _ in range(40):
            bn.forward(rng.normal(5.0, 2.0, size=(64, 2, 2, 1))
                       .astype(np.float32))
        assert bn.running_mean[0] == pytest.approx(5.0, abs=0.5)
        assert bn.running_var[0] == pytest.approx(4.0, rel=0.4)

    def test_inference_uses_running_stats(self, rng):
        bn = BatchNorm2D(1)
        bn.running_mean[:] = 10.0
        bn.running_var[:] = 4.0
        bn.set_training(False)
        x = np.full((1, 1, 1, 1), 12.0, dtype=np.float32)
        out = bn.forward(x)
        assert out[0, 0, 0, 0] == pytest.approx(1.0, rel=1e-3)

    def test_gradients_training(self, rng):
        bn = BatchNorm2D(3)
        x = rng.normal(size=(6, 3, 3, 3)).astype(np.float32)
        check_module_gradients(bn, x)

    def test_gradients_inference(self, rng):
        bn = BatchNorm2D(2)
        bn.running_mean[:] = rng.normal(size=2)
        bn.running_var[:] = rng.uniform(0.5, 2.0, size=2)
        bn.set_training(False)
        x = rng.normal(size=(4, 3, 3, 2)).astype(np.float32)
        out = bn.forward(x)
        dx = bn.backward(np.ones_like(out))
        scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(dx, np.broadcast_to(scale, dx.shape),
                                   rtol=1e-5)

    def test_fold_scale_shift(self):
        bn = BatchNorm2D(2)
        bn.running_mean[:] = [1.0, -1.0]
        bn.running_var[:] = [4.0, 9.0]
        bn.gamma.data[:] = [2.0, 3.0]
        bn.beta.data[:] = [0.5, 0.0]
        scale, shift = bn.fold_scale_shift()
        x = np.array([[3.0, 2.0]], dtype=np.float32)
        bn.set_training(False)
        expected = bn.forward(x.reshape(1, 1, 1, 2)).reshape(1, 2)
        np.testing.assert_allclose(scale * x + shift, expected, rtol=1e-3)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm2D(3, momentum=1.0)


class TestActivations:
    def test_relu(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(relu.forward(x), [[0, 0, 2]])
        dx = relu.backward(np.ones((1, 3), dtype=np.float32))
        np.testing.assert_array_equal(dx, [[0, 0, 1]])

    def test_relu6_clips_both_sides(self):
        act = ReLU6()
        x = np.array([[-1.0, 3.0, 7.0]], dtype=np.float32)
        np.testing.assert_array_equal(act.forward(x), [[0, 3, 6]])
        dx = act.backward(np.ones((1, 3), dtype=np.float32))
        np.testing.assert_array_equal(dx, [[0, 1, 0]])

    def test_relu6_gradcheck(self, rng):
        # keep away from the kinks at 0 and 6
        x = rng.uniform(0.5, 5.5, size=(3, 4)).astype(np.float32)
        check_module_gradients(ReLU6(), x)


class TestPooling:
    def test_gap_averages(self, rng):
        gap = GlobalAvgPool2D()
        x = rng.normal(size=(2, 3, 5, 4)).astype(np.float32)
        np.testing.assert_allclose(gap.forward(x), x.mean(axis=(1, 2)),
                                   rtol=1e-5)

    def test_gap_gradients(self, rng):
        gap = GlobalAvgPool2D()
        x = rng.normal(size=(2, 3, 3, 2)).astype(np.float32)
        check_module_gradients(gap, x)

    def test_gap_rejects_2d(self):
        with pytest.raises(ValueError):
            GlobalAvgPool2D().forward(np.zeros((2, 3), dtype=np.float32))

    def test_flatten_roundtrip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        out = flat.forward(x)
        assert out.shape == (2, 60)
        back = flat.backward(out)
        np.testing.assert_array_equal(back, x)
