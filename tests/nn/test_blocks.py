"""Tests for the MobileNetV2 composite blocks."""

import numpy as np
import pytest

from repro.nn import ConvBNReLU, InvertedBottleneck, check_module_gradients


class TestConvBNReLU:
    def test_output_nonnegative_and_clipped(self, rng):
        block = ConvBNReLU(3, 4, kernel=3, rng=rng)
        block.set_training(True)
        out = block.forward(rng.normal(size=(4, 6, 6, 3)).astype(np.float32))
        assert out.min() >= 0
        assert out.max() <= 6

    def test_gradients(self, rng):
        block = ConvBNReLU(2, 3, kernel=3, rng=rng)
        x = rng.normal(size=(4, 4, 4, 2)).astype(np.float32)
        check_module_gradients(block, x)


class TestInvertedBottleneck:
    def test_residual_when_shapes_match(self, rng):
        block = InvertedBottleneck(4, 4, kernel=3, expansion=2, stride=1,
                                   rng=rng)
        assert block.use_residual

    def test_no_residual_on_stride2(self, rng):
        block = InvertedBottleneck(4, 4, kernel=3, expansion=2, stride=2,
                                   rng=rng)
        assert not block.use_residual

    def test_no_residual_on_channel_change(self, rng):
        block = InvertedBottleneck(4, 8, kernel=3, expansion=2, stride=1,
                                   rng=rng)
        assert not block.use_residual

    def test_expansion1_has_no_expand_conv(self, rng):
        block = InvertedBottleneck(4, 4, kernel=3, expansion=1, rng=rng)
        assert block.expand is None
        assert len(block.conv_layers()) == 2

    def test_expansion_widens_hidden(self, rng):
        block = InvertedBottleneck(4, 6, kernel=3, expansion=5, rng=rng)
        assert block.hidden_channels == 20
        assert block.expand is not None
        assert len(block.conv_layers()) == 3

    def test_output_shape_stride2(self, rng):
        block = InvertedBottleneck(3, 8, kernel=3, expansion=3, stride=2,
                                   rng=rng)
        block.set_training(True)
        out = block.forward(rng.normal(size=(2, 9, 9, 3)).astype(np.float32))
        assert out.shape == (2, 5, 5, 8)

    def test_residual_identity_path(self, rng):
        """Zeroing the projection conv makes a residual block an identity."""
        block = InvertedBottleneck(3, 3, kernel=3, expansion=2, stride=1,
                                   rng=rng)
        block.project.weight.data[:] = 0
        block.set_training(False)
        x = rng.normal(size=(1, 4, 4, 3)).astype(np.float32)
        out = block.forward(x)
        # projection output is BN(0) = beta = 0 -> out == x
        np.testing.assert_allclose(out, x, atol=1e-5)

    def test_gradients_with_residual(self, rng):
        block = InvertedBottleneck(2, 2, kernel=3, expansion=2, stride=1,
                                   rng=rng)
        x = rng.normal(size=(2, 4, 4, 2)).astype(np.float32)
        check_module_gradients(block, x)

    def test_gradients_without_residual(self, rng):
        block = InvertedBottleneck(2, 3, kernel=3, expansion=2, stride=2,
                                   rng=rng)
        x = rng.normal(size=(2, 5, 5, 2)).astype(np.float32)
        check_module_gradients(block, x)

    def test_invalid_expansion_raises(self, rng):
        with pytest.raises(ValueError):
            InvertedBottleneck(4, 4, kernel=3, expansion=0, rng=rng)

    def test_parameters_counted_once(self, rng):
        block = InvertedBottleneck(4, 4, kernel=3, expansion=2, rng=rng)
        params = block.parameters()
        assert len(params) == len({id(p) for p in params})
