"""Tests that the quantizer hook points on layers behave uniformly."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, DepthwiseConv2D
from repro.quant import ActivationQuantizer, WeightQuantizer


@pytest.mark.parametrize("make_layer,x_shape", [
    (lambda rng: Conv2D(2, 3, kernel=3, rng=rng), (2, 6, 6, 2)),
    (lambda rng: Conv2D(2, 3, kernel=1, rng=rng), (2, 6, 6, 2)),
    (lambda rng: DepthwiseConv2D(2, kernel=3, rng=rng), (2, 6, 6, 2)),
    (lambda rng: Dense(4, 3, rng=rng), (5, 4)),
])
class TestHookUniformity:
    def test_weight_channel_axis_valid(self, make_layer, x_shape, rng):
        layer = make_layer(rng)
        axis = layer.weight_channel_axis
        assert 0 <= axis < layer.weight.data.ndim
        assert layer.weight.data.shape[axis] == layer.out_channels

    def test_weight_quantizer_changes_output(self, make_layer, x_shape,
                                             rng):
        layer = make_layer(rng)
        x = rng.normal(size=x_shape).astype(np.float32)
        float_out = layer.forward(x)
        layer.weight_quantizer = WeightQuantizer(
            2, channel_axis=layer.weight_channel_axis)
        quant_out = layer.forward(x)
        assert not np.allclose(float_out, quant_out)

    def test_input_quantizer_observes_in_calibration(self, make_layer,
                                                     x_shape, rng):
        layer = make_layer(rng)
        layer.input_quantizer = ActivationQuantizer(8)
        x = rng.normal(size=x_shape).astype(np.float32)
        layer.forward(x)
        assert layer.input_quantizer.observer.calibrated

    def test_backward_with_quantizers_produces_grads(self, make_layer,
                                                     x_shape, rng):
        layer = make_layer(rng)
        layer.weight_quantizer = WeightQuantizer(
            4, channel_axis=layer.weight_channel_axis)
        layer.input_quantizer = ActivationQuantizer(8)
        x = rng.normal(size=x_shape).astype(np.float32)
        layer.forward(x)  # calibration pass
        layer.input_quantizer.freeze()
        out = layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert layer.weight.grad is not None
        assert np.isfinite(layer.weight.grad).all()

    def test_quantized_forward_deterministic(self, make_layer, x_shape,
                                             rng):
        layer = make_layer(rng)
        layer.weight_quantizer = WeightQuantizer(
            4, channel_axis=layer.weight_channel_axis)
        x = rng.normal(size=x_shape).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x), layer.forward(x))
