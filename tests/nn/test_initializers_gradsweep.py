"""Initializer statistics and a gradient-check sweep over conv configs."""

import numpy as np
import pytest

from repro.nn import check_module_gradients
from repro.nn.conv import Conv2D, DepthwiseConv2D
from repro.nn.initializers import glorot_uniform, he_normal, ones, zeros


class TestInitializers:
    def test_he_normal_std(self, rng):
        fan_in = 64
        w = he_normal((2000, 8), fan_in, rng)
        assert w.std() == pytest.approx(np.sqrt(2 / fan_in), rel=0.1)
        assert w.mean() == pytest.approx(0.0, abs=0.01)
        assert w.dtype == np.float32

    def test_glorot_uniform_bounds(self, rng):
        fan_in, fan_out = 30, 50
        w = glorot_uniform((500, 50), fan_in, fan_out, rng)
        limit = np.sqrt(6 / (fan_in + fan_out))
        assert w.min() >= -limit
        assert w.max() <= limit

    def test_zeros_ones(self):
        np.testing.assert_array_equal(zeros((2, 3)),
                                      np.zeros((2, 3), dtype=np.float32))
        np.testing.assert_array_equal(ones((4,)),
                                      np.ones(4, dtype=np.float32))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            he_normal((2, 2), 0, rng)
        with pytest.raises(ValueError):
            glorot_uniform((2, 2), 2, 0, rng)

    def test_deterministic_per_rng(self):
        a = he_normal((5, 5), 10, np.random.default_rng(1))
        b = he_normal((5, 5), 10, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestGradientSweep:
    """Finite-difference checks across the kernel/stride grid the search
    space actually uses (kernels 2-7, strides 1-2)."""

    @pytest.mark.parametrize("kernel", [2, 3, 4, 5, 6, 7])
    def test_depthwise_kernels(self, kernel, rng):
        dw = DepthwiseConv2D(2, kernel=kernel, stride=1, rng=rng)
        x = rng.normal(size=(1, 8, 8, 2)).astype(np.float32)
        check_module_gradients(dw, x)

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 2), (5, 2),
                                               (7, 2)])
    def test_depthwise_strided(self, kernel, stride, rng):
        dw = DepthwiseConv2D(2, kernel=kernel, stride=stride, rng=rng)
        x = rng.normal(size=(1, 9, 9, 2)).astype(np.float32)
        check_module_gradients(dw, x)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_1x1_conv_fast_path(self, stride, rng):
        conv = Conv2D(3, 4, kernel=1, stride=stride, rng=rng)
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        check_module_gradients(conv, x)

    def test_odd_input_sizes(self, rng):
        """SAME padding on odd inputs with stride 2 (the 16->8->4 chain
        becomes 15->8->4 on some synthetic configs)."""
        dw = DepthwiseConv2D(2, kernel=3, stride=2, rng=rng)
        x = rng.normal(size=(1, 7, 5, 2)).astype(np.float32)
        out = dw.forward(x)
        assert out.shape == (1, 4, 3, 2)
        check_module_gradients(dw, x)

    def test_input_smaller_than_kernel(self, rng):
        """SAME padding must handle feature maps smaller than the kernel
        (a 7x7 depthwise on a 3x3 map occurs in deep strided genomes)."""
        dw = DepthwiseConv2D(2, kernel=7, stride=1, rng=rng)
        x = rng.normal(size=(1, 3, 3, 2)).astype(np.float32)
        out = dw.forward(x)
        assert out.shape == (1, 3, 3, 2)
        check_module_gradients(dw, x)
